#![warn(missing_docs)]

//! # mp-framework
//!
//! A message passing framework for logical query evaluation — a
//! production-quality Rust reproduction of Allen Van Gelder's SIGMOD 1986
//! paper of the same name.
//!
//! This facade crate re-exports the workspace members; see the README for
//! an architecture overview and `examples/quickstart.rs` for a tour.

pub use mp_analyze as analyze;
pub use mp_baselines as baselines;
pub use mp_datalog as datalog;
pub use mp_engine as engine;
pub use mp_hypergraph as hypergraph;
pub use mp_rulegoal as rulegoal;
pub use mp_storage as storage;
pub use mp_trace as trace;
pub use mp_workloads as workloads;
