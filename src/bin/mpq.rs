//! `mpq` — evaluate Datalog queries with the message passing framework.
//!
//! ```text
//! mpq [OPTIONS] [FILE]            read a program (facts + rules + ?- query)
//!                                 from FILE, or stdin when omitted
//!
//!   --sip <greedy|left-to-right|all-free|qual-tree|cost-based>
//!   --schedule <fifo|random:SEED> simulator delivery order
//!   --threads                     one OS thread per graph node
//!   --batching                    package tuple requests (§3.1 fn 2)
//!   --batch-size N                tuples per data-plane frame (implies
//!                                 --batching; 1 = scalar framing)
//!   --chaos SEED                  inject seeded link faults (drop,
//!                                 duplicate, delay, corrupt) and rely
//!                                 on the recovery transport
//!   --no-recovery                 crashes abort instead of replaying
//!   --stats                       print instrumentation counters
//!   --dot                         print the rule/goal graph (Graphviz)
//!                                 instead of evaluating
//!   --trace                       print the full message log
//!   --baseline <naive|semi-naive|relevant|magic|top-down>
//!                                 evaluate with a baseline instead
//! ```

use mp_datalog::{parser::parse_program, Database};
use mp_framework::baselines::all_baselines;
use mp_framework::engine::{Engine, FaultPlan, RuntimeKind, Schedule};
use mp_framework::rulegoal::{dot, RuleGoalGraph, SipKind};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    file: Option<String>,
    sip: SipKind,
    runtime: RuntimeKind,
    batching: bool,
    batch_size: Option<usize>,
    chaos: Option<u64>,
    recovery: bool,
    stats: bool,
    dot: bool,
    trace: bool,
    baseline: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        file: None,
        sip: SipKind::Greedy,
        runtime: RuntimeKind::Sim(Schedule::Fifo),
        batching: false,
        batch_size: None,
        chaos: None,
        recovery: true,
        stats: false,
        dot: false,
        trace: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sip" => {
                let v = args.next().ok_or("--sip needs a value")?;
                opts.sip = SipKind::ALL
                    .into_iter()
                    .find(|s| s.name() == v)
                    .ok_or_else(|| format!("unknown sip strategy `{v}`"))?;
            }
            "--schedule" => {
                let v = args.next().ok_or("--schedule needs a value")?;
                let schedule = if v == "fifo" {
                    Schedule::Fifo
                } else if let Some(seed) = v.strip_prefix("random:") {
                    Schedule::Random(seed.parse().map_err(|_| "bad seed")?)
                } else {
                    return Err(format!("unknown schedule `{v}`"));
                };
                opts.runtime = RuntimeKind::Sim(schedule);
            }
            "--threads" => opts.runtime = RuntimeKind::Threads,
            "--batching" => opts.batching = true,
            "--batch-size" => {
                let v = args.next().ok_or("--batch-size needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad batch size `{v}`"))?;
                if n == 0 {
                    return Err("--batch-size must be at least 1".to_string());
                }
                opts.batch_size = Some(n);
                opts.batching = true;
            }
            "--chaos" => {
                let v = args.next().ok_or("--chaos needs a seed")?;
                opts.chaos = Some(v.parse().map_err(|_| "bad chaos seed")?);
            }
            "--no-recovery" => opts.recovery = false,
            "--stats" => opts.stats = true,
            "--dot" => opts.dot = true,
            "--trace" => opts.trace = true,
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage
            }
            other if !other.starts_with('-') && opts.file.is_none() => {
                opts.file = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: mpq [--sip S] [--schedule fifo|random:SEED] [--threads] \
[--batching] [--batch-size N] [--chaos SEED] [--no-recovery] [--stats] [--dot] [--trace] \
[--baseline B] [FILE]";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("mpq: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let source = match &opts.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mpq: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("mpq: cannot read stdin");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mpq: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut db = Database::new();
    if let Err(e) = program.load_facts(&mut db) {
        eprintln!("mpq: {e}");
        return ExitCode::FAILURE;
    }

    if opts.dot {
        match RuleGoalGraph::build(&program, &db, opts.sip) {
            Ok(g) => {
                print!("{}", dot::to_dot(&g));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("mpq: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(name) = &opts.baseline {
        let Some(ev) = all_baselines().into_iter().find(|b| b.name() == name) else {
            eprintln!("mpq: unknown baseline `{name}`");
            return ExitCode::FAILURE;
        };
        match ev.evaluate(&program, &db) {
            Ok(r) => {
                for t in r.answers.sorted_rows() {
                    println!("{t}");
                }
                if opts.stats {
                    eprintln!("-- {name}: {:?}", r.stats);
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("mpq: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut engine = Engine::new(program, db)
        .with_sip(opts.sip)
        .with_runtime(opts.runtime)
        .with_batching(opts.batching)
        .with_recovery(opts.recovery)
        .with_trace(opts.trace);
    if let Some(n) = opts.batch_size {
        engine = engine.with_batch_size(n);
    }
    if let Some(seed) = opts.chaos {
        engine = engine.with_fault_plan(FaultPlan::seeded(seed));
    }
    match engine.evaluate() {
        Ok(r) => {
            for t in r.answers.sorted_rows() {
                println!("{t}");
            }
            if let Some(trace) = &r.trace {
                for m in trace {
                    eprintln!("{m}");
                }
            }
            if opts.stats {
                let s = &r.stats;
                eprintln!("-- graph nodes        : {}", r.graph_nodes);
                eprintln!("-- messages           : {}", s.total_messages());
                eprintln!("--   tuple requests   : {}", s.tuple_requests);
                eprintln!("--   request packages : {}", s.tuple_request_batches);
                eprintln!("--   answers          : {}", s.answers);
                eprintln!("--   answer packages  : {}", s.answer_batches);
                eprintln!("--   end requests     : {}", s.end_tuple_requests);
                eprintln!("--   end packages     : {}", s.end_tuple_request_batches);
                eprintln!("--   protocol         : {}", s.protocol_messages);
                eprintln!("-- logical traffic (batching-invariant)");
                eprintln!("--   tuple requests   : {}", s.logical_tuple_requests);
                eprintln!("--   answers          : {}", s.logical_answers);
                eprintln!("--   end requests     : {}", s.logical_end_tuple_requests);
                eprintln!("-- probe waves        : {}", s.probe_waves);
                eprintln!("-- stored tuples      : {}", s.stored_tuples);
                eprintln!("--   at goal nodes    : {}", s.goal_stored);
                eprintln!("-- join probes        : {}", s.join_probes);
                eprintln!("-- faults injected    : {}", s.faults_injected());
                eprintln!("--   dropped          : {}", s.fault_dropped);
                eprintln!("--   duplicated       : {}", s.fault_duplicated);
                eprintln!("--   delayed          : {}", s.fault_delayed);
                eprintln!("--   corrupted        : {}", s.fault_corrupted);
                eprintln!("-- retransmits        : {}", s.retransmits);
                eprintln!("-- acks               : {}", s.acks);
                eprintln!("-- dups discarded     : {}", s.dups_discarded);
                eprintln!("-- stale dropped      : {}", s.stale_dropped);
                eprintln!("-- malformed dropped  : {}", s.malformed_dropped);
                eprintln!("-- crashes            : {}", s.crashes);
                eprintln!("--   replayed msgs    : {}", s.replayed);
                eprintln!("--   epoch bumps      : {}", s.epoch_bumps);
                eprintln!(
                    "-- retransmit overhead: {:.1}%",
                    100.0 * s.retransmit_overhead()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mpq: {e}");
            ExitCode::FAILURE
        }
    }
}
