//! `mpq` — evaluate Datalog queries with the message passing framework.
//!
//! ```text
//! mpq [OPTIONS] [FILE]            read a program (facts + rules + ?- query)
//!                                 from FILE, or stdin when omitted
//!
//!   --sip <greedy|left-to-right|all-free|qual-tree|cost-based>
//!   --schedule <fifo|random:SEED> simulator delivery order
//!   --threads                     worker-pool runtime (work-stealing
//!                                 node scheduler)
//!   --workers N                   pool size (implies --threads; 0 or
//!                                 omitted = available parallelism)
//!   --shards K                    replicate every request-keyed node K
//!                                 ways; requests and head answers route
//!                                 by partition-key hash (answers are
//!                                 bit-identical to --shards 1; MP108
//!                                 warns when no node can split)
//!   --batching                    package tuple requests (§3.1 fn 2)
//!   --batch-size N                tuples per data-plane frame (implies
//!                                 --batching; 1 = scalar framing)
//!   --chaos SEED                  inject seeded link faults (drop,
//!                                 duplicate, delay, corrupt) and rely
//!                                 on the recovery transport
//!   --no-recovery                 crashes abort instead of replaying
//!   --deadline SECS               wall-clock budget (default 60)
//!   --msg-budget N                logical-message budget; crossing it
//!                                 cancels the run, keeping partial
//!                                 answers and per-node accounting
//!   --mem-budget BYTES            memory high-water budget (interned
//!                                 arena + mailbox payload bytes)
//!   --mailbox-bound N             per-link credit window: bounds node
//!                                 mailboxes by backpressure (takes
//!                                 effect with --chaos, where the
//!                                 seq/ack transport carries credits)
//!   --stats                       print instrumentation counters
//!   --dot                         print the rule/goal graph (Graphviz)
//!                                 instead of evaluating
//!   --explain                     compile only: print analysis warnings
//!                                 and the annotated plan (per-node
//!                                 cardinality/volume estimates, batch
//!                                 hints, partition keys, and the shard
//!                                 fan-out each node gets at --shards K)
//!   --trace FILE                  record the clock-stamped event trace
//!                                 and write it (mptrace v1 text) to
//!                                 FILE; `-` writes to stderr
//!   --check                       verify the recorded trace against the
//!                                 protocol invariant suite (implies
//!                                 tracing); violations print as MP3xx
//!                                 diagnostics and fail the run
//!   --baseline <naive|semi-naive|relevant|magic|top-down>
//!                                 evaluate with a baseline instead
//! ```

use mp_datalog::{parser::parse_program, Database};
use mp_framework::baselines::all_baselines;
use mp_framework::engine::{Engine, FaultPlan, QueryBudget, RuntimeKind, Schedule};
use mp_framework::rulegoal::{dot, RuleGoalGraph, SipKind};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    file: Option<String>,
    sip: SipKind,
    runtime: RuntimeKind,
    workers: Option<usize>,
    shards: Option<usize>,
    batching: bool,
    batch_size: Option<usize>,
    chaos: Option<u64>,
    recovery: bool,
    deadline: Option<u64>,
    msg_budget: Option<u64>,
    mem_budget: Option<u64>,
    mailbox_bound: Option<usize>,
    stats: bool,
    dot: bool,
    explain: bool,
    trace: Option<String>,
    check: bool,
    baseline: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        file: None,
        sip: SipKind::Greedy,
        runtime: RuntimeKind::Sim(Schedule::Fifo),
        workers: None,
        shards: None,
        batching: false,
        batch_size: None,
        chaos: None,
        recovery: true,
        deadline: None,
        msg_budget: None,
        mem_budget: None,
        mailbox_bound: None,
        stats: false,
        dot: false,
        explain: false,
        trace: None,
        check: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sip" => {
                let v = args.next().ok_or("--sip needs a value")?;
                opts.sip = SipKind::ALL
                    .into_iter()
                    .find(|s| s.name() == v)
                    .ok_or_else(|| format!("unknown sip strategy `{v}`"))?;
            }
            "--schedule" => {
                let v = args.next().ok_or("--schedule needs a value")?;
                let schedule = if v == "fifo" {
                    Schedule::Fifo
                } else if let Some(seed) = v.strip_prefix("random:") {
                    Schedule::Random(seed.parse().map_err(|_| "bad seed")?)
                } else {
                    return Err(format!("unknown schedule `{v}`"));
                };
                opts.runtime = RuntimeKind::Sim(schedule);
            }
            "--threads" => opts.runtime = RuntimeKind::Threads,
            "--workers" => {
                let v = args.next().ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                opts.workers = Some(n);
                opts.runtime = RuntimeKind::Threads;
            }
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                let k: usize = v.parse().map_err(|_| format!("bad shard count `{v}`"))?;
                if k == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                opts.shards = Some(k);
            }
            "--batching" => opts.batching = true,
            "--batch-size" => {
                let v = args.next().ok_or("--batch-size needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad batch size `{v}`"))?;
                if n == 0 {
                    return Err("--batch-size must be at least 1".to_string());
                }
                opts.batch_size = Some(n);
                opts.batching = true;
            }
            "--chaos" => {
                let v = args.next().ok_or("--chaos needs a seed")?;
                opts.chaos = Some(v.parse().map_err(|_| "bad chaos seed")?);
            }
            "--no-recovery" => opts.recovery = false,
            "--deadline" => {
                let v = args.next().ok_or("--deadline needs seconds")?;
                opts.deadline = Some(v.parse().map_err(|_| format!("bad deadline `{v}`"))?);
            }
            "--msg-budget" => {
                let v = args.next().ok_or("--msg-budget needs a count")?;
                opts.msg_budget = Some(v.parse().map_err(|_| format!("bad msg budget `{v}`"))?);
            }
            "--mem-budget" => {
                let v = args.next().ok_or("--mem-budget needs bytes")?;
                opts.mem_budget = Some(v.parse().map_err(|_| format!("bad mem budget `{v}`"))?);
            }
            "--mailbox-bound" => {
                let v = args.next().ok_or("--mailbox-bound needs a count")?;
                let n: usize = v.parse().map_err(|_| format!("bad mailbox bound `{v}`"))?;
                if n == 0 {
                    return Err("--mailbox-bound must be at least 1".to_string());
                }
                opts.mailbox_bound = Some(n);
            }
            "--stats" => opts.stats = true,
            "--dot" => opts.dot = true,
            "--explain" => opts.explain = true,
            "--trace" => {
                opts.trace = Some(args.next().ok_or("--trace needs a file (or `-`)")?);
            }
            "--check" => opts.check = true,
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage
            }
            other if !other.starts_with('-') && opts.file.is_none() => {
                opts.file = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: mpq [--sip S] [--schedule fifo|random:SEED] [--threads] \
[--workers N] [--shards K] [--batching] [--batch-size N] [--chaos SEED] [--no-recovery] \
[--deadline SECS] [--msg-budget N] [--mem-budget BYTES] [--mailbox-bound N] [--stats] \
[--dot] [--explain] [--trace FILE] [--check] [--baseline B] [FILE]";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("mpq: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let source = match &opts.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mpq: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("mpq: cannot read stdin");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mpq: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut db = Database::new();
    if let Err(e) = program.load_facts(&mut db) {
        eprintln!("mpq: {e}");
        return ExitCode::FAILURE;
    }

    if opts.dot {
        match RuleGoalGraph::build(&program, &db, opts.sip) {
            Ok(g) => {
                print!("{}", dot::to_dot(&g));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("mpq: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(name) = &opts.baseline {
        let Some(ev) = all_baselines().into_iter().find(|b| b.name() == name) else {
            eprintln!("mpq: unknown baseline `{name}`");
            return ExitCode::FAILURE;
        };
        match ev.evaluate(&program, &db) {
            Ok(r) => {
                for t in r.answers.sorted_rows() {
                    println!("{t}");
                }
                if opts.stats {
                    eprintln!("-- {name}: {:?}", r.stats);
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("mpq: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let tracing = opts.trace.is_some() || opts.check;
    let mut engine = Engine::new(program, db)
        .with_sip(opts.sip)
        .with_runtime(opts.runtime)
        .with_batching(opts.batching)
        .with_recovery(opts.recovery)
        .with_trace(tracing);
    if let Some(n) = opts.workers {
        engine = engine.with_workers(n);
    }
    if let Some(k) = opts.shards {
        engine = engine.with_shards(k);
    }
    if let Some(n) = opts.batch_size {
        engine = engine.with_batch_size(n);
    }
    if let Some(seed) = opts.chaos {
        engine = engine.with_fault_plan(FaultPlan::seeded(seed));
    }
    if opts.deadline.is_some()
        || opts.msg_budget.is_some()
        || opts.mem_budget.is_some()
        || opts.mailbox_bound.is_some()
    {
        let mut budget = QueryBudget::new();
        if let Some(secs) = opts.deadline {
            budget = budget.with_deadline(std::time::Duration::from_secs(secs));
        }
        if let Some(n) = opts.msg_budget {
            budget = budget.with_max_messages(n);
        }
        if let Some(b) = opts.mem_budget {
            budget = budget.with_max_bytes(b);
        }
        if let Some(n) = opts.mailbox_bound {
            budget = budget.with_mailbox_bound(n);
        }
        engine = engine.with_budget(budget);
    }
    if opts.explain {
        // Compile only: static verification + abstract interpretation,
        // no evaluation. Warnings go to stderr, the plan to stdout.
        let name = opts.file.as_deref().unwrap_or("<stdin>");
        return match engine.compile() {
            Ok(compiled) => {
                for d in &compiled.warnings {
                    eprint!("{}", d.render(name, &source));
                }
                print!(
                    "{}",
                    compiled.analysis.render_explain(opts.shards.unwrap_or(1))
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mpq: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match engine.evaluate() {
        Ok(r) => {
            for t in r.answers.sorted_rows() {
                println!("{t}");
            }
            if let Some(events) = &r.events {
                if let Some(path) = &opts.trace {
                    let text = events.to_text();
                    if path == "-" {
                        eprint!("{text}");
                    } else if let Err(e) = std::fs::write(path, text) {
                        eprintln!("mpq: cannot write trace to {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if opts.stats {
                eprintln!("-- graph nodes        : {}", r.graph_nodes);
                eprint!("{}", r.stats);
            }
            if opts.check {
                let Some(events) = &r.events else {
                    eprintln!("mpq: --check requested but no trace was recorded");
                    return ExitCode::FAILURE;
                };
                let diags = mp_framework::trace::check(events);
                if !diags.is_empty() {
                    for d in &diags {
                        eprintln!("{}", d.render("<trace>", ""));
                    }
                    eprintln!(
                        "mpq: trace verification failed with {} violation(s)",
                        diags.len()
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "-- trace verified: {} events, no protocol violations",
                    events.events.len()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mpq: {e}");
            ExitCode::FAILURE
        }
    }
}
