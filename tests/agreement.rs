//! Cross-evaluator agreement: the message-passing engine (under every
//! SIP strategy, schedule, and runtime) must compute exactly the goal
//! portion of the minimum model — which the naive bottom-up evaluator
//! materializes by definition (§1). Every baseline must agree too.

use mp_framework::baselines::{all_baselines, Evaluator, Naive};
use mp_framework::engine::{Engine, RuntimeKind, Schedule};
use mp_framework::rulegoal::SipKind;
use mp_framework::workloads::scenarios;
use mp_framework::workloads::Workload;
use mp_storage::Tuple;

fn oracle(w: &Workload) -> Vec<Tuple> {
    Naive
        .evaluate(&w.program, &w.db)
        .unwrap_or_else(|e| panic!("naive failed on {}: {e}", w.name))
        .answers
        .sorted_rows()
}

fn engine_rows(w: &Workload, sip: SipKind, rt: RuntimeKind) -> Vec<Tuple> {
    Engine::new(w.program.clone(), w.db.clone())
        .with_sip(sip)
        .with_runtime(rt)
        .evaluate()
        .unwrap_or_else(|e| panic!("engine({:?}) failed on {}: {e}", sip, w.name))
        .answers
        .sorted_rows()
}

fn workload_suite() -> Vec<Workload> {
    vec![
        scenarios::tc_chain(24),
        scenarios::tc_cycle(12),
        scenarios::tc_random(24, 60, 1),
        scenarios::tc_random(24, 60, 2),
        scenarios::tc_nonlinear_chain(12),
        scenarios::p1_chain(15),
        scenarios::sg_tree(3, 3, 5),
        scenarios::bom(40, 3, 7),
        scenarios::r2(12, 2, 3),
        scenarios::r3(12, 2, 0.5, 3),
        scenarios::odd_even_chain(14),
    ]
}

#[test]
fn engine_matches_naive_on_all_workloads_and_sips() {
    for w in workload_suite() {
        let expect = oracle(&w);
        for sip in SipKind::ALL {
            let got = engine_rows(&w, sip, RuntimeKind::Sim(Schedule::Fifo));
            assert_eq!(got, expect, "{} under {}", w.name, sip.name());
        }
    }
}

#[test]
fn baselines_match_naive_on_all_workloads() {
    for w in workload_suite() {
        let expect = oracle(&w);
        for ev in all_baselines() {
            let got = ev
                .evaluate(&w.program, &w.db)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", ev.name(), w.name))
                .answers
                .sorted_rows();
            assert_eq!(got, expect, "{} on {}", ev.name(), w.name);
        }
    }
}

#[test]
fn random_schedules_match_on_recursive_workloads() {
    // Adversarial scheduling exercises Thm 3.1: answers must not depend
    // on delivery order, and termination must always be detected.
    for w in [
        scenarios::tc_cycle(8),
        scenarios::tc_nonlinear_chain(8),
        scenarios::p1_chain(9),
        scenarios::sg_tree(3, 2, 2),
    ] {
        let expect = oracle(&w);
        for seed in 0..12 {
            let got = engine_rows(
                &w,
                SipKind::Greedy,
                RuntimeKind::Sim(Schedule::Random(seed)),
            );
            assert_eq!(got, expect, "{} seed {seed}", w.name);
        }
    }
}

#[test]
fn threaded_runtime_matches_on_recursive_workloads() {
    for w in [
        scenarios::tc_cycle(10),
        scenarios::tc_nonlinear_chain(10),
        scenarios::sg_tree(3, 2, 4),
        scenarios::bom(30, 3, 2),
    ] {
        let expect = oracle(&w);
        let got = engine_rows(&w, SipKind::Greedy, RuntimeKind::Threads);
        assert_eq!(got, expect, "{}", w.name);
    }
}

#[test]
fn engine_work_is_bounded_by_relevance() {
    // The paper's efficiency claim in its weakest checkable form: on a
    // point query over a long chain, the engine with greedy SIP stores
    // far fewer tuples than the relevance-only baseline (which computes
    // whole relations).
    let n = 128;
    let mut db = mp_datalog::Database::new();
    mp_framework::workloads::graphs::chain(&mut db, "edge", n);
    let program = mp_framework::workloads::programs::tc_linear((n - 4) as i64);
    let engine = Engine::new(program.clone(), db.clone()).evaluate().unwrap();
    let relevant = mp_framework::baselines::Relevant
        .evaluate(&program, &db)
        .unwrap();
    assert_eq!(engine.answers.sorted_rows(), relevant.answers.sorted_rows());
    assert!(
        engine.stats.stored_tuples * 4 < relevant.stats.stored_tuples,
        "engine stored {} vs relevant {}",
        engine.stats.stored_tuples,
        relevant.stats.stored_tuples
    );
}
