//! Soundness of the mp-analyze abstract interpretation.
//!
//! The analysis prunes rule/goal-graph nodes before evaluation, so its
//! claims must be *proved against the concrete semantics*, not spot
//! checked: the sort fixpoint over-approximates the least model (every
//! concretely derived value lies inside its column's inferred sort, and
//! every concretely non-empty predicate is in the live set), and pruning
//! is answer-preserving on both runtimes — with and without injected
//! faults.

use mp_framework::analyze::{analyze, AnalyzeOptions, SortAnalysis};
use mp_framework::datalog::parser::parse_rule;
use mp_framework::datalog::{Database, Predicate, Program, Term, Var};
use mp_framework::engine::{Engine, FaultPlan, RuntimeKind, Schedule};
use mp_framework::rulegoal::{RuleGoalGraph, SipKind};
use mp_framework::storage::{Tuple, Value};
use mp_framework::workloads::random_programs::{generate, is_interesting, ProgramSpec};
use std::collections::{BTreeMap, BTreeSet};

/// The concrete least model, by brute-force naive fixpoint (substitution
/// semantics, independent of every evaluator under test).
fn least_model(program: &Program, db: &Database) -> BTreeMap<Predicate, BTreeSet<Tuple>> {
    let mut model: BTreeMap<Predicate, BTreeSet<Tuple>> = BTreeMap::new();
    for (p, r) in db.iter() {
        model
            .entry(p.clone())
            .or_default()
            .extend(r.iter().cloned());
    }
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let mut envs: Vec<BTreeMap<Var, Value>> = vec![BTreeMap::new()];
            for atom in &rule.body {
                let rel = model.get(&atom.pred).cloned().unwrap_or_default();
                let mut next = Vec::new();
                for env in &envs {
                    'tup: for t in &rel {
                        let mut e2 = env.clone();
                        for (i, term) in atom.terms.iter().enumerate() {
                            match term {
                                Term::Const(c) => {
                                    if t[i] != *c {
                                        continue 'tup;
                                    }
                                }
                                Term::Var(v) => match e2.get(v) {
                                    Some(b) => {
                                        if *b != t[i] {
                                            continue 'tup;
                                        }
                                    }
                                    None => {
                                        e2.insert(v.clone(), t[i]);
                                    }
                                },
                            }
                        }
                        next.push(e2);
                    }
                }
                envs = next;
                if envs.is_empty() {
                    break;
                }
            }
            for env in envs {
                let t: Option<Tuple> = rule
                    .head
                    .terms
                    .iter()
                    .map(|term| match term {
                        Term::Const(c) => Some(*c),
                        Term::Var(v) => env.get(v).copied(),
                    })
                    .collect();
                if let Some(t) = t {
                    if model.entry(rule.head.pred.clone()).or_default().insert(t) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return model;
        }
    }
}

/// The over-approximation theorem, concretely: every value derived by the
/// naive fixpoint lies inside its column's inferred sort, and every
/// predicate with a tuple in the least model is in the analysis's live
/// set. (Contrapositive: abstractly-empty ⇒ truly empty, which is what
/// makes the pruning sound.)
#[test]
fn sort_inference_covers_the_least_model() {
    let spec = ProgramSpec::default();
    let mut tested = 0;
    for seed in 0..200 {
        let (program, mut db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let _ = program.load_facts(&mut db);
        tested += 1;

        let model = least_model(&program, &db);
        let sorts = SortAnalysis::infer(&program, &db, 256);
        for (pred, tuples) in &model {
            for t in tuples {
                let cols = sorts
                    .of(pred)
                    .unwrap_or_else(|| panic!("seed {seed}: `{pred}` derived but has no sorts"));
                for c in 0..t.arity() {
                    assert!(
                        cols[c].contains(&t[c]),
                        "seed {seed}: `{pred}` column {c} derived {} outside its sort\n{program}",
                        t[c]
                    );
                }
            }
        }

        let graph = RuleGoalGraph::build(&program, &db, SipKind::ALL[(seed % 4) as usize])
            .unwrap_or_else(|e| panic!("graph build failed on seed {seed}: {e}\n{program}"));
        let analysis = analyze(&program, &db, &graph, None, &AnalyzeOptions::default());
        let live = analysis.live_predicates();
        for (pred, tuples) in &model {
            if !tuples.is_empty() {
                assert!(
                    live.contains(pred),
                    "seed {seed}: `{pred}` has {} tuples but was declared dead\n{program}",
                    tuples.len()
                );
            }
        }
    }
    assert!(tested > 80, "only {tested} interesting programs out of 200");
}

/// Append a provably-dead recursive rule (its `ghost` subgoal has no
/// facts and no rules) so analysis pruning has something real to cut.
fn with_ghost_rule(program: &Program) -> Program {
    let mut p = program.clone();
    let head = &p.rules[0].head;
    let vars: Vec<String> = (0..head.arity()).map(|i| format!("Zz{i}")).collect();
    let args = vars.join(", ");
    let rule = if vars.is_empty() {
        format!("{} :- ghost(W0, W1).", head.pred)
    } else {
        format!("{}({args}) :- ghost(W0, {}).", head.pred, args)
    };
    p.rules.push(parse_rule(&rule).expect("ghost rule parses"));
    p
}

/// Pruning on vs off: bit-identical answers on the deterministic
/// simulator, for the generator's programs both as-is and with a ghost
/// rule grafted on (forcing a nonzero prune on every program).
#[test]
fn pruning_on_and_off_agree_on_random_programs() {
    let spec = ProgramSpec::default();
    let mut tested = 0;
    let mut pruned_hits = 0;
    for seed in 0..120 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        tested += 1;
        for program in [program.clone(), with_ghost_rule(&program)] {
            let on = Engine::new(program.clone(), db.clone())
                .evaluate()
                .unwrap_or_else(|e| panic!("prune-on failed on seed {seed}: {e}\n{program}"));
            let off = Engine::new(program.clone(), db.clone())
                .with_analysis(false)
                .evaluate()
                .unwrap_or_else(|e| panic!("prune-off failed on seed {seed}: {e}\n{program}"));
            assert_eq!(
                on.answers.sorted_rows(),
                off.answers.sorted_rows(),
                "seed {seed}: pruning changed the answers\n{program}"
            );
            assert_eq!((on.engine_ends, on.post_end_answers), (1, 0));
            if on.stats.pruned_nodes > 0 {
                pruned_hits += 1;
                assert!(on.graph_nodes < off.graph_nodes, "prune shrank nothing");
            }
        }
    }
    assert!(tested > 50, "only {tested} interesting programs out of 120");
    // Every ghost-rule variant must actually have been pruned.
    assert!(pruned_hits >= tested, "ghost rules were not pruned");
}

/// Within each prune setting, the worker-pool runtime reproduces the
/// simulator's answers *and* its batching-invariant logical counters
/// (Thm 4.1 schedule-invariance survives the pruning).
#[test]
fn pruned_graphs_are_schedule_invariant_across_runtimes() {
    let spec = ProgramSpec {
        idb_preds: 2,
        max_body: 2,
        facts_per_relation: 8,
        ..ProgramSpec::default()
    };
    let mut tested = 0;
    for seed in 0..25 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        tested += 1;
        let program = with_ghost_rule(&program);
        for prune in [true, false] {
            let sim = Engine::new(program.clone(), db.clone())
                .with_analysis(prune)
                .evaluate()
                .unwrap_or_else(|e| panic!("sim failed on seed {seed}: {e}\n{program}"));
            let pool = Engine::new(program.clone(), db.clone())
                .with_analysis(prune)
                .with_runtime(RuntimeKind::Threads)
                .evaluate()
                .unwrap_or_else(|e| panic!("pool failed on seed {seed}: {e}\n{program}"));
            assert_eq!(
                sim.answers.sorted_rows(),
                pool.answers.sorted_rows(),
                "seed {seed} prune={prune}: runtimes disagree\n{program}"
            );
            assert_eq!(
                (
                    sim.stats.logical_tuple_requests,
                    sim.stats.logical_answers,
                    sim.stats.logical_end_tuple_requests,
                ),
                (
                    pool.stats.logical_tuple_requests,
                    pool.stats.logical_answers,
                    pool.stats.logical_end_tuple_requests,
                ),
                "seed {seed} prune={prune}: logical counters diverged\n{program}"
            );
            assert_eq!(sim.stats.pruned_nodes, pool.stats.pruned_nodes);
        }
    }
    assert!(tested >= 5, "only {tested} interesting programs out of 25");
}

/// Chaos sweep: eight fault seeds against a pruned recursive program.
/// Faults (drop/duplicate/delay/corrupt) plus the recovery transport must
/// not interact with pruning — the fault-free answers come back every
/// time, with exactly one End and nothing after it.
#[test]
fn pruning_survives_chaos_sweep() {
    let program = mp_framework::datalog::parser::parse_program(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         path(X, Y) :- ghost(X, W), path(W, Y).
         ?- path(0, Z).",
    )
    .unwrap();
    let mut db = Database::new();
    for i in 0..8i64 {
        db.insert("edge", mp_framework::storage::tuple![i, i + 1])
            .unwrap();
        db.insert("edge", mp_framework::storage::tuple![i, (i * 5) % 8])
            .unwrap();
    }
    let clean = Engine::new(program.clone(), db.clone()).evaluate().unwrap();
    assert!(clean.stats.pruned_nodes > 0, "ghost rule must be pruned");
    assert!(!clean.answers.is_empty());

    for fault_seed in 0..8u64 {
        let chaotic = Engine::new(program.clone(), db.clone())
            .with_runtime(RuntimeKind::Sim(Schedule::Random(fault_seed)))
            .with_fault_plan(FaultPlan::seeded(fault_seed))
            .evaluate()
            .unwrap_or_else(|e| panic!("chaos seed {fault_seed} failed: {e}"));
        assert_eq!(
            chaotic.answers.sorted_rows(),
            clean.answers.sorted_rows(),
            "chaos seed {fault_seed} diverged"
        );
        assert_eq!(chaotic.engine_ends, 1, "chaos seed {fault_seed}");
        assert_eq!(chaotic.post_end_answers, 0, "chaos seed {fault_seed}");
        assert_eq!(chaotic.stats.pruned_nodes, clean.stats.pruned_nodes);
    }
}
