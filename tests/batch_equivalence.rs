//! Batched delivery is semantically invisible (§3.1 footnote 2, extended
//! to the upward direction): for random programs and plans, evaluating
//! with message batching at any flush bound produces the same answer
//! set, the same Thm 3.1 observables (exactly one `End`, nothing after
//! it), and the same *logical* tuple traffic as the scalar path — with
//! and without a fault plan in the loop. Only physical framing may
//! differ.

use mp_framework::engine::{Engine, FaultPlan, RuntimeKind, Schedule};
use mp_framework::rulegoal::SipKind;
use mp_framework::workloads::random_programs::{generate, is_interesting, ProgramSpec};
use proptest::prelude::*;

/// The flush bounds the suite sweeps: immediate flush, small, the
/// default, and effectively unbounded (only the turn bound fires).
const BATCH_SIZES: [usize; 4] = [1, 4, 64, usize::MAX];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random program × random plan (SIP) × every flush bound, clean
    /// channels: answers, observables, and logical counts all match the
    /// scalar run.
    #[test]
    fn batched_equals_scalar_on_random_programs(
        seed in 0u64..10_000,
        sip_idx in 0usize..4,
    ) {
        let spec = ProgramSpec::default();
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            return Ok(()); // vacuous draw; the generator seeds densely
        }
        let sip = SipKind::ALL[sip_idx % SipKind::ALL.len()];

        let scalar = Engine::new(program.clone(), db.clone())
            .with_sip(sip)
            .evaluate()
            .unwrap_or_else(|e| panic!("scalar failed on seed {seed}: {e}\n{program}"));
        prop_assert_eq!(scalar.engine_ends, 1);
        prop_assert_eq!(scalar.post_end_answers, 0);

        for batch in BATCH_SIZES {
            let batched = Engine::new(program.clone(), db.clone())
                .with_sip(sip)
                .with_batching(true)
                .with_batch_size(batch)
                .evaluate()
                .unwrap_or_else(|e| {
                    panic!("batch {batch} failed on seed {seed}: {e}\n{program}")
                });
            prop_assert_eq!(batched.engine_ends, 1, "batch {}", batch);
            prop_assert_eq!(batched.post_end_answers, 0, "batch {}", batch);
            prop_assert_eq!(
                batched.answers.sorted_rows(),
                scalar.answers.sorted_rows(),
                "batch {} diverged on seed {}\n{}", batch, seed, program
            );
            prop_assert_eq!(
                batched.stats.logical_answers,
                scalar.stats.logical_answers,
                "batch {} changed the logical answer count", batch
            );
            prop_assert_eq!(
                batched.stats.logical_tuple_requests,
                scalar.stats.logical_tuple_requests,
                "batch {} changed the logical request count", batch
            );
            prop_assert_eq!(
                batched.stats.logical_end_tuple_requests,
                scalar.stats.logical_end_tuple_requests,
                "batch {} changed the logical per-binding-end count", batch
            );
        }
    }

    /// The same equivalence under a nonzero fault plan and an
    /// adversarial random schedule: batching composes with the
    /// self-healing transport (a batch is one frame) without touching
    /// any observable.
    #[test]
    fn batched_equals_scalar_under_faults(
        seed in 0u64..10_000,
        fault_seed in 0u64..1_000_000,
        sched_seed in 0u64..1_000_000,
        batch_idx in 0usize..4,
    ) {
        let spec = ProgramSpec {
            idb_preds: 2,
            max_body: 2,
            ..ProgramSpec::default()
        };
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            return Ok(()); // vacuous draw; the generator seeds densely
        }

        let scalar = Engine::new(program.clone(), db.clone())
            .evaluate()
            .unwrap_or_else(|e| panic!("scalar failed on seed {seed}: {e}\n{program}"));

        let batched = Engine::new(program.clone(), db.clone())
            .with_runtime(RuntimeKind::Sim(Schedule::Random(sched_seed)))
            .with_fault_plan(FaultPlan::seeded(fault_seed))
            .with_batching(true)
            .with_batch_size(BATCH_SIZES[batch_idx % BATCH_SIZES.len()])
            .evaluate()
            .unwrap_or_else(|e| panic!("faulted batch failed on seed {seed}: {e}\n{program}"));
        prop_assert_eq!(batched.engine_ends, 1);
        prop_assert_eq!(batched.post_end_answers, 0);
        prop_assert_eq!(
            batched.answers.sorted_rows(),
            scalar.answers.sorted_rows(),
            "seed {} diverged under faults\n{}", seed, program
        );
        prop_assert_eq!(
            batched.stats.logical_answers,
            scalar.stats.logical_answers,
            "faults + batching changed the logical answer count"
        );
    }
}
