//! Differential fuzzing: random safe Datalog programs (recursion,
//! mutual recursion, constants, repeated variables all arise from the
//! generator) evaluated by every method. The naive bottom-up evaluator
//! defines the semantics (§1: the goal portion of the minimum model);
//! everything else must agree — the engine under every SIP strategy and
//! under adversarial random delivery, and every baseline.

use mp_framework::baselines::{all_baselines, Evaluator, Naive};
use mp_framework::engine::{Engine, RuntimeKind, Schedule};
use mp_framework::rulegoal::SipKind;
use mp_framework::workloads::random_programs::{generate, is_interesting, ProgramSpec};

#[test]
fn engine_agrees_with_naive_on_random_programs() {
    let spec = ProgramSpec::default();
    let mut tested = 0;
    for seed in 0..600 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        tested += 1;
        let expect = Naive
            .evaluate(&program, &db)
            .unwrap_or_else(|e| panic!("naive failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        let sip = SipKind::ALL[(seed % 4) as usize];
        let got = Engine::new(program.clone(), db.clone())
            .with_sip(sip)
            .evaluate()
            .unwrap_or_else(|e| {
                panic!(
                    "engine failed on seed {seed} ({}): {e}\n{program}",
                    sip.name()
                )
            })
            .answers
            .sorted_rows();
        assert_eq!(got, expect, "seed {seed} under {}\n{program}", sip.name());
    }
    assert!(
        tested > 300,
        "only {tested} interesting programs out of 600"
    );
}

#[test]
fn random_schedules_agree_on_random_programs() {
    let spec = ProgramSpec {
        idb_preds: 2,
        max_body: 2,
        ..ProgramSpec::default()
    };
    for seed in 0..60 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let expect = Engine::new(program.clone(), db.clone())
            .evaluate()
            .unwrap_or_else(|e| panic!("fifo failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        for sched_seed in [1u64, 2, 3] {
            let got = Engine::new(program.clone(), db.clone())
                .with_runtime(RuntimeKind::Sim(Schedule::Random(sched_seed)))
                .evaluate()
                .unwrap_or_else(|e| {
                    panic!("random schedule failed on seed {seed}/{sched_seed}: {e}\n{program}")
                })
                .answers
                .sorted_rows();
            assert_eq!(got, expect, "seed {seed} schedule {sched_seed}\n{program}");
        }
    }
}

#[test]
fn baselines_agree_on_random_programs() {
    let spec = ProgramSpec::default();
    for seed in 600..800 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let expect = Naive.evaluate(&program, &db).unwrap().answers.sorted_rows();
        for ev in all_baselines() {
            let got = ev
                .evaluate(&program, &db)
                .unwrap_or_else(|e| panic!("{} failed on seed {seed}: {e}\n{program}", ev.name()))
                .answers
                .sorted_rows();
            assert_eq!(got, expect, "{} on seed {seed}\n{program}", ev.name());
        }
    }
}

#[test]
fn threaded_runtime_agrees_on_random_programs() {
    let spec = ProgramSpec {
        idb_preds: 2,
        max_body: 2,
        facts_per_relation: 8,
        ..ProgramSpec::default()
    };
    for seed in 0..25 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let expect = Engine::new(program.clone(), db.clone())
            .evaluate()
            .unwrap()
            .answers
            .sorted_rows();
        let got = Engine::new(program.clone(), db.clone())
            .with_runtime(RuntimeKind::Threads)
            .evaluate()
            .unwrap_or_else(|e| panic!("threads failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        assert_eq!(got, expect, "seed {seed}\n{program}");
    }
}
