//! Soundness of the staged stratified pipeline: the engine's
//! stratum-by-stratum evaluation of programs with negation and
//! aggregates must compute exactly the perfect model, on every runtime,
//! at every shard count, and under chaos. The reference is
//! `mp-baselines`' `PerfectModel` — an independent iterated-fixpoint
//! evaluator that shares no code with `mp-analyze`'s stratifier or the
//! engine's staging driver.

use mp_framework::baselines::{Evaluator, PerfectModel};
use mp_framework::datalog::parser::parse_program;
use mp_framework::datalog::Database;
use mp_framework::engine::runtime::RuntimeError;
use mp_framework::engine::{Engine, EngineError, FaultPlan, QueryBudget, RuntimeKind, Schedule};
use mp_framework::storage::tuple;
use mp_framework::workloads::random_programs::{
    generate, generate_stratified, is_interesting, ProgramSpec, StratifiedSpec,
};
use mp_framework::workloads::scenarios;
use proptest::prelude::*;

/// The canonical stratified workloads must be oracle-identical on both
/// runtimes at 1 and 4 shards — the PR's acceptance matrix.
#[test]
fn canonical_stratified_workloads_match_the_oracle() {
    let workloads = [
        scenarios::win_move(24, 40, 3),
        scenarios::win_move(16, 12, 5),
        scenarios::company_control(10, 1),
        scenarios::company_control(16, 7),
        scenarios::agg_reachability(24, 48, 4, 2),
    ];
    for w in &workloads {
        let expect = PerfectModel
            .evaluate(&w.program, &w.db)
            .unwrap_or_else(|e| panic!("oracle failed on {}: {e}", w.name))
            .answers
            .sorted_rows();
        for shards in [1usize, 4] {
            for (rt_name, runtime) in [
                ("sim", RuntimeKind::Sim(Schedule::Fifo)),
                ("threads", RuntimeKind::Threads),
            ] {
                let got = Engine::new(w.program.clone(), w.db.clone())
                    .with_runtime(runtime)
                    .with_shards(shards)
                    .evaluate()
                    .unwrap_or_else(|e| panic!("{} failed on {rt_name} x{shards}: {e}", w.name))
                    .answers
                    .sorted_rows();
                assert_eq!(got, expect, "{} on {rt_name} x{shards}", w.name);
            }
        }
    }
}

/// The staged pipeline actually stages: the three-stratum win-move
/// program reports more than one engine run, a flat program exactly one.
#[test]
fn strata_evaluated_counts_pipeline_stages() {
    let w = scenarios::win_move(12, 16, 1);
    let staged = Engine::new(w.program.clone(), w.db.clone())
        .evaluate()
        .unwrap();
    assert!(
        staged.stats.strata_evaluated > 1,
        "win-move should stage, got {}",
        staged.stats.strata_evaluated
    );

    let flat = scenarios::tc_chain(8);
    let direct = Engine::new(flat.program.clone(), flat.db.clone())
        .evaluate()
        .unwrap();
    assert_eq!(direct.stats.strata_evaluated, 1);
}

/// Unstratifiable programs are rejected with a deterministic MP009 deny
/// through the compile gate, and still rejected (by the staging driver's
/// own check) when the gate is switched off.
#[test]
fn unstratifiable_programs_are_rejected_on_both_paths() {
    let program = parse_program(
        "p(X) :- node(X), !q(X).
         q(X) :- node(X), !p(X).
         ?- p(X).",
    )
    .unwrap();
    let mut db = Database::new();
    db.insert("node", tuple![1]).unwrap();
    for gate in [true, false] {
        match Engine::new(program.clone(), db.clone())
            .with_stratification(gate)
            .evaluate()
        {
            Err(EngineError::Lint(diags)) => {
                assert!(
                    diags.iter().any(|d| d.code.as_str() == "MP009"),
                    "gate {gate}: expected MP009, got {diags:?}"
                );
            }
            Err(other) => panic!("gate {gate}: expected a lint rejection, got {other}"),
            Ok(_) => panic!("gate {gate}: unstratifiable program evaluated"),
        }
    }
}

/// One budget spans the whole pipeline: a step allowance that a staged
/// program cannot satisfy trips the same typed divergence error the flat
/// path reports, instead of resetting per stratum.
#[test]
fn one_budget_spans_all_strata() {
    let w = scenarios::agg_reachability(32, 96, 8, 3);
    match Engine::new(w.program.clone(), w.db.clone())
        .with_budget(QueryBudget::new().with_max_steps(5))
        .evaluate()
    {
        Err(EngineError::Runtime(e)) => {
            assert!(matches!(e, RuntimeError::Diverged { .. }), "{e}")
        }
        Err(other) => panic!("expected a runtime budget error, got {other}"),
        Ok(_) => panic!("a 5-step budget cannot evaluate this workload"),
    }
}

/// Regression: on negation/aggregate-free programs the stratification
/// pass is invisible — answers bit-identical (same tuples, same order)
/// and every Thm 4.1 logical counter unchanged with the pass on vs off.
#[test]
fn stratification_pass_is_invisible_on_positive_programs() {
    let spec = ProgramSpec::default();
    let mut tested = 0;
    for seed in 0..80 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        tested += 1;
        let on = Engine::new(program.clone(), db.clone())
            .with_stratification(true)
            .evaluate()
            .unwrap_or_else(|e| panic!("pass-on failed on seed {seed}: {e}\n{program}"));
        let off = Engine::new(program.clone(), db.clone())
            .with_stratification(false)
            .evaluate()
            .unwrap_or_else(|e| panic!("pass-off failed on seed {seed}: {e}\n{program}"));
        assert_eq!(
            on.answers.rows(),
            off.answers.rows(),
            "seed {seed}\n{program}"
        );
        assert_eq!(
            on.stats.logical_answers, off.stats.logical_answers,
            "seed {seed}"
        );
        assert_eq!(
            on.stats.logical_tuple_requests, off.stats.logical_tuple_requests,
            "seed {seed}"
        );
        assert_eq!(
            on.stats.logical_end_tuple_requests, off.stats.logical_end_tuple_requests,
            "seed {seed}"
        );
        assert_eq!(on.stats.strata_evaluated, 1, "seed {seed}");
    }
    assert!(tested > 40, "only {tested}/80 interesting programs");
}

/// Chaos sweep: 8 seeded stratified programs evaluated under a lossy
/// fault plan and an adversarial random schedule still compute the
/// perfect model (the self-healing transport composes with staging).
#[test]
fn chaos_sweep_preserves_the_perfect_model() {
    let spec = StratifiedSpec::default();
    let mut tested = 0u64;
    for seed in 0..64u64 {
        if tested >= 8 {
            break;
        }
        let (program, db) = generate_stratified(&spec, seed);
        if !is_interesting(&program, &db) || program.rules.iter().all(|r| r.neg.is_empty()) {
            continue;
        }
        tested += 1;
        let expect = PerfectModel
            .evaluate(&program, &db)
            .unwrap_or_else(|e| panic!("oracle failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        let got = Engine::new(program.clone(), db.clone())
            .with_runtime(RuntimeKind::Sim(Schedule::Random(seed * 31 + 7)))
            .with_fault_plan(FaultPlan::seeded(seed * 97 + 13))
            .evaluate()
            .unwrap_or_else(|e| panic!("chaos run failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        assert_eq!(got, expect, "seed {seed}\n{program}");
    }
    assert_eq!(tested, 8, "the sweep must cover 8 negation-using programs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random stratified-negation programs: the staged engine (both
    /// runtimes) computes exactly the perfect model.
    #[test]
    fn staged_engine_matches_perfect_model(seed in 0u64..10_000) {
        let spec = StratifiedSpec::default();
        let (program, db) = generate_stratified(&spec, seed);
        if !is_interesting(&program, &db) {
            return Ok(()); // vacuous draw; the generator seeds densely
        }
        let expect = PerfectModel
            .evaluate(&program, &db)
            .unwrap_or_else(|e| panic!("oracle failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        let sim = Engine::new(program.clone(), db.clone())
            .evaluate()
            .unwrap_or_else(|e| panic!("sim failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        prop_assert_eq!(&sim, &expect, "sim diverged on seed {}\n{}", seed, program);
        let threaded = Engine::new(program.clone(), db.clone())
            .with_runtime(RuntimeKind::Threads)
            .evaluate()
            .unwrap_or_else(|e| panic!("threads failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        prop_assert_eq!(&threaded, &expect, "threads diverged on seed {}\n{}", seed, program);
    }

    /// Sharding composes with staging: a staged 4-shard run equals the
    /// 1-shard run on random stratified programs.
    #[test]
    fn sharded_staging_matches_unsharded(seed in 0u64..10_000) {
        let spec = StratifiedSpec::default();
        let (program, db) = generate_stratified(&spec, seed);
        if !is_interesting(&program, &db) {
            return Ok(());
        }
        let one = Engine::new(program.clone(), db.clone())
            .with_shards(1)
            .evaluate()
            .unwrap_or_else(|e| panic!("1-shard failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        let four = Engine::new(program.clone(), db.clone())
            .with_shards(4)
            .evaluate()
            .unwrap_or_else(|e| panic!("4-shard failed on seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        prop_assert_eq!(&four, &one, "shards diverged on seed {}\n{}", seed, program);
    }
}
