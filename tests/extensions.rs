//! Tests for the paper's extension hooks implemented beyond the basic
//! message set: packaged tuple requests (§3.1 footnote 2) and the
//! statistics-driven cost-based SIP strategy (§1.2's "optimization
//! information").

use mp_datalog::{parser::parse_program, Database, DbStats, Predicate};
use mp_framework::baselines::{Evaluator, Naive};
use mp_framework::engine::{Engine, RuntimeKind, Schedule};
use mp_framework::rulegoal::SipKind;
use mp_framework::workloads::random_programs::{generate, is_interesting, ProgramSpec};
use mp_framework::workloads::scenarios;
use mp_storage::tuple;

#[test]
fn batching_preserves_answers_on_all_workloads() {
    for w in [
        scenarios::tc_chain(24),
        scenarios::tc_cycle(12),
        scenarios::tc_nonlinear_chain(12),
        scenarios::p1_chain(16),
        scenarios::sg_tree(3, 3, 5),
        scenarios::bom(40, 3, 7),
    ] {
        let plain = Engine::new(w.program.clone(), w.db.clone())
            .evaluate()
            .unwrap();
        let batched = Engine::new(w.program.clone(), w.db.clone())
            .with_batching(true)
            .evaluate()
            .unwrap();
        assert_eq!(
            plain.answers.sorted_rows(),
            batched.answers.sorted_rows(),
            "{}",
            w.name
        );
    }
}

#[test]
fn batching_reduces_request_messages_on_fanout() {
    // Reachability on a dense random graph fans many bindings out of
    // each derivation step; the package optimization cuts request
    // messages. (On pure chains there is nothing to package — each
    // request depends on the previous answer — and batching is neutral.)
    let w = scenarios::tc_random(40, 160, 3);
    let plain = Engine::new(w.program.clone(), w.db.clone())
        .evaluate()
        .unwrap();
    let batched = Engine::new(w.program.clone(), w.db.clone())
        .with_batching(true)
        .evaluate()
        .unwrap();
    let plain_reqs = plain.stats.tuple_requests;
    let batched_reqs = batched.stats.tuple_requests + batched.stats.tuple_request_batches;
    assert!(
        batched_reqs * 2 < plain_reqs,
        "batched {batched_reqs} vs plain {plain_reqs}"
    );
    assert!(batched.stats.tuple_request_batches > 0);
    // Total messages drop too.
    assert!(batched.stats.total_messages() < plain.stats.total_messages());
}

#[test]
fn batching_survives_random_schedules_and_threads() {
    let w = scenarios::tc_cycle(10);
    let expect = Engine::new(w.program.clone(), w.db.clone())
        .evaluate()
        .unwrap()
        .answers
        .sorted_rows();
    for seed in 0..8 {
        let got = Engine::new(w.program.clone(), w.db.clone())
            .with_batching(true)
            .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
            .evaluate()
            .unwrap()
            .answers
            .sorted_rows();
        assert_eq!(got, expect, "seed {seed}");
    }
    let threaded = Engine::new(w.program.clone(), w.db.clone())
        .with_batching(true)
        .with_runtime(RuntimeKind::Threads)
        .evaluate()
        .unwrap();
    assert_eq!(threaded.answers.sorted_rows(), expect);
}

#[test]
fn batching_agrees_on_random_programs() {
    let spec = ProgramSpec::default();
    for seed in 400..470 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let expect = Naive.evaluate(&program, &db).unwrap().answers.sorted_rows();
        let got = Engine::new(program.clone(), db.clone())
            .with_batching(true)
            .evaluate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        assert_eq!(got, expect, "seed {seed}\n{program}");
    }
}

/// Cost-based SIP: skewed relation sizes where bound-argument counting
/// ties but cardinalities differ sharply.
fn skewed_workload(n: usize) -> (mp_datalog::Program, Database) {
    let program = parse_program(
        "p(X, Z) :- big(X, Y), tiny(X, W), link(Y, W, Z).
         ?- p(0, Z).",
    )
    .unwrap();
    let mut db = Database::new();
    // big: every X fans out to n Y values; tiny: one W per X.
    for x in 0..4i64 {
        db.insert("tiny", tuple![x, x + 5000]).unwrap();
        for y in 0..n as i64 {
            db.insert("big", tuple![x, y + 1000]).unwrap();
        }
    }
    // link(Y, W, Z): every (Y, W) pair that could arise, one Z each —
    // but only W-matching rows exist, so probing with W bound first is
    // dramatically more selective.
    for y in 0..n as i64 {
        for x in 0..4i64 {
            db.insert("link", tuple![y + 1000, x + 5000, y]).unwrap();
        }
    }
    (program, db)
}

#[test]
fn cost_based_sip_beats_greedy_on_skewed_cardinalities() {
    let (program, db) = skewed_workload(64);
    let greedy = Engine::new(program.clone(), db.clone())
        .with_sip(SipKind::Greedy)
        .evaluate()
        .unwrap();
    let cost = Engine::new(program.clone(), db.clone())
        .with_sip(SipKind::CostBased)
        .evaluate()
        .unwrap();
    assert_eq!(
        greedy.answers.sorted_rows(),
        cost.answers.sorted_rows(),
        "strategies must agree on answers"
    );
    // Greedy tie-breaks to `big` (textual order); cost-based starts at
    // `tiny` (4 rows vs 256) — fewer stored tuples and messages.
    assert!(
        cost.stats.total_messages() <= greedy.stats.total_messages(),
        "cost {} vs greedy {}",
        cost.stats.total_messages(),
        greedy.stats.total_messages()
    );
}

#[test]
fn cost_based_falls_back_without_stats() {
    // plan() without stats must order like greedy.
    use mp_rulegoal::{sip, Adornment, ArgClass};
    let rule = mp_datalog::parser::parse_rule("p(X, Z) :- a(X, Y), b(Y, Z).").unwrap();
    let ad = Adornment(vec![ArgClass::D, ArgClass::F]);
    let cb = sip::plan(&rule, &ad, SipKind::CostBased);
    let greedy = sip::plan(&rule, &ad, SipKind::Greedy);
    assert_eq!(cb.order, greedy.order);
    assert_eq!(cb.adornments, greedy.adornments);
}

#[test]
fn cost_based_orders_by_estimated_size() {
    use mp_rulegoal::{sip, Adornment, ArgClass};
    let (_, db) = skewed_workload(32);
    let stats = DbStats::of(&db);
    assert!(stats.relation(&Predicate::new("big")).unwrap().rows > 100);
    assert_eq!(stats.relation(&Predicate::new("tiny")).unwrap().rows, 4);
    let rule =
        mp_datalog::parser::parse_rule("p(X, Z) :- big(X, Y), tiny(X, W), link(Y, W, Z).").unwrap();
    let ad = Adornment(vec![ArgClass::D, ArgClass::F]);
    let plan = sip::plan_with_stats(&rule, &ad, SipKind::CostBased, Some(&stats));
    // tiny (index 1) must be scheduled before big (index 0).
    let pos = |i: usize| plan.order.iter().position(|&x| x == i).unwrap();
    assert!(pos(1) < pos(0), "order was {:?}", plan.order);
}

#[test]
fn cost_based_agrees_on_random_programs() {
    let spec = ProgramSpec::default();
    for seed in 500..560 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let expect = Naive.evaluate(&program, &db).unwrap().answers.sorted_rows();
        let got = Engine::new(program.clone(), db.clone())
            .with_sip(SipKind::CostBased)
            .evaluate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{program}"))
            .answers
            .sorted_rows();
        assert_eq!(got, expect, "seed {seed}\n{program}");
    }
}
