//! Structural invariants of rule/goal graphs, fuzzed over random
//! programs:
//!
//! * every nontrivial strong component has exactly one leader, whose
//!   BFST spans the component (footnote 3 of §3.2);
//! * cycle-reference nodes are genuine variants of their ancestors
//!   (Def 2.2), and the cycle arc exists;
//! * graph size never depends on the EDB contents (Thm 2.1);
//! * the Datalog pretty-printer and parser round-trip.

use mp_datalog::parser::parse_program;
use mp_framework::rulegoal::{ArcKind, GoalKind, Node, RuleGoalGraph, SipKind};
use mp_framework::workloads::random_programs::{generate, is_interesting, ProgramSpec};
use mp_storage::tuple;

#[test]
fn scc_leaders_and_bfsts_on_random_programs() {
    let spec = ProgramSpec::default();
    let mut nontrivial_seen = 0;
    for seed in 0..150 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let Ok(g) = RuleGoalGraph::build(&program, &db, SipKind::Greedy) else {
            continue; // node budget (adversarial shapes) — not under test
        };
        let scc = g.scc();
        for &comp in scc.nontrivial_components() {
            nontrivial_seen += 1;
            let leader = scc.leader_of(comp).expect("leader exists");
            // Exactly one member has an external customer.
            let exits: Vec<_> = scc
                .members(comp)
                .iter()
                .filter(|&&m| {
                    g.customers(m)
                        .iter()
                        .any(|&(c, _)| scc.component_of(c) != comp)
                })
                .collect();
            assert_eq!(exits.len(), 1, "seed {seed}: multiple exits");
            assert_eq!(*exits[0], leader);
            // BFST spans the component: every non-leader member has a
            // parent, and parents chain to the leader.
            for &m in scc.members(comp) {
                if m == leader {
                    assert!(scc.bfst_parent(m).is_none());
                    continue;
                }
                let mut cur = m;
                let mut hops = 0;
                while let Some(p) = scc.bfst_parent(cur) {
                    cur = p;
                    hops += 1;
                    assert!(hops <= scc.members(comp).len(), "seed {seed}: BFST cycle");
                }
                assert_eq!(cur, leader, "seed {seed}: BFST not rooted at leader");
            }
        }
    }
    assert!(
        nontrivial_seen > 20,
        "only {nontrivial_seen} recursive components seen"
    );
}

#[test]
fn cycle_refs_are_variants_with_arcs() {
    let spec = ProgramSpec::default();
    for seed in 150..300 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let Ok(g) = RuleGoalGraph::build(&program, &db, SipKind::Greedy) else {
            continue;
        };
        for (id, node) in g.nodes() {
            if let Node::Goal {
                label,
                kind: GoalKind::CycleRef { ancestor },
                ..
            } = node
            {
                let anc = g.node(*ancestor).goal_label().expect("ancestor is a goal");
                assert_eq!(label, anc, "seed {seed}: ref label mismatch");
                assert!(
                    g.customers(*ancestor)
                        .iter()
                        .any(|&(c, k)| c == id && k == ArcKind::Cycle),
                    "seed {seed}: missing cycle arc"
                );
                // Ref and ancestor share a nontrivial component.
                assert_eq!(
                    g.scc().component_of(id),
                    g.scc().component_of(*ancestor),
                    "seed {seed}"
                );
                assert!(g.scc().in_nontrivial(id), "seed {seed}");
            }
        }
    }
}

#[test]
fn graph_size_edb_independent_on_random_programs() {
    let spec = ProgramSpec::default();
    for seed in 300..360 {
        let (program, db) = generate(&spec, seed);
        if !is_interesting(&program, &db) {
            continue;
        }
        let Ok(g1) = RuleGoalGraph::build(&program, &db, SipKind::Greedy) else {
            continue;
        };
        // Blow the EDB up 20× with fresh constants.
        let mut big = db.clone();
        for (pred, rel) in db.iter() {
            let arity = rel.arity();
            for i in 0..200i64 {
                let t = match arity {
                    1 => tuple![1000 + i],
                    _ => tuple![1000 + i, 2000 + i],
                };
                let _ = big.insert(pred.clone(), t);
            }
        }
        let g2 = RuleGoalGraph::build(&program, &big, SipKind::Greedy).unwrap();
        assert_eq!(g1.len(), g2.len(), "seed {seed}: Thm 2.1 violated");
    }
}

#[test]
fn pretty_printer_parser_round_trip() {
    let spec = ProgramSpec::default();
    for seed in 0..200 {
        let (program, _) = generate(&spec, seed);
        let text = program.to_string();
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
        assert_eq!(
            program, reparsed,
            "seed {seed}: round trip changed the program\n{text}"
        );
    }
}
