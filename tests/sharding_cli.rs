//! CLI surface of sharded evaluation: `mpq --shards K` must keep
//! answers bit-identical to `--shards 1`, `--explain` must print the
//! per-node shard fan-out column, `--stats` must carry the `shard_*`
//! counters, and the deliberately unshardable fixture must earn its
//! MP108 warning.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

fn mpq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mpq"))
        .current_dir(workspace_root())
        .args(args)
        .output()
        .expect("mpq runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8")
}

const REACH: &str = "examples/programs/reachability.dl";
const UNSHARDABLE: &str = "examples/analyze/unshardable.dl";

#[test]
fn shards_flag_is_answer_invariant() {
    let one = mpq(&[REACH]);
    assert!(one.status.success(), "{}", stderr(&one));
    for k in ["2", "4", "8"] {
        let sharded = mpq(&["--shards", k, REACH]);
        assert!(sharded.status.success(), "K={k}: {}", stderr(&sharded));
        assert_eq!(
            stdout(&sharded),
            stdout(&one),
            "--shards {k} changed the answers"
        );
    }
}

#[test]
fn explain_prints_shard_fan_out_column() {
    let out = mpq(&["--shards", "4", "--explain", REACH]);
    assert!(out.status.success(), "{}", stderr(&out));
    let plan = stdout(&out);
    assert!(plan.contains("fan"), "missing fan column header:\n{plan}");
    // The request-keyed edge leaf splits 4 ways; the gather root not.
    assert!(
        plan.lines().any(|l| l.contains("edb") && l.contains(" 4 ")),
        "no EDB row reports fan-out 4:\n{plan}"
    );
    assert!(
        plan.lines()
            .any(|l| l.contains("gather") && l.contains(" 1 ")),
        "gather rows must stay single-instance:\n{plan}"
    );
}

#[test]
fn stats_carry_shard_counters() {
    let out = mpq(&["--shards", "4", "--stats", REACH]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stats = stderr(&out);
    let routed = stats
        .lines()
        .find(|l| l.contains("shard routed frames"))
        .unwrap_or_else(|| panic!("no shard routed frames line:\n{stats}"));
    let n: u64 = routed.rsplit(':').next().unwrap().trim().parse().unwrap();
    assert!(n > 0, "sharding never routed a frame:\n{stats}");
    assert!(
        stats.contains("shard max skew"),
        "no shard max skew line:\n{stats}"
    );

    // At --shards 1 the router must never engage.
    let out = mpq(&["--stats", REACH]);
    let stats = stderr(&out);
    assert!(
        stats.contains("shard routed frames: 0"),
        "router engaged at K=1:\n{stats}"
    );
}

#[test]
fn unshardable_fixture_warns_mp108() {
    let out = mpq(&["--shards", "4", "--explain", UNSHARDABLE]);
    assert!(out.status.success(), "MP108 is a warning, not an error");
    let diag = stderr(&out);
    assert!(
        diag.contains("warning[MP108]"),
        "fixture no longer triggers MP108:\n{diag}"
    );
    assert!(diag.contains("--shards 4"), "{diag}");

    // Silent without --shards.
    let out = mpq(&["--explain", UNSHARDABLE]);
    assert!(!stderr(&out).contains("MP108"), "MP108 fired at K=1");
}

#[test]
fn shards_zero_is_a_usage_error() {
    let out = mpq(&["--shards", "0", REACH]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--shards must be at least 1"));
}

#[test]
fn sharded_chaos_run_verifies_its_own_trace() {
    let out = mpq(&["--shards", "4", "--chaos", "11", "--check", REACH]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("trace verified"), "{}", stderr(&out));
}
