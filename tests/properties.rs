//! Property-based tests over the core invariants:
//!
//! * the engine computes the goal portion of the minimum model for
//!   arbitrary EDBs (naive bottom-up as the oracle), under arbitrary
//!   delivery schedules — the conjunction of §1's semantics and
//!   Thm 3.1's termination claim;
//! * qual trees produced by the Graham reduction always satisfy the
//!   qual-tree property, and composition (Thm 4.2) preserves it;
//! * storage operators obey their algebraic laws.

use mp_datalog::Database;
use mp_framework::baselines::{Evaluator, Naive};
use mp_framework::engine::{Engine, RuntimeKind, Schedule};
use mp_framework::rulegoal::SipKind;
use mp_framework::workloads::programs;
use mp_hypergraph::{monotone_flow, MonotoneFlow};
use mp_storage::{ops, tuple, Relation, Tuple};
use proptest::prelude::*;

fn edge_db(edges: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    db.declare("edge", 2).unwrap();
    for &(a, b) in edges {
        db.insert("edge", tuple![a as i64, b as i64]).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_equals_naive_on_linear_tc(
        edges in prop::collection::vec((0u8..12, 0u8..12), 0..40),
        start in 0u8..12,
        seed in 0u64..u64::MAX,
    ) {
        let db = edge_db(&edges);
        let program = programs::tc_linear(start as i64);
        let expect = Naive.evaluate(&program, &db).unwrap().answers.sorted_rows();
        let got = Engine::new(program, db)
            .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
            .evaluate()
            .unwrap()
            .answers
            .sorted_rows();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn engine_equals_naive_on_nonlinear_tc(
        edges in prop::collection::vec((0u8..9, 0u8..9), 0..25),
        start in 0u8..9,
        sip_idx in 0usize..5,
    ) {
        let db = edge_db(&edges);
        let program = programs::tc_nonlinear(start as i64);
        let expect = Naive.evaluate(&program, &db).unwrap().answers.sorted_rows();
        let got = Engine::new(program, db)
            .with_sip(SipKind::ALL[sip_idx])
            .evaluate()
            .unwrap()
            .answers
            .sorted_rows();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn engine_equals_naive_on_odd_even(
        edges in prop::collection::vec((0u8..10, 0u8..10), 0..30),
        start in 0u8..10,
        seed in 0u64..u64::MAX,
    ) {
        let db = edge_db(&edges);
        let program = programs::odd_even(start as i64);
        let expect = Naive.evaluate(&program, &db).unwrap().answers.sorted_rows();
        let got = Engine::new(program, db)
            .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
            .evaluate()
            .unwrap()
            .answers
            .sorted_rows();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn baselines_agree_on_random_graphs(
        edges in prop::collection::vec((0u8..10, 0u8..10), 0..30),
        start in 0u8..10,
    ) {
        let db = edge_db(&edges);
        let program = programs::tc_linear(start as i64);
        let expect = Naive.evaluate(&program, &db).unwrap().answers.sorted_rows();
        for ev in mp_framework::baselines::all_baselines() {
            let got = ev.evaluate(&program, &db).unwrap().answers.sorted_rows();
            prop_assert_eq!(&got, &expect, "{} disagrees", ev.name());
        }
    }
}

// ---------------------------------------------------------------------
// Qual tree properties over random rules
// ---------------------------------------------------------------------

/// A random rule over a small variable pool: head p(V0, V1), body of
/// `spec` atoms where each atom's variables are drawn from the pool.
fn rule_from_spec(spec: &[Vec<u8>]) -> mp_datalog::Rule {
    use mp_datalog::{Atom, Rule, Term};
    let var = |i: u8| Term::var(format!("V{i}"));
    let body: Vec<Atom> = spec
        .iter()
        .enumerate()
        .map(|(i, vars)| {
            Atom::new(
                format!("s{i}").as_str(),
                vars.iter().map(|&v| var(v)).collect(),
            )
        })
        .collect();
    // Head uses the two most frequent variables to stay safe (range
    // restricted) — fall back to the first body var.
    let mut head_vars: Vec<u8> = spec.iter().flatten().copied().collect();
    head_vars.sort_unstable();
    head_vars.dedup();
    let h0 = head_vars.first().copied().unwrap_or(0);
    let h1 = head_vars.get(1).copied().unwrap_or(h0);
    Rule::new(Atom::new("p", vec![var(h0), var(h1)]), body)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn qual_trees_satisfy_the_qual_tree_property(
        spec in prop::collection::vec(
            prop::collection::vec(0u8..6, 1..4), 1..6),
    ) {
        let rule = rule_from_spec(&spec);
        let bound = std::collections::BTreeSet::from([mp_datalog::Var::new("V0")]);
        if let MonotoneFlow::Monotone(qt) = monotone_flow(&rule, &bound) {
            prop_assert!(qt.verify().is_ok(), "{rule} produced a bad qual tree");
            // The BFS order schedules every subgoal exactly once.
            let mut order = qt.bfs_subgoal_order();
            order.sort_unstable();
            prop_assert_eq!(order, (0..rule.body.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn composition_preserves_the_qual_tree_property(
        outer in prop::collection::vec(
            prop::collection::vec(0u8..5, 1..3), 1..4),
        inner in prop::collection::vec(
            prop::collection::vec(0u8..5, 1..3), 1..4),
    ) {
        use mp_hypergraph::compose::compose;
        let rv = rule_from_spec(&outer);
        let bound = std::collections::BTreeSet::from([mp_datalog::Var::new("V0")]);
        let MonotoneFlow::Monotone(qv) = monotone_flow(&rv, &bound) else {
            return Ok(());
        };
        // Find a leaf subgoal of the outer tree to resolve on.
        let leaf = (0..rv.body.len()).find(|&i| {
            let node = qv.labels.iter().position(|&l| l == mp_hypergraph::EdgeLabel::Subgoal(i)).unwrap();
            qv.neighbours(node).len() == 1
        });
        let Some(p) = leaf else { return Ok(()); };
        // Build an inner rule whose head matches subgoal p.
        let mut rw = rule_from_spec(&inner);
        rw.head = mp_datalog::Atom::new(
            rv.body[p].pred.clone(),
            (0..rv.body[p].arity())
                .map(|i| mp_datalog::Term::var(format!("H{i}")))
                .collect(),
        );
        // Inner rule must be monotone under its head binding: bind the
        // vars of the first head arg analog (approximate: bind H0 when
        // present). Skip non-monotone inners.
        if rw.body.is_empty() { return Ok(()); }
        // Make the inner rule range-plausible: append a subgoal holding
        // all head vars so every head var occurs in the body.
        rw.body.push(mp_datalog::Atom::new("hcover", rw.head.terms.clone()));
        let inner_bound: std::collections::BTreeSet<mp_datalog::Var> =
            rw.head.vars().into_iter().take(1).collect();
        let MonotoneFlow::Monotone(qw) = monotone_flow(&rw, &inner_bound) else {
            return Ok(());
        };
        if let Ok(comp) = compose(&rv, &qv, p, &rw, &qw) {
            prop_assert!(
                comp.qual_tree.verify().is_ok(),
                "composed tree violates the property for {rv} + {rw}"
            );
            prop_assert_eq!(
                comp.rule.body.len(),
                rv.body.len() - 1 + rw.body.len()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Storage algebra laws
// ---------------------------------------------------------------------

fn rel2(rows: &[(i64, i64)]) -> Relation {
    rows.iter()
        .map(|&(a, b)| tuple![a, b])
        .collect::<Vec<Tuple>>()
        .into_iter()
        .fold(Relation::new(2), |mut r, t| {
            r.insert(t).unwrap();
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn join_is_commutative_up_to_projection(
        xs in prop::collection::vec((0i64..6, 0i64..6), 0..20),
        ys in prop::collection::vec((0i64..6, 0i64..6), 0..20),
    ) {
        let l = rel2(&xs);
        let r = rel2(&ys);
        let lr = ops::join(&l, &r, &[(1, 0)]).unwrap();
        let rl = ops::join(&r, &l, &[(0, 1)]).unwrap();
        // Reorder rl's columns to match lr's layout.
        let rl_fixed = ops::project(&rl, &[2, 3, 0, 1]).unwrap();
        prop_assert!(lr.set_eq(&rl_fixed));
    }

    #[test]
    fn semijoin_is_join_projected(
        xs in prop::collection::vec((0i64..6, 0i64..6), 0..20),
        ys in prop::collection::vec((0i64..6, 0i64..6), 0..20),
    ) {
        let l = rel2(&xs);
        let r = rel2(&ys);
        let semi = ops::semijoin(&l, &r, &[(1, 0)]).unwrap();
        let via_join = ops::project(&ops::join(&l, &r, &[(1, 0)]).unwrap(), &[0, 1]).unwrap();
        prop_assert!(semi.set_eq(&via_join));
    }

    #[test]
    fn union_difference_partition(
        xs in prop::collection::vec((0i64..6, 0i64..6), 0..20),
        ys in prop::collection::vec((0i64..6, 0i64..6), 0..20),
    ) {
        let l = rel2(&xs);
        let r = rel2(&ys);
        let u = ops::union(&l, &r).unwrap();
        let d = ops::difference(&u, &r).unwrap();
        // u − r = l − r.
        let lr = ops::difference(&l, &r).unwrap();
        prop_assert!(d.set_eq(&lr));
        prop_assert!(u.len() <= l.len() + r.len());
    }

    #[test]
    fn project_idempotent(
        xs in prop::collection::vec((0i64..6, 0i64..6), 0..20),
    ) {
        let l = rel2(&xs);
        let p1 = ops::project(&l, &[0]).unwrap();
        let p2 = ops::project(&p1, &[0]).unwrap();
        prop_assert!(p1.set_eq(&p2));
    }
}
