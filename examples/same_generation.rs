//! Same-generation cousins, plus a look inside the compiler: the
//! information-passing rule/goal graph (§2), its strong components, and
//! the monotone-flow analysis (§4), exported as Graphviz dot.
//!
//! ```sh
//! cargo run --example same_generation > sg.dot && dot -Tpng sg.dot -o sg.png
//! ```
//! (The human-readable report goes to stderr; the dot goes to stdout.)

use mp_datalog::Database;
use mp_framework::engine::Engine;
use mp_framework::hypergraph::{monotone_flow, MonotoneFlow};
use mp_framework::rulegoal::{dot, RuleGoalGraph, SipKind};
use mp_framework::workloads::{graphs, programs};
use std::collections::BTreeSet;

fn main() {
    let mut db = Database::new();
    let leaf = graphs::same_generation(&mut db, 4, 3, 0.3, 11);
    let program = programs::same_generation(leaf);

    // §4: the recursive sg rule has the monotone flow property under the
    // bf binding.
    let sg_rule = program
        .pidb_rules()
        .find(|r| r.body.len() == 3)
        .expect("recursive rule");
    let bound: BTreeSet<_> = sg_rule.head.vars().into_iter().take(1).collect();
    match monotone_flow(sg_rule, &bound) {
        MonotoneFlow::Monotone(qt) => {
            eprintln!(
                "recursive sg rule is monotone; qual-tree subgoal order: {:?}",
                qt.bfs_subgoal_order()
            );
        }
        MonotoneFlow::Cyclic(core) => {
            eprintln!("unexpectedly cyclic, core = {core:?}");
        }
    }

    // §2: the rule/goal graph.
    let graph = RuleGoalGraph::build(&program, &db, SipKind::Greedy).expect("graph");
    let (goals, rules, edb, cycles) = graph.census();
    eprintln!(
        "rule/goal graph: {} nodes ({goals} goal, {rules} rule, {edb} EDB leaves, {cycles} cycle refs), {} recursive component(s)",
        graph.len(),
        graph.scc().nontrivial_components().count()
    );

    // §3: evaluate.
    let result = Engine::new(program, db).evaluate().expect("evaluate");
    eprintln!(
        "same-generation cousins of leaf {leaf}: {} found, {} messages, {} probe waves",
        result.answers.len(),
        result.stats.total_messages(),
        result.stats.probe_waves,
    );

    // Fig-1-style dot on stdout.
    println!("{}", dot::to_dot(&graph));
}
