//! Bill of materials: explode an assembly into all transitive
//! components, on both runtimes.
//!
//! The BOM closure is the divide-and-conquer recursion family the paper
//! calls out ("nonlinear recursion frequently arises in divide-and-
//! conquer algorithms", §1.2) — here exercised with both the linear and
//! the nonlinear formulation, and with the threaded runtime to show the
//! shared-nothing deployment.
//!
//! ```sh
//! cargo run --release --example bill_of_materials
//! ```

use mp_datalog::{parser::parse_program, Database};
use mp_framework::engine::{Engine, RuntimeKind};
use mp_framework::workloads::graphs;

fn main() {
    let mut db = Database::new();
    graphs::bom(&mut db, 200, 4, 7);

    let linear = parse_program(
        "component(A, C) :- uses(A, C).
         component(A, C) :- uses(A, M), component(M, C).
         ?- component(0, C).",
    )
    .unwrap();
    let nonlinear = parse_program(
        "component(A, C) :- uses(A, C).
         component(A, C) :- component(A, M), component(M, C).
         ?- component(0, C).",
    )
    .unwrap();

    let lin = Engine::new(linear, db.clone()).evaluate().expect("linear");
    println!(
        "assembly 0 explodes into {} distinct components",
        lin.answers.len()
    );
    let mut preview = lin.answers.sorted_rows();
    preview.truncate(10);
    println!("first components: {preview:?}\n");

    let non = Engine::new(nonlinear.clone(), db.clone())
        .evaluate()
        .expect("nonlinear");
    assert_eq!(lin.answers, non.answers, "formulations agree");
    println!("same answer from the nonlinear formulation:");
    println!(
        "  linear    : {:>8} messages, {:>6} stored tuples",
        lin.stats.total_messages(),
        lin.stats.stored_tuples
    );
    println!(
        "  nonlinear : {:>8} messages, {:>6} stored tuples",
        non.stats.total_messages(),
        non.stats.stored_tuples
    );

    // Shared-nothing: the same query with one OS thread per graph node.
    let threaded = Engine::new(nonlinear, db)
        .with_runtime(RuntimeKind::Threads)
        .evaluate()
        .expect("threads");
    assert_eq!(threaded.answers, lin.answers);
    println!(
        "\nthreaded runtime agrees across {} processes (no shared memory).",
        threaded.graph_nodes
    );
}
