//! Quickstart: evaluate a recursive Datalog query with the message
//! passing engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mp_framework::datalog::{parser::parse_program, Database};
use mp_framework::engine::Engine;
use mp_storage::tuple;

fn main() {
    // A program is an EDB (facts) plus Horn rules plus a query (§1 of
    // Van Gelder 1986). Facts can live in the source text or in a
    // Database built programmatically.
    let program = parse_program(
        r#"
        % Who can reach whom by direct flights?
        reach(X, Y) :- flight(X, Y).
        reach(X, Z) :- reach(X, Y), flight(Y, Z).

        ?- reach("SFO", City).
        "#,
    )
    .expect("program parses");

    let mut db = Database::new();
    for (a, b) in [
        ("SFO", "LAX"),
        ("LAX", "JFK"),
        ("JFK", "LHR"),
        ("LHR", "CDG"),
        ("CDG", "SFO"), // a cycle: duplicate elimination terminates it
        ("BOS", "JFK"), // unreachable from SFO, never explored
    ] {
        db.insert("flight", tuple![a, b]).expect("arity 2");
    }

    let result = Engine::new(program, db).evaluate().expect("evaluation");

    println!("cities reachable from SFO:");
    for t in result.answers.sorted_rows() {
        println!("  {t}");
    }

    let s = &result.stats;
    println!("\nhow the network did it:");
    println!("  rule/goal graph nodes : {}", result.graph_nodes);
    println!("  tuple requests        : {}", s.tuple_requests);
    println!("  answer tuples         : {}", s.answers);
    println!("  protocol messages     : {}", s.protocol_messages);
    println!("  join probes           : {}", s.join_probes);
    println!(
        "  protocol overhead     : {:.2} per work message",
        s.protocol_overhead()
    );
}
