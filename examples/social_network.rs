//! Social-network influence: who is transitively influenced by one user,
//! and how much work each evaluation method does to find out.
//!
//! This is the §1 efficiency story on a realistic shape: a point query
//! over a large-ish random graph, where "restricting the computation to
//! relevant portions of intermediate relations" (class-`d` bindings) is
//! the difference between touching a neighbourhood and materializing the
//! whole transitive closure.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use mp_datalog::Database;
use mp_framework::baselines::all_baselines;
use mp_framework::engine::Engine;
use mp_framework::rulegoal::SipKind;
use mp_framework::workloads::{graphs, programs};

fn main() {
    let users = 400;
    let follows = 850;
    let mut db = Database::new();
    graphs::random_graph(&mut db, "edge", users, follows, 2026);
    let program = programs::tc_linear(42);

    println!("network: {users} users, {follows} follow edges; query: influence of user 42\n");

    // The message-passing engine, all four SIP strategies.
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>10}",
        "method", "answers", "msgs", "stored", "time(ms)"
    );
    for sip in SipKind::ALL {
        let t0 = std::time::Instant::now();
        let r = Engine::new(program.clone(), db.clone())
            .with_sip(sip)
            .evaluate()
            .expect("engine");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<22} {:>9} {:>12} {:>12} {:>10.1}",
            format!("engine/{}", sip.name()),
            r.answers.len(),
            r.stats.total_messages(),
            r.stats.stored_tuples,
            dt
        );
    }

    // The baselines.
    for ev in all_baselines() {
        let t0 = std::time::Instant::now();
        let r = ev.evaluate(&program, &db).expect("baseline");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<22} {:>9} {:>12} {:>12} {:>10.1}",
            ev.name(),
            r.answers.len(),
            "-",
            r.stats.stored_tuples,
            dt
        );
    }

    println!(
        "\nreading: the engine and magic sets only explore user 42's \
         neighbourhood; naive/semi-naive/relevant materialize the whole \
         closure."
    );
}
