//! Watch the messages: run the paper's P1 (Example 2.1, Fig 1) on a tiny
//! EDB with tracing enabled and print the full message log, then a
//! per-kind census — including the §3.2 termination protocol's probe
//! waves doing their two-wave dance.
//!
//! ```sh
//! cargo run --example distributed_trace
//! ```

use mp_framework::engine::{Engine, Payload};
use mp_framework::workloads::scenarios;
use std::collections::BTreeMap;

fn main() {
    let w = scenarios::p1_chain(6);
    let result = Engine::new(w.program.clone(), w.db.clone())
        .with_trace(true)
        .evaluate()
        .expect("evaluate");

    let trace = result.trace.expect("tracing was enabled");
    println!("== full message log ({} messages) ==", trace.len());
    for (i, m) in trace.iter().enumerate() {
        let tag = match &m.payload {
            Payload::EndRequest { .. }
            | Payload::EndNegative { .. }
            | Payload::EndConfirmed { .. }
            | Payload::SccFinished => "  [protocol]",
            _ => "",
        };
        println!("{i:>4}  {m}{tag}");
    }

    let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
    for m in &trace {
        *census.entry(m.payload.kind_name()).or_insert(0) += 1;
    }
    println!("\n== census ==");
    for (kind, count) in census {
        println!("  {kind:<18} {count}");
    }
    println!("\nanswers to p(0, Z): {:?}", result.answers.sorted_rows());
    println!(
        "probe waves completed before the leaders declared the recursive \
         components idle: {}",
        result.stats.probe_waves
    );
}
