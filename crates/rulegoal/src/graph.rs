//! Rule/goal graph construction (§2.1, Def 2.2).
//!
//! Arc orientation follows the paper: "We consider edges in this tree to
//! be oriented from child to parent, the direction in which 'answers'
//! flow." Requests flow against the arcs. A cycle edge runs from an
//! ancestor goal node to the unexpanded variant subgoal node, making the
//! variant a *successor* of the ancestor (its answers are "also sent to
//! the other successor nodes, which are descendants", §3.1).

use crate::scc::SccInfo;
use crate::{ArgClass, GoalLabel, SipKind, SipPlan};
use mp_datalog::unify::{mgu, rename_apart};
use mp_datalog::{Atom, Database, DatalogError, Program, Rule, Term};
use std::fmt;

/// Index of a node in the graph.
pub type NodeId = usize;

/// Kind of arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArcKind {
    /// A depth-first spanning tree arc (child → parent).
    Tree,
    /// A cycle edge (ancestor goal node → variant descendant).
    Cycle,
}

/// What a goal node stands for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GoalKind {
    /// An IDB goal with rule children.
    Idb,
    /// An EDB leaf: "it is not processed against the actual EDB relation
    /// during graph construction" (§2.1).
    Edb,
    /// An unexpanded variant of an ancestor; it "performs a selection on
    /// the relation computed by the ancestor" (§2.2).
    CycleRef {
        /// The ancestor goal node supplying this node's tuples.
        ancestor: NodeId,
    },
}

/// A node of the rule/goal graph.
#[derive(Clone, Debug)]
pub enum Node {
    /// A goal (predicate) node.
    Goal {
        /// Canonical label (predicate + classes + constants + repeated-
        /// variable pattern); variants share labels.
        label: GoalLabel,
        /// Representative atom in instance variables.
        atom: Atom,
        /// The node's role.
        kind: GoalKind,
    },
    /// A rule node: a rule instance ("a copy of the rule that began with
    /// all new variables, then had the mgu applied", §2.1) plus its SIP
    /// plan.
    Rule {
        /// The instantiated rule.
        rule: Rule,
        /// Index of the originating rule in the program.
        source_index: usize,
        /// The sideways information passing plan.
        plan: SipPlan,
        /// The parent goal's label (head adornment provider).
        head_label: GoalLabel,
    },
}

impl Node {
    /// The goal label, for goal nodes.
    pub fn goal_label(&self) -> Option<&GoalLabel> {
        match self {
            Node::Goal { label, .. } => Some(label),
            Node::Rule { .. } => None,
        }
    }

    /// True for rule nodes.
    pub fn is_rule(&self) -> bool {
        matches!(self, Node::Rule { .. })
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Node::Goal { label, kind, .. } => match kind {
                GoalKind::Idb => format!("goal {}", label.render()),
                GoalKind::Edb => format!("edb {}", label.render()),
                GoalKind::CycleRef { ancestor } => {
                    format!("cycle-ref {} (from #{ancestor})", label.render())
                }
            },
            Node::Rule { rule, .. } => format!("rule {rule}"),
        }
    }
}

/// Errors during graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Program validation failed.
    Datalog(DatalogError),
    /// The graph exceeded the configured node budget.
    TooLarge {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Datalog(e) => write!(f, "{e}"),
            GraphError::TooLarge { limit } => {
                write!(f, "rule/goal graph exceeded {limit} nodes")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<DatalogError> for GraphError {
    fn from(e: DatalogError) -> Self {
        GraphError::Datalog(e)
    }
}

/// The information-passing rule/goal graph.
#[derive(Clone, Debug)]
pub struct RuleGoalGraph {
    nodes: Vec<Node>,
    /// `out[n]` = customers of `n` (arcs n → customer; answer direction).
    out_arcs: Vec<Vec<(NodeId, ArcKind)>>,
    /// `in[n]` = feeders of `n` (arcs feeder → n).
    in_arcs: Vec<Vec<(NodeId, ArcKind)>>,
    root: NodeId,
    scc: SccInfo,
    sip: SipKind,
}

/// Node budget guarding against combinatorial explosion on adversarial
/// programs (Thm 2.1 guarantees finiteness, not smallness).
const DEFAULT_MAX_NODES: usize = 200_000;

struct Builder<'a> {
    program: &'a Program,
    db: &'a Database,
    sip: SipKind,
    stats: Option<mp_datalog::DbStats>,
    nodes: Vec<Node>,
    out_arcs: Vec<Vec<(NodeId, ArcKind)>>,
    in_arcs: Vec<Vec<(NodeId, ArcKind)>>,
    rename_counter: u64,
    max_nodes: usize,
}

impl<'a> Builder<'a> {
    fn add_node(&mut self, node: Node) -> Result<NodeId, GraphError> {
        if self.nodes.len() >= self.max_nodes {
            return Err(GraphError::TooLarge {
                limit: self.max_nodes,
            });
        }
        self.nodes.push(node);
        self.out_arcs.push(Vec::new());
        self.in_arcs.push(Vec::new());
        Ok(self.nodes.len() - 1)
    }

    fn add_arc(&mut self, from: NodeId, to: NodeId, kind: ArcKind) {
        self.out_arcs[from].push((to, kind));
        self.in_arcs[to].push((from, kind));
    }

    /// Expand an IDB goal node: one rule node per unifying rule, then
    /// recursively expand subgoals. `ancestors` is the DFS path of goal
    /// labels (with node ids).
    fn expand(
        &mut self,
        goal_id: NodeId,
        ancestors: &mut Vec<(GoalLabel, NodeId)>,
    ) -> Result<(), GraphError> {
        let (goal_atom, goal_label) = match &self.nodes[goal_id] {
            Node::Goal { atom, label, .. } => (atom.clone(), label.clone()),
            Node::Rule { .. } => unreachable!("expand is only called on goal nodes"),
        };
        let head_adornment = goal_label.adornment();
        let candidates: Vec<(usize, Rule)> = self
            .program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.head.pred == goal_atom.pred && r.head.arity() == goal_atom.arity())
            .map(|(i, r)| (i, r.clone()))
            .collect();

        for (source_index, rule) in candidates {
            let fresh = rename_apart(&rule, &mut self.rename_counter);
            // Unify the fresh head with the goal atom. Pair order matters
            // for cosmetics only (fresh vars rename onto goal vars); the
            // mgu is the mgu either way.
            let Some(sigma) = mgu(&fresh.head, &goal_atom) else {
                continue; // constant clash: this rule cannot serve the goal
            };
            let instance = sigma.apply_rule(&fresh);
            let plan = crate::sip::plan_with_stats(
                &instance,
                &head_adornment,
                self.sip,
                self.stats.as_ref(),
            );
            let rule_id = self.add_node(Node::Rule {
                rule: instance.clone(),
                source_index,
                plan: plan.clone(),
                head_label: goal_label.clone(),
            })?;
            self.add_arc(rule_id, goal_id, ArcKind::Tree);

            // Visit subgoals in SIP order so the DFS tree mirrors the
            // evaluation order (cosmetic; cycle detection is order-
            // independent because labels are canonical).
            for &i in &plan.order {
                let sg_atom = instance.body[i].clone();
                let sg_adornment = plan.adornments[i].clone();
                let label = GoalLabel::new(&sg_atom, &sg_adornment);

                if self.db.contains_pred(&sg_atom.pred) {
                    let leaf = self.add_node(Node::Goal {
                        label,
                        atom: sg_atom,
                        kind: GoalKind::Edb,
                    })?;
                    self.add_arc(leaf, rule_id, ArcKind::Tree);
                } else if let Some(&(_, anc_id)) = ancestors.iter().find(|(l, _)| *l == label) {
                    let reference = self.add_node(Node::Goal {
                        label,
                        atom: sg_atom,
                        kind: GoalKind::CycleRef { ancestor: anc_id },
                    })?;
                    self.add_arc(reference, rule_id, ArcKind::Tree);
                    self.add_arc(anc_id, reference, ArcKind::Cycle);
                } else {
                    let child = self.add_node(Node::Goal {
                        label: label.clone(),
                        atom: sg_atom,
                        kind: GoalKind::Idb,
                    })?;
                    self.add_arc(child, rule_id, ArcKind::Tree);
                    ancestors.push((label, child));
                    self.expand(child, ancestors)?;
                    ancestors.pop();
                }
            }
        }
        Ok(())
    }
}

impl RuleGoalGraph {
    /// Build the graph for `program` over `db` with the given SIP
    /// strategy. Validates the program first.
    pub fn build(
        program: &Program,
        db: &Database,
        sip: SipKind,
    ) -> Result<RuleGoalGraph, GraphError> {
        Self::build_with_limit(program, db, sip, DEFAULT_MAX_NODES)
    }

    /// [`RuleGoalGraph::build`] with an explicit node budget.
    pub fn build_with_limit(
        program: &Program,
        db: &Database,
        sip: SipKind,
        max_nodes: usize,
    ) -> Result<RuleGoalGraph, GraphError> {
        program.validate(db)?;
        let goal_arity = program
            .query_rules()
            .next()
            .expect("validate ensures a query rule")
            .head
            .arity();

        let stats = if sip == SipKind::CostBased {
            Some(mp_datalog::DbStats::of(db))
        } else {
            None
        };
        let mut b = Builder {
            program,
            db,
            sip,
            stats,
            nodes: Vec::new(),
            out_arcs: Vec::new(),
            in_arcs: Vec::new(),
            rename_counter: 0,
            max_nodes,
        };

        // Top-level goal node: goal(G0..Gk), all class f.
        let root_atom = Atom::new(
            Program::goal_pred(),
            (0..goal_arity)
                .map(|i| Term::var(format!("G{i}")))
                .collect(),
        );
        let root_adornment = crate::Adornment((0..goal_arity).map(|_| ArgClass::F).collect());
        let root_label = GoalLabel::new(&root_atom, &root_adornment);
        let root = b.add_node(Node::Goal {
            label: root_label.clone(),
            atom: root_atom,
            kind: GoalKind::Idb,
        })?;
        let mut ancestors = vec![(root_label, root)];
        b.expand(root, &mut ancestors)?;

        let scc = SccInfo::compute(b.nodes.len(), &b.out_arcs, &b.in_arcs);
        Ok(RuleGoalGraph {
            nodes: b.nodes,
            out_arcs: b.out_arcs,
            in_arcs: b.in_arcs,
            root,
            scc,
            sip,
        })
    }

    /// The top-level goal node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The SIP strategy the graph was built with.
    pub fn sip(&self) -> SipKind {
        self.sip
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// All nodes with ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes.iter().enumerate()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a (degenerate) empty graph — never produced by `build`.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Customers of `id` (arcs `id → customer`; answers flow this way).
    pub fn customers(&self, id: NodeId) -> &[(NodeId, ArcKind)] {
        &self.out_arcs[id]
    }

    /// Feeders of `id` (arcs `feeder → id`).
    pub fn feeders(&self, id: NodeId) -> &[(NodeId, ArcKind)] {
        &self.in_arcs[id]
    }

    /// Strong-component information (leaders, BFSTs).
    pub fn scc(&self) -> &SccInfo {
        &self.scc
    }

    /// How many goal nodes could be merged with an identically-labelled
    /// node. §2.2: "several nodes in the graph may have identical
    /// predicates and binding patterns. For single processor computation
    /// it is probably desirable to coalesce such nodes (thereby
    /// introducing cross and forward edges). However, for distributed or
    /// parallel computation, combining nodes may well be counter-
    /// productive, so in this paper we shall assume that it is not done."
    /// We follow the paper (no coalescing at runtime) and expose the
    /// potential saving as an analysis, measured by experiment E8.
    pub fn coalescible_nodes(&self) -> usize {
        let mut counts: std::collections::HashMap<&GoalLabel, usize> =
            std::collections::HashMap::new();
        for (_, n) in self.nodes() {
            if let Some(l) = n.goal_label() {
                *counts.entry(l).or_insert(0) += 1;
            }
        }
        counts.values().map(|&c| c - 1).sum()
    }

    /// Prune the graph down to the nodes marked `true` in `keep`,
    /// compacting node ids and recomputing strong-component information.
    ///
    /// Used by the mp-analyze dead-rule elimination: the caller computes
    /// liveness (root-reachability avoiding abstractly-empty rule nodes)
    /// and this method performs the structural surgery. Invariants the
    /// caller must uphold, asserted here where cheap:
    ///
    /// * the root is kept;
    /// * a kept rule node keeps all of its subgoal feeders (pruning is
    ///   whole-subtree, so feeder *order* — which `Network::compile` maps
    ///   onto SIP plan order — is preserved verbatim);
    /// * a kept cycle-ref's ancestor is kept (the ancestor lies on the
    ///   ref's own tree path to the root).
    pub fn retain(&self, keep: &[bool]) -> RuleGoalGraph {
        assert_eq!(keep.len(), self.nodes.len(), "keep mask length");
        assert!(keep[self.root], "the root goal node cannot be pruned");
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut nodes: Vec<Node> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if keep[id] {
                remap[id] = nodes.len();
                nodes.push(node.clone());
            }
        }
        for node in &mut nodes {
            if let Node::Goal {
                kind: GoalKind::CycleRef { ancestor },
                ..
            } = node
            {
                assert!(keep[*ancestor], "kept cycle-ref with pruned ancestor");
                *ancestor = remap[*ancestor];
            }
        }
        // Filter the original adjacency lists in place of rebuilding them,
        // so the relative order of surviving arcs is untouched.
        let filter_arcs = |arcs: &[Vec<(NodeId, ArcKind)>]| -> Vec<Vec<(NodeId, ArcKind)>> {
            arcs.iter()
                .enumerate()
                .filter(|&(id, _)| keep[id])
                .map(|(_, list)| {
                    list.iter()
                        .filter(|&&(other, _)| keep[other])
                        .map(|&(other, kind)| (remap[other], kind))
                        .collect()
                })
                .collect()
        };
        let out_arcs = filter_arcs(&self.out_arcs);
        let in_arcs = filter_arcs(&self.in_arcs);
        let scc = SccInfo::compute(nodes.len(), &out_arcs, &in_arcs);
        RuleGoalGraph {
            nodes,
            out_arcs,
            in_arcs,
            root: remap[self.root],
            scc,
            sip: self.sip,
        }
    }

    /// Count of nodes by type: (goal, rule, edb-leaf, cycle-ref).
    pub fn census(&self) -> (usize, usize, usize, usize) {
        let mut goal = 0;
        let mut rule = 0;
        let mut edb = 0;
        let mut cycle = 0;
        for n in &self.nodes {
            match n {
                Node::Rule { .. } => rule += 1,
                Node::Goal { kind, .. } => match kind {
                    GoalKind::Idb => goal += 1,
                    GoalKind::Edb => edb += 1,
                    GoalKind::CycleRef { .. } => cycle += 1,
                },
            }
        }
        (goal, rule, edb, cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::tuple;

    /// The paper's P1: query p(a, Z) over EDB relations r and q.
    fn p1() -> (Program, Database) {
        let program = parse_program(
            "p(X, Y) :- p(X, V), q(V, W), p(W, Y).
             p(X, Y) :- r(X, Y).
             ?- p(\"a\", Z).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("r", tuple!["a", "b"]).unwrap();
        db.insert("q", tuple!["b", "c"]).unwrap();
        (program, db)
    }

    fn labels_of(g: &RuleGoalGraph) -> Vec<String> {
        g.nodes()
            .filter_map(|(_, n)| n.goal_label().map(|l| l.render()))
            .collect()
    }

    #[test]
    fn p1_graph_matches_figure_1() {
        let (program, db) = p1();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();

        // Figure 1 structure (plus the trivial goal() top level the paper
        // omits): goal nodes with binding patterns goal(f), p(a^c,f),
        // p(d,f); the p(d,f) node has TWO cycle refs (its two recursive
        // subgoals) and the p(a^c,f) node has ONE (its first subgoal).
        let labels = labels_of(&g);
        assert!(
            labels.contains(&"p(a^c,V1^f)".to_string())
                || labels.contains(&"p(a^c,V0^f)".to_string()),
            "missing p(a^c, Z^f) node in {labels:?}"
        );
        let cycle_refs = g
            .nodes()
            .filter(|(_, n)| {
                matches!(
                    n,
                    Node::Goal {
                        kind: GoalKind::CycleRef { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(cycle_refs, 3, "one ref under p(a^c,f), two under p(d,f)");

        // Exactly two expanded IDB p-nodes: p(a^c,f) and p(d,f).
        let idb_p = g
            .nodes()
            .filter(|(_, n)| match n {
                Node::Goal {
                    label,
                    kind: GoalKind::Idb,
                    ..
                } => label.pred.name() == "p",
                _ => false,
            })
            .count();
        assert_eq!(idb_p, 2);

        // EDB leaves: r under each of the two p-nodes' base rules, and q
        // under each recursive rule: 2 + 2 = 4.
        let (_, rules, edb, _) = g.census();
        assert_eq!(edb, 4);
        // Rule nodes: 1 query rule + 2 rules per expanded p-node = 5.
        assert_eq!(rules, 5);
    }

    #[test]
    fn p1_sccs_and_leaders() {
        let (program, db) = p1();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        let scc = g.scc();
        let nontrivial: Vec<_> = scc.nontrivial_components().collect();
        assert_eq!(nontrivial.len(), 2, "p(a^c,f) loop and p(d,f) loop");
        for comp in &nontrivial {
            let leader = scc.leader_of(**comp).expect("nontrivial SCC has a leader");
            // The leader is a goal node whose customer lies outside.
            assert!(g.node(leader).goal_label().is_some());
            let outside = g
                .customers(leader)
                .iter()
                .filter(|(c, _)| scc.component_of(*c) != **comp)
                .count();
            assert_eq!(outside, 1);
        }
    }

    #[test]
    fn cycle_ref_points_to_matching_ancestor() {
        let (program, db) = p1();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        for (id, n) in g.nodes() {
            if let Node::Goal {
                label,
                kind: GoalKind::CycleRef { ancestor },
                ..
            } = n
            {
                let anc_label = g.node(*ancestor).goal_label().unwrap();
                assert_eq!(label, anc_label, "variant labels must match");
                // The cycle arc exists ancestor → ref.
                assert!(g
                    .customers(*ancestor)
                    .iter()
                    .any(|&(c, k)| c == id && k == ArcKind::Cycle));
            }
        }
    }

    #[test]
    fn nonrecursive_program_has_no_cycles() {
        let program = parse_program(
            "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
             ?- grandparent(\"ann\", Z).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("parent", tuple!["ann", "bob"]).unwrap();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        assert_eq!(g.scc().nontrivial_components().count(), 0);
        let (_, _, edb, cycle) = g.census();
        assert_eq!(cycle, 0);
        assert_eq!(edb, 2);
    }

    #[test]
    fn graph_size_is_independent_of_edb_size() {
        // Theorem 2.1 / experiment E8.
        let (program, mut db) = p1();
        let g_small = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        for i in 0..500 {
            db.insert("r", tuple![i, i + 1]).unwrap();
            db.insert("q", tuple![i, i]).unwrap();
        }
        let g_large = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        assert_eq!(g_small.len(), g_large.len());
    }

    #[test]
    fn coalescible_count_on_p1() {
        // P1's graph has 4 EDB leaves over two labels (r appears with
        // c,f and d,f adornments once each... the duplicates come from
        // q(V^d, W^f) appearing under both expanded p-nodes and the two
        // p(d,f) cycle refs sharing a label.
        let (program, db) = p1();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        let saving = g.coalescible_nodes();
        assert!(
            saving >= 2,
            "q^df duplicates + cycle-ref twins, got {saving}"
        );
        // Merging would never exceed the goal-node population.
        let (goal, _, edb, cycle) = g.census();
        assert!(saving < goal + edb + cycle);
    }

    #[test]
    fn node_budget_enforced() {
        let (program, db) = p1();
        let err = RuleGoalGraph::build_with_limit(&program, &db, SipKind::Greedy, 3).unwrap_err();
        assert_eq!(err, GraphError::TooLarge { limit: 3 });
    }

    #[test]
    fn constant_clash_prunes_rules() {
        // Rule heads with constants that cannot serve the goal are
        // skipped entirely.
        let program = parse_program(
            "p(1, X) :- e(X).
             p(2, X) :- f(X).
             ?- p(1, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("e", tuple![10]).unwrap();
        db.insert("f", tuple![20]).unwrap();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        // Only the p(1,X) rule is expanded: rule nodes = query + 1.
        let (_, rules, edb, _) = g.census();
        assert_eq!(rules, 2);
        assert_eq!(edb, 1);
    }

    #[test]
    fn nonlinear_same_generation_builds() {
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
             ?- sg(\"a\", Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("flat", tuple!["m", "n"]).unwrap();
        db.insert("up", tuple!["a", "m"]).unwrap();
        db.insert("down", tuple!["n", "y"]).unwrap();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        assert!(g.scc().nontrivial_components().count() >= 1);
    }

    #[test]
    fn retain_prunes_subtrees_and_compacts_ids() {
        // p has two rules; pruning the second rule's whole subtree must
        // keep ids dense, preserve feeder order, and remap cycle refs.
        let (program, db) = p1();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();

        // Kill the p(d,f) goal node's recursive rule subtree: mark the
        // recursive rule node under the *second* expanded p goal plus all
        // nodes only reachable (by feeders) through it.
        let victim = g
            .nodes()
            .filter(|(_, n)| n.is_rule())
            .map(|(id, _)| id)
            .filter(|&id| {
                // A recursive rule: has a cycle-ref feeder.
                g.feeders(id).iter().any(|&(f, _)| {
                    matches!(
                        g.node(f),
                        Node::Goal {
                            kind: GoalKind::CycleRef { .. },
                            ..
                        }
                    )
                })
            })
            .max()
            .expect("p1 has recursive rules");
        // Liveness: BFS from root over feeders, never entering the victim.
        let mut keep = vec![false; g.len()];
        let mut stack = vec![g.root()];
        keep[g.root()] = true;
        while let Some(n) = stack.pop() {
            for &(f, _) in g.feeders(n) {
                if f != victim && !keep[f] {
                    keep[f] = true;
                    stack.push(f);
                }
            }
        }
        let pruned = g.retain(&keep);
        let kept = keep.iter().filter(|&&k| k).count();
        assert_eq!(pruned.len(), kept);
        assert!(pruned.len() < g.len());
        assert_eq!(
            pruned.node(pruned.root()).goal_label().map(|l| l.render()),
            g.node(g.root()).goal_label().map(|l| l.render())
        );
        // Structural sanity: arcs stay in range, cycle refs stay paired
        // with their (remapped) ancestors, rule feeders keep plan arity.
        for (id, n) in pruned.nodes() {
            for &(c, _) in pruned.customers(id) {
                assert!(c < pruned.len());
            }
            if let Node::Goal {
                kind: GoalKind::CycleRef { ancestor },
                ..
            } = n
            {
                assert!(pruned
                    .customers(*ancestor)
                    .iter()
                    .any(|&(c, k)| c == id && k == ArcKind::Cycle));
            }
            if let Node::Rule { rule, .. } = n {
                assert_eq!(
                    pruned
                        .feeders(id)
                        .iter()
                        .filter(|&&(_, k)| k == ArcKind::Tree)
                        .count(),
                    rule.body.len(),
                    "kept rules keep every subgoal feeder"
                );
            }
        }
        // SCC info was recomputed for the smaller graph.
        assert!(pruned.scc().component_count() <= pruned.len());
    }

    #[test]
    fn mutual_recursion_forms_one_scc() {
        let program = parse_program(
            "p(X, Y) :- e(X, Y).
             p(X, Y) :- e(X, U), q(U, Y).
             q(X, Y) :- f(X, U), p(U, Y).
             ?- p(1, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("e", tuple![1, 2]).unwrap();
        db.insert("f", tuple![2, 3]).unwrap();
        let g = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        let nontrivial: Vec<_> = g.scc().nontrivial_components().collect();
        assert_eq!(nontrivial.len(), 1);
        // The single SCC contains both p- and q-labelled goal nodes.
        let comp = *nontrivial[0];
        let preds: std::collections::BTreeSet<String> = g
            .nodes()
            .filter(|(id, _)| g.scc().component_of(*id) == comp)
            .filter_map(|(_, n)| n.goal_label().map(|l| l.pred.name().to_string()))
            .collect();
        assert!(preds.contains("p") && preds.contains("q"));
    }
}
