//! Sideways information passing (SIP) strategies (§2.2).
//!
//! "The subgoal arguments whose variables do not appear in the goal are
//! classified as either `d` or `f` according to an information passing
//! strategy … the subgoal(s) that retain the `f` designation will be
//! evaluated first and will furnish a set of valid values for that
//! argument … and the rule node will pass them to subgoals that have `d`
//! designations."
//!
//! Classes of arguments containing a variable that appears in the goal
//! are passed through unchanged; a variable appearing in one subgoal and
//! nowhere else is labelled `e`.

use crate::{Adornment, ArgClass};
use mp_datalog::{DbStats, Rule, Term, Var};
use mp_hypergraph::{monotone_flow, MonotoneFlow};
use std::collections::{BTreeMap, BTreeSet};

/// Which information passing strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SipKind {
    /// Def 2.4: maximally push `d` arguments forward — schedule, at each
    /// step, a subgoal with the most bound arguments.
    Greedy,
    /// Prolog's strategy: solve subgoals strictly left to right.
    LeftToRight,
    /// No sideways passing at all: subgoal-to-subgoal `d` assignment is
    /// disabled (head classes still pass through). This is the
    /// McKay–Shapiro-style comparison point where "intermediate relations
    /// … tend to be entirely computed" (§1.1).
    AllFree,
    /// Theorem 4.1: order subgoals by the qual tree of the rule's
    /// evaluation hypergraph (edges directed away from the root), falling
    /// back to [`SipKind::Greedy`] when the rule lacks monotone flow.
    QualTree,
    /// §1.2's optimization-information extension: order subgoals by
    /// estimated retrieved size using EDB statistics ([`DbStats`]) under
    /// the uniformity assumption; falls back to [`SipKind::Greedy`] when
    /// no statistics are supplied.
    CostBased,
}

impl SipKind {
    /// All strategies, for sweeps in benches.
    pub const ALL: [SipKind; 5] = [
        SipKind::Greedy,
        SipKind::LeftToRight,
        SipKind::AllFree,
        SipKind::QualTree,
        SipKind::CostBased,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SipKind::Greedy => "greedy",
            SipKind::LeftToRight => "left-to-right",
            SipKind::AllFree => "all-free",
            SipKind::QualTree => "qual-tree",
            SipKind::CostBased => "cost-based",
        }
    }
}

/// Where a `d` argument's bindings come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SipSource {
    /// The rule head's bound arguments.
    Head,
    /// An earlier subgoal (original index).
    Subgoal(usize),
}

/// One arc of the information passing strategy graph (Def 2.3): an `f`
/// argument of `from` furnishes bindings for a `d` argument of subgoal
/// `to` through variable `var`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SipEdge {
    /// The supplier.
    pub from: SipSource,
    /// The consuming subgoal (original index).
    pub to: usize,
    /// The variable carrying the bindings.
    pub var: Var,
}

/// A complete sideways information passing plan for one rule instance
/// under one head adornment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SipPlan {
    /// The strategy that produced the plan.
    pub kind: SipKind,
    /// Subgoal evaluation order (original indices).
    pub order: Vec<usize>,
    /// Adornments indexed by **original** subgoal index.
    pub adornments: Vec<Adornment>,
    /// The strategy graph's arcs (Def 2.3).
    pub edges: Vec<SipEdge>,
    /// Whether the rule (under this head adornment) has the monotone flow
    /// property (Def 4.2) — recorded for reporting regardless of `kind`.
    pub monotone: bool,
}

/// Head variables that are bound before evaluation begins: variables
/// occurring in a `c` or `d` position of the instance head.
pub fn bound_head_vars(rule: &Rule, head_adornment: &Adornment) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    for (i, t) in rule.head.terms.iter().enumerate() {
        if let (Term::Var(v), true) = (t, head_adornment.class(i).is_bound()) {
            out.insert(v.clone());
        }
    }
    out
}

/// Head variables whose values are transmitted (`c`/`d`/`f` positions).
fn transmitted_head_vars(rule: &Rule, head_adornment: &Adornment) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    for (i, t) in rule.head.terms.iter().enumerate() {
        if let (Term::Var(v), false) = (t, head_adornment.class(i) == ArgClass::E) {
            out.insert(v.clone());
        }
    }
    out
}

/// Compute a SIP plan for a rule instance under a head adornment.
/// [`SipKind::CostBased`] falls back to greedy here; use
/// [`plan_with_stats`] to supply EDB statistics.
pub fn plan(rule: &Rule, head_adornment: &Adornment, kind: SipKind) -> SipPlan {
    plan_with_stats(rule, head_adornment, kind, None)
}

/// [`plan`] with optional EDB statistics for [`SipKind::CostBased`].
pub fn plan_with_stats(
    rule: &Rule,
    head_adornment: &Adornment,
    kind: SipKind,
    stats: Option<&DbStats>,
) -> SipPlan {
    assert_eq!(
        rule.head.arity(),
        head_adornment.arity(),
        "head adornment arity mismatch"
    );
    let bound_head = bound_head_vars(rule, head_adornment);
    let transmitted_head = transmitted_head_vars(rule, head_adornment);
    let monotone = monotone_flow(rule, &bound_head).is_monotone();

    // How many subgoals contain each variable (for the `e` rule).
    // Negated subgoals count too: their variables feed the final-stage
    // antijoin probe, so a variable shared with a negated subgoal must
    // be transmitted even when only one positive subgoal mentions it.
    let mut subgoal_count: BTreeMap<Var, usize> = BTreeMap::new();
    for sg in rule.body.iter().chain(rule.neg.iter()) {
        for v in sg.vars() {
            *subgoal_count.entry(v).or_insert(0) += 1;
        }
    }

    let order = match kind {
        SipKind::LeftToRight | SipKind::AllFree => (0..rule.body.len()).collect(),
        SipKind::Greedy => greedy_order(rule, &bound_head),
        SipKind::CostBased => match stats {
            Some(st) => cost_based_order(rule, &bound_head, st),
            None => greedy_order(rule, &bound_head),
        },
        SipKind::QualTree => {
            // With no bound head variable the head hyperedge is empty and
            // the qual tree roots arbitrarily (constants are selections,
            // not flow); the greedy order handles constants correctly.
            if bound_head.is_empty() {
                greedy_order(rule, &bound_head)
            } else {
                match monotone_flow(rule, &bound_head) {
                    MonotoneFlow::Monotone(qt) => qt.bfs_subgoal_order(),
                    MonotoneFlow::Cyclic(_) => greedy_order(rule, &bound_head),
                }
            }
        }
    };
    debug_assert_eq!(order.len(), rule.body.len());

    // Walk the order, assigning classes and recording supplier edges.
    let sideways = kind != SipKind::AllFree;
    let mut produced: BTreeSet<Var> = BTreeSet::new(); // non-head vars bound so far
    let mut producer: BTreeMap<Var, usize> = BTreeMap::new();
    let mut adornments: Vec<Adornment> = vec![Adornment(Vec::new()); rule.body.len()];
    let mut edges = Vec::new();

    for &i in &order {
        let sg = &rule.body[i];
        let mut classes = Vec::with_capacity(sg.arity());
        for t in &sg.terms {
            let class = match t {
                Term::Const(_) => ArgClass::C,
                Term::Var(v) => {
                    if bound_head.contains(v) {
                        edges.push(SipEdge {
                            from: SipSource::Head,
                            to: i,
                            var: v.clone(),
                        });
                        ArgClass::D
                    } else if transmitted_head.contains(v) {
                        // Transmitted head classes pass through: f stays f.
                        ArgClass::F
                    } else if sideways && produced.contains(v) {
                        edges.push(SipEdge {
                            from: SipSource::Subgoal(producer[v]),
                            to: i,
                            var: v.clone(),
                        });
                        ArgClass::D
                    } else if subgoal_count[v] > 1 {
                        // A variable in several subgoals must flow between
                        // them even when the head drops it (head class
                        // `e`): only truly lone variables — "appears in
                        // one subgoal and nowhere else" — may be `e`,
                        // otherwise the cross-subgoal join would be lost.
                        ArgClass::F
                    } else {
                        ArgClass::E
                    }
                }
            };
            classes.push(class);
        }
        // Deduplicate edges per (source, to, var): a variable repeated in
        // one subgoal produces one logical supply arc.
        edges.dedup();
        adornments[i] = Adornment(classes);
        for v in sg.vars() {
            // Bound head vars are supplied by the head; transmitted head
            // vars pass through as `f`. Everything else — including
            // head-`e` variables — becomes a sideways supply source.
            if !bound_head.contains(&v)
                && !transmitted_head.contains(&v)
                && produced.insert(v.clone())
            {
                producer.insert(v, i);
            }
        }
    }

    SipPlan {
        kind,
        order,
        adornments,
        edges,
        monotone,
    }
}

/// Def 2.4's greedy order: repeatedly schedule a subgoal with the most
/// bound arguments (constants, head `c`/`d` variables, and variables
/// produced by already-scheduled subgoals). Ties prefer fewer unbound
/// variable positions, then lower index.
#[allow(clippy::needless_range_loop)] // index drives both the filter and the pick
fn greedy_order(rule: &Rule, bound_head: &BTreeSet<Var>) -> Vec<usize> {
    let k = rule.body.len();
    let mut produced: BTreeSet<Var> = BTreeSet::new();
    let mut scheduled = vec![false; k];
    let mut order = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(usize, usize, usize)> = None; // (idx, bound, unbound)
        for i in 0..k {
            if scheduled[i] {
                continue;
            }
            let sg = &rule.body[i];
            let mut bound = 0usize;
            let mut unbound = 0usize;
            for t in &sg.terms {
                match t {
                    Term::Const(_) => bound += 1,
                    Term::Var(v) => {
                        if bound_head.contains(v) || produced.contains(v) {
                            bound += 1;
                        } else {
                            unbound += 1;
                        }
                    }
                }
            }
            let better = match best {
                None => true,
                Some((_, bb, bu)) => bound > bb || (bound == bb && unbound < bu),
            };
            if better {
                best = Some((i, bound, unbound));
            }
        }
        let (i, _, _) = best.expect("unscheduled subgoal exists");
        scheduled[i] = true;
        order.push(i);
        for v in rule.body[i].vars() {
            produced.insert(v);
        }
    }
    order
}

/// Cost-based order: repeatedly schedule the unscheduled subgoal with
/// the smallest estimated retrieved size, where EDB sizes come from
/// [`DbStats`] (rows divided by distinct counts of bound columns) and
/// IDB subgoals — whose sizes are unknown before evaluation — are scored
/// like the greedy heuristic, as an optimistic `10^(unbound)` proxy.
#[allow(clippy::needless_range_loop)] // index drives both the filter and the pick
fn cost_based_order(rule: &Rule, bound_head: &BTreeSet<Var>, stats: &DbStats) -> Vec<usize> {
    let k = rule.body.len();
    let mut produced: BTreeSet<Var> = BTreeSet::new();
    let mut scheduled = vec![false; k];
    let mut order = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..k {
            if scheduled[i] {
                continue;
            }
            let sg = &rule.body[i];
            let mut bound_cols = Vec::new();
            let mut unbound = 0usize;
            for (c, t) in sg.terms.iter().enumerate() {
                match t {
                    Term::Const(_) => bound_cols.push(c),
                    Term::Var(v) => {
                        if bound_head.contains(v) || produced.contains(v) {
                            bound_cols.push(c);
                        } else {
                            unbound += 1;
                        }
                    }
                }
            }
            let est = match stats.relation(&sg.pred) {
                Some(rs) => rs.selected_rows(&bound_cols),
                None => 10f64.powi(unbound as i32),
            };
            let better = match best {
                None => true,
                Some((_, b)) => est < b,
            };
            if better {
                best = Some((i, est));
            }
        }
        let (i, _) = best.expect("unscheduled subgoal exists");
        scheduled[i] = true;
        order.push(i);
        for v in rule.body[i].vars() {
            produced.insert(v);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_rule;

    fn ad(s: &str) -> Adornment {
        Adornment::parse(s).unwrap()
    }

    /// The paper's P1 recursive rule: p(X,Y) :- p(X,V), q(V,W), p(W,Y).
    /// (Example 2.1 names the middle variables V and W.)
    fn p1_recursive() -> Rule {
        parse_rule("p(X, Y) :- p(X, V), q(V, W), p(W, Y).").unwrap()
    }

    #[test]
    fn example_2_1_greedy_adornment() {
        // Head p(X^d, Y^f): the greedy strategy is
        // p(X^d, V^f) → q(V^d, W^f) → p(W^d, Y^f)  (Fig 1).
        let plan = plan(&p1_recursive(), &ad("df"), SipKind::Greedy);
        assert_eq!(plan.order, vec![0, 1, 2]);
        assert_eq!(plan.adornments[0], ad("df"));
        assert_eq!(plan.adornments[1], ad("df"));
        assert_eq!(plan.adornments[2], ad("df"));
        // Supply arcs: Head→0 (X), 0→1 (V), 1→2 (W).
        assert!(plan.edges.contains(&SipEdge {
            from: SipSource::Head,
            to: 0,
            var: Var::new("X")
        }));
        assert!(plan.edges.contains(&SipEdge {
            from: SipSource::Subgoal(0),
            to: 1,
            var: Var::new("V")
        }));
        assert!(plan.edges.contains(&SipEdge {
            from: SipSource::Subgoal(1),
            to: 2,
            var: Var::new("W")
        }));
    }

    #[test]
    fn left_to_right_matches_greedy_on_p1() {
        // P1's recursive rule is already written in flow order.
        let g = plan(&p1_recursive(), &ad("df"), SipKind::Greedy);
        let l = plan(&p1_recursive(), &ad("df"), SipKind::LeftToRight);
        assert_eq!(g.adornments, l.adornments);
    }

    #[test]
    fn greedy_reorders_a_backwards_rule() {
        // Same rule written backwards: greedy starts from the bound end.
        let r = parse_rule("p(X, Y) :- p(W, Y), q(V, W), p(X, V).").unwrap();
        let plan = plan(&r, &ad("df"), SipKind::Greedy);
        assert_eq!(plan.order, vec![2, 1, 0]);
        assert_eq!(plan.adornments[2], ad("df"));
        assert_eq!(plan.adornments[1], ad("df"));
        assert_eq!(plan.adornments[0], ad("df"));
        // Left-to-right on the same rule is much worse: the first subgoal
        // is evaluated with both arguments free.
        let ltr = super::plan(&r, &ad("df"), SipKind::LeftToRight);
        assert_eq!(ltr.adornments[0], ad("ff"));
    }

    #[test]
    fn all_free_disables_sideways_passing() {
        let p = plan(&p1_recursive(), &ad("df"), SipKind::AllFree);
        // Head classes still pass through...
        assert_eq!(p.adornments[0], ad("df"));
        // ...but V and W are never dynamically bound.
        assert_eq!(p.adornments[1], ad("ff"));
        assert_eq!(p.adornments[2], ad("ff"));
        assert!(p.edges.iter().all(|e| e.from == SipSource::Head));
    }

    #[test]
    fn lone_variables_are_existential() {
        // W appears only in q: "goal p(X^f, Y^e) can be satisfied by
        // producing one tuple for each unique X" — here the analogous
        // subgoal case.
        let r = parse_rule("p(X) :- q(X, W).").unwrap();
        let p = plan(&r, &ad("d"), SipKind::Greedy);
        assert_eq!(p.adornments[0], ad("de"));
    }

    #[test]
    fn head_e_class_passes_through() {
        let r = parse_rule("p(X, Y) :- q(X, Y).").unwrap();
        let p = plan(&r, &ad("fe"), SipKind::Greedy);
        assert_eq!(p.adornments[0], ad("fe"));
    }

    #[test]
    fn head_f_vars_stay_f_in_every_subgoal() {
        // Z appears in two subgoals but is a head f variable: both keep f
        // (§2.2: goal-variable classes pass through).
        let r = parse_rule("p(X, Z) :- r(X, Z), s(Z, Z).").unwrap();
        let p = plan(&r, &ad("df"), SipKind::Greedy);
        assert_eq!(p.adornments[0], ad("df"));
        assert_eq!(p.adornments[1], ad("ff"));
    }

    #[test]
    fn constants_are_class_c() {
        let r = parse_rule("p(X) :- q(X, 3).").unwrap();
        let p = plan(&r, &ad("d"), SipKind::Greedy);
        assert_eq!(p.adornments[0], ad("dc"));
    }

    #[test]
    fn qual_tree_strategy_on_r2() {
        // R2 is monotone: the qual-tree order must schedule a first.
        let r = mp_hypergraph::examples::r2();
        let p = plan(&r, &ad("df"), SipKind::QualTree);
        assert!(p.monotone);
        assert_eq!(p.order[0], 0);
        // b and c in either order next; d and e last.
        assert_eq!(
            BTreeSet::from([p.order[1], p.order[2]]),
            BTreeSet::from([1, 2])
        );
    }

    #[test]
    fn qual_tree_falls_back_to_greedy_on_r3() {
        let r = mp_hypergraph::examples::r3();
        let q = plan(&r, &ad("df"), SipKind::QualTree);
        let g = plan(&r, &ad("df"), SipKind::Greedy);
        assert!(!q.monotone);
        assert_eq!(q.order, g.order);
    }

    #[test]
    fn monotone_flag_reflects_rule_structure() {
        assert!(plan(&p1_recursive(), &ad("df"), SipKind::Greedy).monotone);
        let r3 = mp_hypergraph::examples::r3();
        assert!(!plan(&r3, &ad("df"), SipKind::LeftToRight).monotone);
    }

    #[test]
    fn facts_get_empty_plans() {
        let r = parse_rule("p(1, 2) :- t(1).").unwrap();
        let p = plan(&r, &ad("ff"), SipKind::Greedy);
        assert_eq!(p.order, vec![0]);
        assert_eq!(p.adornments[0], ad("c"));
    }
}
