//! Graphviz export of rule/goal graphs, in the style of the paper's
//! Fig 1: goal nodes carry binding-class superscripts, cycle edges are
//! dashed, and arcs point in the answer-flow direction.

use crate::{ArcKind, GoalKind, Node, RuleGoalGraph};
use std::fmt::Write as _;

/// Render the graph in Graphviz dot syntax.
pub fn to_dot(g: &RuleGoalGraph) -> String {
    let mut s =
        String::from("digraph rule_goal {\n  rankdir=BT;\n  node [fontname=\"monospace\"];\n");
    for (id, node) in g.nodes() {
        let (shape, style, label) = match node {
            Node::Goal { label, kind, .. } => {
                let style = match kind {
                    GoalKind::Idb => "solid",
                    GoalKind::Edb => "filled",
                    GoalKind::CycleRef { .. } => "dotted",
                };
                ("ellipse", style, label.render())
            }
            Node::Rule { rule, plan, .. } => {
                let mut text = format!("{}", rule.head);
                text.push_str(" :- ");
                for (k, &i) in plan.order.iter().enumerate() {
                    if k > 0 {
                        text.push_str(", ");
                    }
                    let _ = write!(
                        text,
                        "{}^{}",
                        rule.body[i].pred,
                        plan.adornments[i].as_string()
                    );
                }
                ("box", "solid", text)
            }
        };
        let escaped = label.replace('"', "\\\"");
        let _ = writeln!(
            s,
            "  n{id} [shape={shape}, style={style}, label=\"{escaped}\"];"
        );
    }
    for (id, _) in g.nodes() {
        for &(to, kind) in g.customers(id) {
            let attrs = match kind {
                ArcKind::Tree => "",
                ArcKind::Cycle => " [style=dashed, constraint=false]",
            };
            let _ = writeln!(s, "  n{id} -> n{to}{attrs};");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SipKind;
    use mp_datalog::parser::parse_program;
    use mp_datalog::Database;
    use mp_storage::tuple;

    #[test]
    fn dot_output_has_nodes_and_dashed_cycles() {
        let program = parse_program(
            "p(X, Y) :- p(X, V), q(V, W), p(W, Y).
             p(X, Y) :- r(X, Y).
             ?- p(\"a\", Z).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("r", tuple!["a", "b"]).unwrap();
        db.insert("q", tuple!["b", "c"]).unwrap();
        let g = crate::RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("style=dashed"), "cycle edges are dashed");
        assert!(dot.contains("p(a^c,"), "Fig-1-style superscripts present");
        assert!(dot.ends_with("}\n"));
    }
}
