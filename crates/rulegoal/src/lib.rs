#![warn(missing_docs)]

//! # mp-rulegoal
//!
//! Information-passing rule/goal graphs (§2 of Van Gelder, SIGMOD 1986).
//!
//! The graph is built top-down from the query by depth-first expansion:
//! goal nodes expand into one rule node per unifying rule; rule nodes
//! expand into goal nodes for their subgoals; EDB subgoals remain leaves;
//! and an IDB subgoal that is a *variant of an ancestor* (matching on
//! argument classes, Def 2.2) gets a **cycle edge** from that ancestor
//! instead of being expanded. Construction always terminates and the
//! graph's size is independent of the EDB size (Thm 2.1).
//!
//! Predicate arguments carry one of four classes (§1.2):
//!
//! * `c` — constants known at graph-construction time,
//! * `d` — dynamically bound to a set of needed values (semi-join
//!   operands, delivered as tuple-request messages),
//! * `e` — existential: only existence matters, the value is never
//!   transmitted,
//! * `f` — free: the job is to find bindings for them.
//!
//! How `d`/`f` are assigned to subgoal arguments is the *sideways
//! information passing strategy* ([`sip`]): greedy (Def 2.4), Prolog
//! left-to-right, all-free (no sideways passing), or qual-tree driven
//! (Thm 4.1).

mod adornment;
pub mod dot;
mod graph;
mod scc;
pub mod sip;

pub use adornment::{Adornment, ArgClass, BadClass, GoalLabel, LabelArg};
pub use graph::{ArcKind, GoalKind, GraphError, Node, NodeId, RuleGoalGraph};
pub use scc::{SccId, SccInfo};
pub use sip::{SipEdge, SipKind, SipPlan, SipSource};
