//! Argument classes, adornments, and canonical goal-node labels.

use mp_datalog::{Atom, Predicate, Term, Var};
use mp_storage::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The four argument classes of §1.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ArgClass {
    /// Constant, known at graph-construction time.
    C,
    /// Dynamically bound to a set of needed values during computation.
    D,
    /// Existential: only the existence of a value matters; not transmitted.
    E,
    /// Free: bindings are to be found and returned.
    F,
}

impl ArgClass {
    /// The superscript letter used in the paper's figures.
    pub fn letter(self) -> char {
        match self {
            ArgClass::C => 'c',
            ArgClass::D => 'd',
            ArgClass::E => 'e',
            ArgClass::F => 'f',
        }
    }

    /// True for classes whose values are known *before* a relation is
    /// evaluated (constants and dynamic bindings).
    pub fn is_bound(self) -> bool {
        matches!(self, ArgClass::C | ArgClass::D)
    }
}

/// A per-argument-position assignment of classes for one atom.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Adornment(pub Vec<ArgClass>);

impl Adornment {
    /// The adornment's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Class at a position.
    pub fn class(&self, i: usize) -> ArgClass {
        self.0[i]
    }

    /// Positions with class `d` — the semijoin input columns.
    pub fn d_positions(&self) -> Vec<usize> {
        self.positions(ArgClass::D)
    }

    /// Positions whose values are shipped in answer tuples: everything
    /// except class `e` ("its value will not be transmitted", §2.2).
    pub fn transmitted_positions(&self) -> Vec<usize> {
        (0..self.0.len()).filter(|&i| self.0[i] != ArgClass::E).collect()
    }

    /// Positions with the given class.
    pub fn positions(&self, c: ArgClass) -> Vec<usize> {
        (0..self.0.len()).filter(|&i| self.0[i] == c).collect()
    }

    /// Number of bound (c/d) positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|c| c.is_bound()).count()
    }

    /// Compact string such as `"cdff"` (used in magic-set predicate names
    /// and reports).
    pub fn as_string(&self) -> String {
        self.0.iter().map(|c| c.letter()).collect()
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_string())
    }
}

/// One argument of a canonical goal-node label.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LabelArg {
    /// A class-`c` argument with its constant.
    Const(Value),
    /// A variable argument with its class and repeated-variable group
    /// (variables are numbered by first occurrence, so two atoms that are
    /// variants of each other — Def 2.2, including the repeated-variable
    /// patterns of Thm 2.1's proof — get identical labels).
    Var {
        /// `d`, `e`, or `f`.
        class: ArgClass,
        /// Equal-variable group index, by first occurrence.
        group: u16,
    },
}

/// The canonical label of a goal node: predicate, constants, classes, and
/// repeated-variable pattern. Two goal nodes are variants in the sense of
/// Def 2.2 **iff** their labels are equal.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GoalLabel {
    /// The predicate.
    pub pred: Predicate,
    /// Canonicalized arguments.
    pub args: Vec<LabelArg>,
}

impl GoalLabel {
    /// Build the label of `atom` under `adornment`.
    ///
    /// # Panics
    /// Panics if a constant argument is not classed `c` or vice versa —
    /// adornments are always derived from the atom, so a mismatch is a
    /// bug in the caller.
    pub fn new(atom: &Atom, adornment: &Adornment) -> Self {
        assert_eq!(atom.arity(), adornment.arity(), "adornment arity mismatch");
        let mut groups: HashMap<&Var, u16> = HashMap::new();
        let mut args = Vec::with_capacity(atom.arity());
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Const(v) => {
                    assert_eq!(
                        adornment.class(i),
                        ArgClass::C,
                        "constant argument must be class c"
                    );
                    args.push(LabelArg::Const(v.clone()));
                }
                Term::Var(v) => {
                    assert_ne!(
                        adornment.class(i),
                        ArgClass::C,
                        "variable argument cannot be class c"
                    );
                    let next = groups.len() as u16;
                    let g = *groups.entry(v).or_insert(next);
                    args.push(LabelArg::Var {
                        class: adornment.class(i),
                        group: g,
                    });
                }
            }
        }
        GoalLabel {
            pred: atom.pred.clone(),
            args,
        }
    }

    /// The label's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The adornment (classes only) of this label.
    pub fn adornment(&self) -> Adornment {
        Adornment(
            self.args
                .iter()
                .map(|a| match a {
                    LabelArg::Const(_) => ArgClass::C,
                    LabelArg::Var { class, .. } => *class,
                })
                .collect(),
        )
    }

    /// Render like the paper's figures: `p(a^c, Z^f)` becomes
    /// `p(a^c,V0^f)` with canonical variable names.
    pub fn render(&self) -> String {
        let mut s = format!("{}(", self.pred);
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match a {
                LabelArg::Const(v) => s.push_str(&format!("{v}^c")),
                LabelArg::Var { class, group } => {
                    s.push_str(&format!("V{group}^{}", class.letter()));
                }
            }
        }
        s.push(')');
        s
    }
}

impl fmt::Display for GoalLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::atom;

    fn ad(s: &str) -> Adornment {
        Adornment(
            s.chars()
                .map(|c| match c {
                    'c' => ArgClass::C,
                    'd' => ArgClass::D,
                    'e' => ArgClass::E,
                    'f' => ArgClass::F,
                    _ => panic!("bad class"),
                })
                .collect(),
        )
    }

    #[test]
    fn adornment_positions() {
        let a = ad("cdef");
        assert_eq!(a.d_positions(), vec![1]);
        assert_eq!(a.transmitted_positions(), vec![0, 1, 3]);
        assert_eq!(a.bound_count(), 2);
        assert_eq!(a.as_string(), "cdef");
    }

    #[test]
    fn variants_get_equal_labels() {
        // p(V^d, Z^f) and p(W^d, Y^f) are variants (Fig 1's cycle test).
        let l1 = GoalLabel::new(&atom!("p"; var "V", var "Z"), &ad("df"));
        let l2 = GoalLabel::new(&atom!("p"; var "W", var "Y"), &ad("df"));
        assert_eq!(l1, l2);
    }

    #[test]
    fn different_classes_differ() {
        let l1 = GoalLabel::new(&atom!("p"; var "V", var "Z"), &ad("df"));
        let l2 = GoalLabel::new(&atom!("p"; var "V", var "Z"), &ad("ff"));
        assert_ne!(l1, l2);
    }

    #[test]
    fn repeated_variable_patterns_differ() {
        // p(X, X, Z) vs p(V, V, V): Thm 2.1's technicality.
        let l1 = GoalLabel::new(&atom!("p"; var "X", var "X", var "Z"), &ad("dff"));
        let l2 = GoalLabel::new(&atom!("p"; var "V", var "V", var "V"), &ad("dff"));
        assert_ne!(l1, l2);
        // But p(A, A, B) matches p(X, X, Z).
        let l3 = GoalLabel::new(&atom!("p"; var "A", var "A", var "B"), &ad("dff"));
        assert_eq!(l1, l3);
    }

    #[test]
    fn constants_must_match() {
        let l1 = GoalLabel::new(&atom!("p"; val 1, var "Z"), &ad("cf"));
        let l2 = GoalLabel::new(&atom!("p"; val 2, var "Z"), &ad("cf"));
        assert_ne!(l1, l2);
        let l3 = GoalLabel::new(&atom!("p"; val 1, var "Q"), &ad("cf"));
        assert_eq!(l1, l3);
    }

    #[test]
    fn render_matches_paper_style() {
        let l = GoalLabel::new(&atom!("p"; val 7, var "Z"), &ad("cf"));
        assert_eq!(l.render(), "p(7^c,V0^f)");
    }

    #[test]
    #[should_panic(expected = "constant argument must be class c")]
    fn misclassified_constant_panics() {
        GoalLabel::new(&atom!("p"; val 1), &ad("f"));
    }

    #[test]
    fn label_round_trips_adornment() {
        let a = ad("def");
        let l = GoalLabel::new(&atom!("p"; var "X", var "Y", var "Z"), &a);
        assert_eq!(l.adornment(), a);
    }
}
