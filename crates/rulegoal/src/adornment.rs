//! Argument classes, adornments, and canonical goal-node labels.

use mp_datalog::{Atom, Predicate, Term, Var};
use mp_storage::Value;
use std::collections::HashMap;
use std::fmt;

/// The four argument classes of §1.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArgClass {
    /// Constant, known at graph-construction time.
    C,
    /// Dynamically bound to a set of needed values during computation.
    D,
    /// Existential: only the existence of a value matters; not transmitted.
    E,
    /// Free: bindings are to be found and returned.
    F,
}

/// A character that is not one of the four class letters `c`/`d`/`e`/`f`
/// was used where an argument class was expected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BadClass(pub char);

impl fmt::Display for BadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` is not an argument class (expected one of c, d, e, f)",
            self.0
        )
    }
}

impl std::error::Error for BadClass {}

impl TryFrom<char> for ArgClass {
    type Error = BadClass;

    fn try_from(c: char) -> Result<Self, BadClass> {
        match c {
            'c' => Ok(ArgClass::C),
            'd' => Ok(ArgClass::D),
            'e' => Ok(ArgClass::E),
            'f' => Ok(ArgClass::F),
            other => Err(BadClass(other)),
        }
    }
}

impl ArgClass {
    /// The superscript letter used in the paper's figures.
    pub fn letter(self) -> char {
        match self {
            ArgClass::C => 'c',
            ArgClass::D => 'd',
            ArgClass::E => 'e',
            ArgClass::F => 'f',
        }
    }

    /// True for classes whose values are known *before* a relation is
    /// evaluated (constants and dynamic bindings).
    pub fn is_bound(self) -> bool {
        matches!(self, ArgClass::C | ArgClass::D)
    }
}

/// A per-argument-position assignment of classes for one atom.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Adornment(pub Vec<ArgClass>);

impl Adornment {
    /// Parse a compact class string such as `"cdff"` — the inverse of
    /// [`Adornment::as_string`]. Rejects any character outside
    /// `c`/`d`/`e`/`f` with a typed error instead of panicking, so
    /// adornments arriving from tools or test fixtures are validated at
    /// the boundary.
    pub fn parse(s: &str) -> Result<Self, BadClass> {
        s.chars()
            .map(ArgClass::try_from)
            .collect::<Result<Vec<_>, _>>()
            .map(Adornment)
    }

    /// The adornment's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Class at a position.
    pub fn class(&self, i: usize) -> ArgClass {
        self.0[i]
    }

    /// Positions with class `d` — the semijoin input columns.
    pub fn d_positions(&self) -> Vec<usize> {
        self.positions(ArgClass::D)
    }

    /// Positions whose values are shipped in answer tuples: everything
    /// except class `e` ("its value will not be transmitted", §2.2).
    pub fn transmitted_positions(&self) -> Vec<usize> {
        (0..self.0.len())
            .filter(|&i| self.0[i] != ArgClass::E)
            .collect()
    }

    /// Positions with the given class.
    pub fn positions(&self, c: ArgClass) -> Vec<usize> {
        (0..self.0.len()).filter(|&i| self.0[i] == c).collect()
    }

    /// Number of bound (c/d) positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|c| c.is_bound()).count()
    }

    /// Compact string such as `"cdff"` (used in magic-set predicate names
    /// and reports).
    pub fn as_string(&self) -> String {
        self.0.iter().map(|c| c.letter()).collect()
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_string())
    }
}

/// One argument of a canonical goal-node label.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelArg {
    /// A class-`c` argument with its constant.
    Const(Value),
    /// A variable argument with its class and repeated-variable group
    /// (variables are numbered by first occurrence, so two atoms that are
    /// variants of each other — Def 2.2, including the repeated-variable
    /// patterns of Thm 2.1's proof — get identical labels).
    Var {
        /// `d`, `e`, or `f`.
        class: ArgClass,
        /// Equal-variable group index, by first occurrence.
        group: u16,
    },
}

/// The canonical label of a goal node: predicate, constants, classes, and
/// repeated-variable pattern. Two goal nodes are variants in the sense of
/// Def 2.2 **iff** their labels are equal.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GoalLabel {
    /// The predicate.
    pub pred: Predicate,
    /// Canonicalized arguments.
    pub args: Vec<LabelArg>,
}

impl GoalLabel {
    /// Build the label of `atom` under `adornment`.
    ///
    /// # Panics
    /// Panics if a constant argument is not classed `c` or vice versa —
    /// adornments are always derived from the atom, so a mismatch is a
    /// bug in the caller.
    pub fn new(atom: &Atom, adornment: &Adornment) -> Self {
        assert_eq!(atom.arity(), adornment.arity(), "adornment arity mismatch");
        let mut groups: HashMap<&Var, u16> = HashMap::new();
        let mut args = Vec::with_capacity(atom.arity());
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Const(v) => {
                    assert_eq!(
                        adornment.class(i),
                        ArgClass::C,
                        "constant argument must be class c"
                    );
                    args.push(LabelArg::Const(*v));
                }
                Term::Var(v) => {
                    assert_ne!(
                        adornment.class(i),
                        ArgClass::C,
                        "variable argument cannot be class c"
                    );
                    let next = groups.len() as u16;
                    let g = *groups.entry(v).or_insert(next);
                    args.push(LabelArg::Var {
                        class: adornment.class(i),
                        group: g,
                    });
                }
            }
        }
        GoalLabel {
            pred: atom.pred.clone(),
            args,
        }
    }

    /// The label's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The adornment (classes only) of this label.
    pub fn adornment(&self) -> Adornment {
        Adornment(
            self.args
                .iter()
                .map(|a| match a {
                    LabelArg::Const(_) => ArgClass::C,
                    LabelArg::Var { class, .. } => *class,
                })
                .collect(),
        )
    }

    /// Render like the paper's figures: `p(a^c, Z^f)` becomes
    /// `p(a^c,V0^f)` with canonical variable names.
    pub fn render(&self) -> String {
        let mut s = format!("{}(", self.pred);
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match a {
                LabelArg::Const(v) => s.push_str(&format!("{v}^c")),
                LabelArg::Var { class, group } => {
                    s.push_str(&format!("V{group}^{}", class.letter()));
                }
            }
        }
        s.push(')');
        s
    }
}

impl fmt::Display for GoalLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::atom;

    fn ad(s: &str) -> Adornment {
        Adornment::parse(s).unwrap()
    }

    #[test]
    fn parse_rejects_unknown_class_letters() {
        assert_eq!(Adornment::parse("dx"), Err(BadClass('x')));
        assert_eq!(ArgClass::try_from('q'), Err(BadClass('q')));
        assert_eq!(ArgClass::try_from('d'), Ok(ArgClass::D));
        assert_eq!(Adornment::parse("cdef").unwrap().as_string(), "cdef");
    }

    #[test]
    fn adornment_positions() {
        let a = ad("cdef");
        assert_eq!(a.d_positions(), vec![1]);
        assert_eq!(a.transmitted_positions(), vec![0, 1, 3]);
        assert_eq!(a.bound_count(), 2);
        assert_eq!(a.as_string(), "cdef");
    }

    #[test]
    fn variants_get_equal_labels() {
        // p(V^d, Z^f) and p(W^d, Y^f) are variants (Fig 1's cycle test).
        let l1 = GoalLabel::new(&atom!("p"; var "V", var "Z"), &ad("df"));
        let l2 = GoalLabel::new(&atom!("p"; var "W", var "Y"), &ad("df"));
        assert_eq!(l1, l2);
    }

    #[test]
    fn different_classes_differ() {
        let l1 = GoalLabel::new(&atom!("p"; var "V", var "Z"), &ad("df"));
        let l2 = GoalLabel::new(&atom!("p"; var "V", var "Z"), &ad("ff"));
        assert_ne!(l1, l2);
    }

    #[test]
    fn repeated_variable_patterns_differ() {
        // p(X, X, Z) vs p(V, V, V): Thm 2.1's technicality.
        let l1 = GoalLabel::new(&atom!("p"; var "X", var "X", var "Z"), &ad("dff"));
        let l2 = GoalLabel::new(&atom!("p"; var "V", var "V", var "V"), &ad("dff"));
        assert_ne!(l1, l2);
        // But p(A, A, B) matches p(X, X, Z).
        let l3 = GoalLabel::new(&atom!("p"; var "A", var "A", var "B"), &ad("dff"));
        assert_eq!(l1, l3);
    }

    #[test]
    fn constants_must_match() {
        let l1 = GoalLabel::new(&atom!("p"; val 1, var "Z"), &ad("cf"));
        let l2 = GoalLabel::new(&atom!("p"; val 2, var "Z"), &ad("cf"));
        assert_ne!(l1, l2);
        let l3 = GoalLabel::new(&atom!("p"; val 1, var "Q"), &ad("cf"));
        assert_eq!(l1, l3);
    }

    #[test]
    fn render_matches_paper_style() {
        let l = GoalLabel::new(&atom!("p"; val 7, var "Z"), &ad("cf"));
        assert_eq!(l.render(), "p(7^c,V0^f)");
    }

    #[test]
    #[should_panic(expected = "constant argument must be class c")]
    fn misclassified_constant_panics() {
        GoalLabel::new(&atom!("p"; val 1), &ad("f"));
    }

    #[test]
    fn label_round_trips_adornment() {
        let a = ad("def");
        let l = GoalLabel::new(&atom!("p"; var "X", var "Y", var "Z"), &a);
        assert_eq!(l.adornment(), a);
    }
}
