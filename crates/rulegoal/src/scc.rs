//! Strong components, feeders/customers, leaders, and breadth-first
//! spanning trees (§2.1 Def 2.1, §3.2).
//!
//! "Strong components in the rule/goal graph play an important role in
//! the computation. … The solution is to designate the unique feeder node
//! of each strong component as the 'BFST leader', and define a breadth
//! first spanning tree (BFST) for that strong component." Because the
//! graph is a DFS tree plus cycle (back) edges — no cross or forward
//! edges — each nontrivial component has exactly one node with a customer
//! outside it, and the BFST coincides with the DFS tree (footnote 3).

use crate::graph::{ArcKind, NodeId};
use std::collections::VecDeque;

/// Index of a strongly connected component.
pub type SccId = usize;

/// Strong-component structure of a rule/goal graph.
#[derive(Clone, Debug)]
pub struct SccInfo {
    comp_of: Vec<SccId>,
    components: Vec<Vec<NodeId>>,
    /// Per component: the unique member with a customer outside the
    /// component (`None` for trivial components and for the root's).
    leaders: Vec<Option<NodeId>>,
    /// Per node: BFST parent within its component (`None` for leaders and
    /// for members of trivial components).
    bfst_parent: Vec<Option<NodeId>>,
    /// Per node: BFST children within its component.
    bfst_children: Vec<Vec<NodeId>>,
    /// Ids of nontrivial components, ascending.
    nontrivial_ids: Vec<SccId>,
}

impl SccInfo {
    /// Compute components, leaders, and BFSTs.
    ///
    /// `out`/`in_` are the customer/feeder adjacency lists of the graph
    /// (arc kinds are ignored for connectivity — cycle arcs carry answers
    /// exactly like tree arcs).
    pub fn compute(
        n: usize,
        out: &[Vec<(NodeId, ArcKind)>],
        in_: &[Vec<(NodeId, ArcKind)>],
    ) -> SccInfo {
        let succ: Vec<Vec<usize>> = out
            .iter()
            .map(|v| v.iter().map(|&(t, _)| t).collect())
            .collect();
        let components = tarjan(n, &succ);
        let mut comp_of = vec![0usize; n];
        for (ci, comp) in components.iter().enumerate() {
            for &node in comp {
                comp_of[node] = ci;
            }
        }

        let mut leaders = vec![None; components.len()];
        let mut bfst_parent = vec![None; n];
        let mut bfst_children = vec![Vec::new(); n];

        for (ci, comp) in components.iter().enumerate() {
            if comp.len() <= 1 {
                continue;
            }
            // Leader: the unique member with an out-arc leaving the
            // component.
            let mut leader = None;
            for &v in comp {
                if out[v].iter().any(|&(c, _)| comp_of[c] != ci) {
                    assert!(
                        leader.is_none(),
                        "strong component has two exits; the rule/goal \
                         graph must be a tree plus back edges"
                    );
                    leader = Some(v);
                }
            }
            let leader = leader.expect(
                "nontrivial component with no external customer: \
                 only the root's trivial component may lack one",
            );
            leaders[ci] = Some(leader);

            // BFST: breadth-first over feeders, restricted to the
            // component. Children visited in ascending id order for
            // determinism.
            let mut seen: Vec<bool> = vec![false; n];
            seen[leader] = true;
            let mut queue = VecDeque::from([leader]);
            while let Some(u) = queue.pop_front() {
                let mut preds: Vec<NodeId> = in_[u]
                    .iter()
                    .map(|&(p, _)| p)
                    .filter(|&p| comp_of[p] == ci && !seen[p])
                    .collect();
                preds.sort_unstable();
                preds.dedup();
                for p in preds {
                    if !seen[p] {
                        seen[p] = true;
                        bfst_parent[p] = Some(u);
                        bfst_children[u].push(p);
                        queue.push_back(p);
                    }
                }
            }
            debug_assert!(
                comp.iter().all(|&v| seen[v]),
                "BFST must span the whole component"
            );
        }

        let nontrivial_ids = (0..components.len())
            .filter(|&ci| components[ci].len() > 1)
            .collect();
        SccInfo {
            comp_of,
            components,
            leaders,
            bfst_parent,
            bfst_children,
            nontrivial_ids,
        }
    }

    /// The component containing a node.
    pub fn component_of(&self, node: NodeId) -> SccId {
        self.comp_of[node]
    }

    /// Members of a component.
    pub fn members(&self, comp: SccId) -> &[NodeId] {
        &self.components[comp]
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// True if the node's component has more than one member (recursive
    /// region requiring the §3.2 termination protocol).
    pub fn in_nontrivial(&self, node: NodeId) -> bool {
        self.components[self.comp_of[node]].len() > 1
    }

    /// Ids of nontrivial components.
    pub fn nontrivial_components(&self) -> impl Iterator<Item = &SccId> + '_ {
        // Stored as a boxed range filter over indices; keep a small Vec
        // for a stable iterator type.
        self.nontrivial_ids.iter()
    }

    /// The leader of a component, if nontrivial.
    pub fn leader_of(&self, comp: SccId) -> Option<NodeId> {
        self.leaders[comp]
    }

    /// BFST parent of a node within its component.
    pub fn bfst_parent(&self, node: NodeId) -> Option<NodeId> {
        self.bfst_parent[node]
    }

    /// BFST children of a node within its component.
    pub fn bfst_children(&self, node: NodeId) -> &[NodeId] {
        &self.bfst_children[node]
    }
}

/// Iterative Tarjan SCC over a plain adjacency list; components are
/// emitted in reverse topological order (feeders before customers).
fn tarjan(n: usize, succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pi)) = work.last_mut() {
            if *pi == 0 {
                index[v] = next;
                lowlink[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*pi) {
                *pi += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}
