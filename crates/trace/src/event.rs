//! Trace events and the `mptrace v1` text format.
//!
//! A trace is a global, append-ordered list of events. Each event is
//! stamped with the recording actor's Lamport clock and vector clock at
//! the moment it was recorded. Actors are the rule/goal-graph nodes
//! (actor id = node id) plus the engine (actor id = `n_actors - 1`).

use std::fmt;

/// The logical kind of a protocol or data-plane message, mirrored from
/// `mp_engine::Payload` without depending on the engine crate (the
/// dependency points the other way).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names mirror Payload one-for-one
pub enum MsgKind {
    RelationRequest,
    TupleRequest,
    TupleRequestBatch,
    EndOfRequests,
    Answer,
    AnswerBatch,
    EndTupleRequest,
    EndTupleRequestBatch,
    End,
    EndRequest,
    EndNegative,
    EndConfirmed,
    SccFinished,
    Reborn,
    Cancel,
    Shutdown,
}

impl MsgKind {
    /// Stable snake_case name (matches `Payload::kind_name`).
    pub fn as_str(self) -> &'static str {
        match self {
            MsgKind::RelationRequest => "relation_request",
            MsgKind::TupleRequest => "tuple_request",
            MsgKind::TupleRequestBatch => "tuple_request_batch",
            MsgKind::EndOfRequests => "end_of_requests",
            MsgKind::Answer => "answer",
            MsgKind::AnswerBatch => "answer_batch",
            MsgKind::EndTupleRequest => "end_tuple_request",
            MsgKind::EndTupleRequestBatch => "end_tuple_request_batch",
            MsgKind::End => "end",
            MsgKind::EndRequest => "end_request",
            MsgKind::EndNegative => "end_negative",
            MsgKind::EndConfirmed => "end_confirmed",
            MsgKind::SccFinished => "scc_finished",
            MsgKind::Reborn => "reborn",
            MsgKind::Cancel => "cancel",
            MsgKind::Shutdown => "shutdown",
        }
    }

    /// Parse a stable name back to the kind.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "relation_request" => MsgKind::RelationRequest,
            "tuple_request" => MsgKind::TupleRequest,
            "tuple_request_batch" => MsgKind::TupleRequestBatch,
            "end_of_requests" => MsgKind::EndOfRequests,
            "answer" => MsgKind::Answer,
            "answer_batch" => MsgKind::AnswerBatch,
            "end_tuple_request" => MsgKind::EndTupleRequest,
            "end_tuple_request_batch" => MsgKind::EndTupleRequestBatch,
            "end" => MsgKind::End,
            "end_request" => MsgKind::EndRequest,
            "end_negative" => MsgKind::EndNegative,
            "end_confirmed" => MsgKind::EndConfirmed,
            "scc_finished" => MsgKind::SccFinished,
            "reborn" => MsgKind::Reborn,
            "cancel" => MsgKind::Cancel,
            "shutdown" => MsgKind::Shutdown,
            _ => return None,
        })
    }

    /// True for answer-stream payloads (scalar or batched).
    pub fn is_answer(self) -> bool {
        matches!(self, MsgKind::Answer | MsgKind::AnswerBatch)
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The causal stamp carried alongside a logical message from its send
/// site to its delivery site (on the wire in the threaded runtime, in a
/// per-link queue in the simulator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamp {
    /// Sender's Lamport clock at send time.
    pub lamport: u64,
    /// Sender's vector clock at send time.
    pub vclock: Vec<u64>,
    /// Per-link logical sequence number (0, 1, 2, … per directed link;
    /// counts logical messages, not transport frames).
    pub link_seq: u64,
}

/// Sentinel `link_seq` for a delivery whose stamp was lost (defensive;
/// the checker skips link invariants for it).
pub const NO_SEQ: u64 = u64::MAX;

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A logical message left this actor.
    Send {
        /// Destination actor.
        to: u32,
        /// Payload kind.
        kind: MsgKind,
        /// Logical items inside (batch length; 1 for scalar frames).
        items: u64,
        /// Per-link logical sequence number.
        link_seq: u64,
        /// Probe-wave number for termination payloads, else 0.
        wave: u64,
        /// Leader epoch for termination payloads / `Reborn`, else 0.
        epoch: u64,
    },
    /// A logical message was delivered to this actor (post transport
    /// dedup/reorder: exactly-once, in order).
    Deliver {
        /// Source actor.
        from: u32,
        /// Payload kind.
        kind: MsgKind,
        /// Logical items inside.
        items: u64,
        /// The sender's per-link sequence number, from the stamp.
        link_seq: u64,
        /// Probe-wave number for termination payloads, else 0.
        wave: u64,
        /// Leader epoch for termination payloads / `Reborn`, else 0.
        epoch: u64,
    },
    /// This actor acknowledged transport frames from `peer` up to (but
    /// not including) frame seq `upto`.
    Ack {
        /// The acked sender.
        peer: u32,
        /// Cumulative ack point (exclusive).
        upto: u64,
    },
    /// A batch buffer was flushed into one frame of `items` tuples.
    Flush {
        /// Logical tuples in the flushed frame.
        items: u64,
    },
    /// The node crashed; volatile state was discarded.
    Crash {
        /// The epoch the node will rejoin with.
        epoch: u64,
    },
    /// The node finished log replay and rejoined.
    Recover {
        /// The post-recovery epoch.
        epoch: u64,
        /// Messages replayed from the durable log.
        replayed: u64,
    },
    /// A termination probe wave completed at its leader.
    Wave {
        /// Wave number (monotone per leader epoch).
        wave: u64,
        /// Leader epoch.
        epoch: u64,
    },
    /// A tuple was stored into a node-local relation.
    Store {
        /// Which relation at this actor (goal answers = 0; rule stage
        /// `l` bindings = `2l`, rule answer store `l` = `2l + 1`).
        rel: u32,
        /// Relation size after the insert.
        size: u64,
    },
    /// The engine observed the final `End` (the answer stream is
    /// complete — Thm 3.1).
    End,
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Recording actor.
    pub actor: u32,
    /// Actor's Lamport clock at record time.
    pub lamport: u64,
    /// Actor's vector clock at record time.
    pub vclock: Vec<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// A complete recorded execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Total actors: graph nodes `0..n-1` plus the engine at `n-1`.
    pub n_actors: u32,
    /// Events in global record order (ring-buffer slot order in the
    /// threaded runtime; this order respects each actor's program order
    /// and send-before-deliver).
    pub events: Vec<Event>,
    /// Events lost to ring-buffer overflow. A nonzero count means the
    /// invariant checker cannot run soundly.
    pub dropped: u64,
}

impl Trace {
    /// The engine's actor id.
    pub fn engine_actor(&self) -> u32 {
        self.n_actors.saturating_sub(1)
    }

    /// The recorded delivery order at graph nodes: one actor id per
    /// node-side `Deliver` event, in global record order. Feeding this to
    /// `SimRuntime` replays the recorded schedule deterministically.
    pub fn activation_order(&self) -> Vec<u32> {
        let engine = self.engine_actor();
        self.events
            .iter()
            .filter(|e| e.actor != engine && matches!(e.kind, EventKind::Deliver { .. }))
            .map(|e| e.actor)
            .collect()
    }

    /// Serialize to the line-based `mptrace v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("mptrace v1\n");
        out.push_str(&format!("actors {}\n", self.n_actors));
        out.push_str(&format!("dropped {}\n", self.dropped));
        for e in &self.events {
            let vc: Vec<String> = e.vclock.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("{} {} {} ", e.actor, e.lamport, vc.join(",")));
            match &e.kind {
                EventKind::Send {
                    to,
                    kind,
                    items,
                    link_seq,
                    wave,
                    epoch,
                } => {
                    out.push_str(&format!(
                        "send {to} {kind} {items} {link_seq} {wave} {epoch}"
                    ));
                }
                EventKind::Deliver {
                    from,
                    kind,
                    items,
                    link_seq,
                    wave,
                    epoch,
                } => {
                    out.push_str(&format!(
                        "deliver {from} {kind} {items} {link_seq} {wave} {epoch}"
                    ));
                }
                EventKind::Ack { peer, upto } => out.push_str(&format!("ack {peer} {upto}")),
                EventKind::Flush { items } => out.push_str(&format!("flush {items}")),
                EventKind::Crash { epoch } => out.push_str(&format!("crash {epoch}")),
                EventKind::Recover { epoch, replayed } => {
                    out.push_str(&format!("recover {epoch} {replayed}"));
                }
                EventKind::Wave { wave, epoch } => out.push_str(&format!("wave {wave} {epoch}")),
                EventKind::Store { rel, size } => out.push_str(&format!("store {rel} {size}")),
                EventKind::End => out.push_str("end"),
            }
            out.push('\n');
        }
        out
    }

    /// Parse the `mptrace v1` text format.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        let header = lines.next().map(|(_, l)| l.trim()).unwrap_or("");
        if header != "mptrace v1" {
            return Err(format!("bad header `{header}` (expected `mptrace v1`)"));
        }
        let mut trace = Trace::default();
        let mut saw_actors = false;
        for (idx, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            let mut w = line.split_ascii_whitespace();
            let first = w.next().unwrap_or("");
            if first == "actors" {
                trace.n_actors = parse_num(w.next(), lineno, "actor count")? as u32;
                saw_actors = true;
                continue;
            }
            if first == "dropped" {
                trace.dropped = parse_num(w.next(), lineno, "dropped count")?;
                continue;
            }
            let actor = first
                .parse::<u32>()
                .map_err(|_| format!("line {lineno}: bad actor id `{first}`"))?;
            let lamport = parse_num(w.next(), lineno, "lamport")?;
            let vc_text = w
                .next()
                .ok_or(format!("line {lineno}: missing vector clock"))?;
            let vclock = vc_text
                .split(',')
                .map(|c| c.parse::<u64>())
                .collect::<Result<Vec<u64>, _>>()
                .map_err(|_| format!("line {lineno}: bad vector clock `{vc_text}`"))?;
            let verb = w
                .next()
                .ok_or(format!("line {lineno}: missing event verb"))?;
            let kind = match verb {
                "send" | "deliver" => {
                    let peer = parse_num(w.next(), lineno, "peer actor")? as u32;
                    let kind_text = w.next().ok_or(format!("line {lineno}: missing kind"))?;
                    let kind = MsgKind::parse(kind_text)
                        .ok_or(format!("line {lineno}: unknown message kind `{kind_text}`"))?;
                    let items = parse_num(w.next(), lineno, "items")?;
                    let link_seq = parse_num(w.next(), lineno, "link_seq")?;
                    let wave = parse_num(w.next(), lineno, "wave")?;
                    let epoch = parse_num(w.next(), lineno, "epoch")?;
                    if verb == "send" {
                        EventKind::Send {
                            to: peer,
                            kind,
                            items,
                            link_seq,
                            wave,
                            epoch,
                        }
                    } else {
                        EventKind::Deliver {
                            from: peer,
                            kind,
                            items,
                            link_seq,
                            wave,
                            epoch,
                        }
                    }
                }
                "ack" => EventKind::Ack {
                    peer: parse_num(w.next(), lineno, "peer")? as u32,
                    upto: parse_num(w.next(), lineno, "upto")?,
                },
                "flush" => EventKind::Flush {
                    items: parse_num(w.next(), lineno, "items")?,
                },
                "crash" => EventKind::Crash {
                    epoch: parse_num(w.next(), lineno, "epoch")?,
                },
                "recover" => EventKind::Recover {
                    epoch: parse_num(w.next(), lineno, "epoch")?,
                    replayed: parse_num(w.next(), lineno, "replayed")?,
                },
                "wave" => EventKind::Wave {
                    wave: parse_num(w.next(), lineno, "wave")?,
                    epoch: parse_num(w.next(), lineno, "epoch")?,
                },
                "store" => EventKind::Store {
                    rel: parse_num(w.next(), lineno, "rel")? as u32,
                    size: parse_num(w.next(), lineno, "size")?,
                },
                "end" => EventKind::End,
                other => return Err(format!("line {lineno}: unknown event verb `{other}`")),
            };
            trace.events.push(Event {
                actor,
                lamport,
                vclock,
                kind,
            });
        }
        if !saw_actors {
            return Err("missing `actors N` line".to_string());
        }
        Ok(trace)
    }
}

fn parse_num(tok: Option<&str>, lineno: usize, what: &str) -> Result<u64, String> {
    let t = tok.ok_or(format!("line {lineno}: missing {what}"))?;
    t.parse::<u64>()
        .map_err(|_| format!("line {lineno}: bad {what} `{t}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            n_actors: 3,
            dropped: 0,
            events: vec![
                Event {
                    actor: 2,
                    lamport: 1,
                    vclock: vec![0, 0, 1],
                    kind: EventKind::Send {
                        to: 0,
                        kind: MsgKind::RelationRequest,
                        items: 1,
                        link_seq: 0,
                        wave: 0,
                        epoch: 0,
                    },
                },
                Event {
                    actor: 0,
                    lamport: 2,
                    vclock: vec![1, 0, 1],
                    kind: EventKind::Deliver {
                        from: 2,
                        kind: MsgKind::RelationRequest,
                        items: 1,
                        link_seq: 0,
                        wave: 0,
                        epoch: 0,
                    },
                },
                Event {
                    actor: 0,
                    lamport: 3,
                    vclock: vec![2, 0, 1],
                    kind: EventKind::Store { rel: 0, size: 1 },
                },
                Event {
                    actor: 2,
                    lamport: 4,
                    vclock: vec![2, 0, 2],
                    kind: EventKind::End,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let text = t.to_text();
        assert!(text.starts_with("mptrace v1\n"), "{text}");
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in [
            MsgKind::RelationRequest,
            MsgKind::TupleRequest,
            MsgKind::TupleRequestBatch,
            MsgKind::EndOfRequests,
            MsgKind::Answer,
            MsgKind::AnswerBatch,
            MsgKind::EndTupleRequest,
            MsgKind::EndTupleRequestBatch,
            MsgKind::End,
            MsgKind::EndRequest,
            MsgKind::EndNegative,
            MsgKind::EndConfirmed,
            MsgKind::SccFinished,
            MsgKind::Reborn,
            MsgKind::Cancel,
            MsgKind::Shutdown,
        ] {
            assert_eq!(MsgKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(MsgKind::parse("nonsense"), None);
    }

    #[test]
    fn activation_order_skips_engine_and_non_delivers() {
        let t = sample();
        assert_eq!(t.activation_order(), vec![0]);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Trace::from_text("").is_err());
        assert!(Trace::from_text("mptrace v2\nactors 1\n").is_err());
        assert!(Trace::from_text("mptrace v1\n").is_err()); // no actors line
        assert!(Trace::from_text("mptrace v1\nactors 2\n0 1 0,0 frobnicate\n").is_err());
    }
}
