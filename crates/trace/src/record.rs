//! Per-actor event recording.
//!
//! Each runtime actor (graph node or engine) owns one [`Tracer`]. The
//! tracer maintains the actor's Lamport clock, vector clock, and
//! per-destination logical link sequence counters, and pushes stamped
//! [`Event`]s into a shared [`Ring`]. Recording is branch-cheap: when
//! tracing is off the runtimes simply hold no tracer.
//!
//! Clock discipline (standard Lamport/Fidge-Mattern):
//! * every recorded event ticks the local Lamport clock and the actor's
//!   own vector-clock component;
//! * a send captures the post-tick clocks into a [`Stamp`] that travels
//!   with the logical message;
//! * a delivery first merges the stamp's clocks (`lamport =
//!   max(local, stamp) `, component-wise max for the vector), then ticks.

use crate::clock::VClock;
use crate::event::{Event, EventKind, MsgKind, Stamp, Trace, NO_SEQ};
use crate::ring::Ring;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Event recorder for one actor.
#[derive(Clone)]
pub struct Tracer {
    actor: u32,
    lamport: u64,
    vclock: VClock,
    /// Next logical sequence number per destination actor.
    link_out: BTreeMap<u32, u64>,
    ring: Arc<Ring<Event>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("actor", &self.actor)
            .field("lamport", &self.lamport)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer for `actor` in a network of `n_actors`, recording into
    /// the shared `ring`.
    pub fn new(actor: u32, n_actors: u32, ring: Arc<Ring<Event>>) -> Self {
        Tracer {
            actor,
            lamport: 0,
            vclock: VClock::new(n_actors as usize),
            link_out: BTreeMap::new(),
            ring,
        }
    }

    fn tick(&mut self) {
        self.lamport += 1;
        self.vclock.tick(self.actor as usize);
    }

    fn emit(&mut self, kind: EventKind) {
        let _ = self.ring.push(Event {
            actor: self.actor,
            lamport: self.lamport,
            vclock: self.vclock.0.clone(),
            kind,
        });
    }

    /// Record a logical send; returns the stamp to carry alongside the
    /// message to its delivery site.
    pub fn on_send(&mut self, to: u32, kind: MsgKind, items: u64, wave: u64, epoch: u64) -> Stamp {
        self.tick();
        let seq = self.link_out.entry(to).or_insert(0);
        let link_seq = *seq;
        *seq += 1;
        self.emit(EventKind::Send {
            to,
            kind,
            items,
            link_seq,
            wave,
            epoch,
        });
        Stamp {
            lamport: self.lamport,
            vclock: self.vclock.0.clone(),
            link_seq,
        }
    }

    /// Record a logical delivery (post transport dedup/reorder), merging
    /// the sender's stamp into the local clocks.
    pub fn on_deliver(
        &mut self,
        from: u32,
        stamp: Option<&Stamp>,
        kind: MsgKind,
        items: u64,
        wave: u64,
        epoch: u64,
    ) {
        let link_seq = match stamp {
            Some(s) => {
                self.lamport = self.lamport.max(s.lamport);
                self.vclock.merge(&s.vclock);
                s.link_seq
            }
            None => NO_SEQ,
        };
        self.tick();
        self.emit(EventKind::Deliver {
            from,
            kind,
            items,
            link_seq,
            wave,
            epoch,
        });
    }

    /// Record a cumulative transport ack sent to `peer`.
    pub fn on_ack(&mut self, peer: u32, upto: u64) {
        self.tick();
        self.emit(EventKind::Ack { peer, upto });
    }

    /// Record a batch-buffer flush of `items` tuples into one frame.
    pub fn on_flush(&mut self, items: u64) {
        self.tick();
        self.emit(EventKind::Flush { items });
    }

    /// Record a crash (volatile state lost; the node will rejoin with
    /// `epoch`).
    pub fn on_crash(&mut self, epoch: u64) {
        self.tick();
        self.emit(EventKind::Crash { epoch });
    }

    /// Record recovery completion after replaying `replayed` logged
    /// messages.
    pub fn on_recover(&mut self, epoch: u64, replayed: u64) {
        self.tick();
        self.emit(EventKind::Recover { epoch, replayed });
    }

    /// Record a completed termination probe wave at its leader.
    pub fn on_wave(&mut self, wave: u64, epoch: u64) {
        self.tick();
        self.emit(EventKind::Wave { wave, epoch });
    }

    /// Record a tuple stored into relation `rel`, now holding `size`
    /// tuples.
    pub fn on_store(&mut self, rel: u32, size: u64) {
        self.tick();
        self.emit(EventKind::Store { rel, size });
    }

    /// Record the engine observing the final `End`.
    pub fn on_end(&mut self) {
        self.tick();
        self.emit(EventKind::End);
    }
}

/// Assemble the final [`Trace`] by draining the shared ring. Call once,
/// after every producer has quiesced.
pub fn collect(n_actors: u32, ring: &Ring<Event>) -> Trace {
    Trace {
        n_actors,
        events: ring.drain(),
        dropped: ring.dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Causality;

    #[test]
    fn send_deliver_establishes_happens_before() {
        let ring = Arc::new(Ring::with_capacity(64));
        let mut a = Tracer::new(0, 3, Arc::clone(&ring));
        let mut b = Tracer::new(1, 3, Arc::clone(&ring));

        let stamp = a.on_send(1, MsgKind::Answer, 1, 0, 0);
        b.on_deliver(0, Some(&stamp), MsgKind::Answer, 1, 0, 0);

        let t = collect(3, &ring);
        assert_eq!(t.events.len(), 2);
        let (send, deliver) = (&t.events[0], &t.events[1]);
        assert!(deliver.lamport > send.lamport);
        assert_eq!(
            VClock(deliver.vclock.clone()).compare(&send.vclock),
            Causality::After
        );
    }

    #[test]
    fn link_seqs_count_per_destination() {
        let ring = Arc::new(Ring::with_capacity(64));
        let mut a = Tracer::new(0, 3, ring);
        assert_eq!(a.on_send(1, MsgKind::Answer, 1, 0, 0).link_seq, 0);
        assert_eq!(a.on_send(2, MsgKind::Answer, 1, 0, 0).link_seq, 0);
        assert_eq!(a.on_send(1, MsgKind::Answer, 1, 0, 0).link_seq, 1);
    }

    #[test]
    fn collect_reports_drops() {
        let ring = Arc::new(Ring::with_capacity(2));
        let mut a = Tracer::new(0, 1, Arc::clone(&ring));
        for _ in 0..5 {
            a.on_flush(1);
        }
        let t = collect(1, &ring);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
    }
}
