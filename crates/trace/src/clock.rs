//! Vector clocks (Fidge/Mattern) for happens-before tracking.

/// Partial-order comparison result between two vector clocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Causality {
    /// Left strictly happens-before right.
    Before,
    /// Right strictly happens-before left.
    After,
    /// Identical clocks.
    Equal,
    /// Neither dominates: the events are concurrent.
    Concurrent,
}

/// A fixed-width vector clock: one component per actor in the network
/// (graph nodes plus the engine).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(pub Vec<u64>);

impl VClock {
    /// A zeroed clock with `n` components.
    pub fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Advance this actor's own component by one.
    pub fn tick(&mut self, actor: usize) {
        if let Some(c) = self.0.get_mut(actor) {
            *c += 1;
        }
    }

    /// Component-wise maximum (applied on message receipt before the
    /// local tick).
    pub fn merge(&mut self, other: &[u64]) {
        if self.0.len() < other.len() {
            self.0.resize(other.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True when every component of `self` is ≥ the matching component of
    /// `other` (missing components count as 0).
    pub fn dominates(&self, other: &[u64]) -> bool {
        let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        let n = self.0.len().max(other.len());
        (0..n).all(|i| get(&self.0, i) >= get(other, i))
    }

    /// Partial-order comparison.
    pub fn compare(&self, other: &[u64]) -> Causality {
        let fwd = self.dominates(other);
        let bwd = VClock(other.to_vec()).dominates(&self.0);
        match (fwd, bwd) {
            (true, true) => Causality::Equal,
            (true, false) => Causality::After,
            (false, true) => Causality::Before,
            (false, false) => Causality::Concurrent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_merge() {
        let mut a = VClock::new(3);
        a.tick(0);
        a.tick(0);
        assert_eq!(a.0, vec![2, 0, 0]);
        a.merge(&[1, 5, 0]);
        assert_eq!(a.0, vec![2, 5, 0]);
    }

    #[test]
    fn compare_orders() {
        let a = VClock(vec![1, 2, 0]);
        assert_eq!(a.compare(&[1, 2, 0]), Causality::Equal);
        assert_eq!(a.compare(&[0, 2, 0]), Causality::After);
        assert_eq!(a.compare(&[1, 2, 1]), Causality::Before);
        assert_eq!(a.compare(&[2, 0, 0]), Causality::Concurrent);
    }

    #[test]
    fn dominates_handles_width_mismatch() {
        let a = VClock(vec![1, 2]);
        assert!(a.dominates(&[1]));
        assert!(!a.dominates(&[1, 2, 1]));
        assert!(a.dominates(&[1, 2, 0]));
    }
}
