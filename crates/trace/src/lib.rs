//! mp-trace — event recording and offline causality checking for the
//! message passing runtimes.
//!
//! The engine's runtimes (simulated and threaded) record their
//! executions as streams of clock-stamped [`Event`]s: sends, deliveries,
//! batch flushes, crashes, recoveries, probe waves, relation stores, and
//! the final `End`. Each event carries the recording actor's Lamport
//! clock and vector clock, so the *causal* structure of a real threaded
//! run — not just its final answer set — is preserved and can be
//! verified after the fact.
//!
//! Three layers:
//!
//! * **Recording** ([`Tracer`], [`Ring`]): per-actor clock bookkeeping
//!   pushing into a bounded lock-free ring buffer shared by all worker
//!   threads. The simulator records through the same interface without
//!   contention.
//! * **Checking** ([`check`]): an offline replay of the trace against
//!   the protocol invariant suite — happens-before soundness, per-link
//!   FIFO/seq/ack consistency of the recovery transport, Thm 3.1's
//!   no-answer-after-End, probe-wave ordering, monotone flow (Thm 4.1),
//!   and batching invariance. Violations are `mp_lint::Diagnostic`s with
//!   stable MP3xx codes; the `mp-check` binary is the CLI front end.
//! * **Replay** ([`Trace::activation_order`]): the recorded delivery
//!   order of a threaded run re-executes deterministically in the
//!   simulator, so a chaotic threaded failure reproduces under a
//!   controlled schedule.

#![warn(missing_docs)]

pub mod check;
pub mod clock;
pub mod event;
pub mod record;
pub mod ring;

pub use check::{check, logical_counts, LogicalCounts};
pub use clock::{Causality, VClock};
pub use event::{Event, EventKind, MsgKind, Stamp, Trace, NO_SEQ};
pub use record::{collect, Tracer};
pub use ring::Ring;
