//! Offline trace checking: replay a recorded [`Trace`] against the
//! protocol invariant suite and report violations as `mp-lint`-style
//! diagnostics (codes MP301–MP309, all deny-level).
//!
//! The invariants, and the paper conditions they enforce:
//!
//! * **MP301** clock soundness — per-actor Lamport clocks strictly
//!   increase, vector clocks never regress, and every delivery strictly
//!   dominates its matching send (happens-before).
//! * **MP302** seq/ack consistency — the delivered logical sequence
//!   numbers on each link form a gap-free prefix `{0..k}`, and
//!   cumulative acks never regress (PR 3 recovery transport).
//! * **MP303** no `Answer` after `End` at the engine (Thm 3.1 safety).
//! * **MP304** probe-wave discipline — every delivered wave reply names
//!   a `(wave, epoch)` the receiver actually requested, and wave/epoch
//!   pairs advance monotonically at each leader (§3.2).
//! * **MP305** per-link FIFO — delivered sequence numbers never go
//!   backwards.
//! * **MP306** monotone flow — node-local relations only grow (§4,
//!   Thm 4.1).
//! * **MP307** recover requires a preceding crash.
//! * **MP308** exactly-once — no logical sequence number is delivered
//!   twice on one link (duplicates must die in transport dedup).
//! * **MP309** batching invariance — matched send/deliver pairs agree on
//!   kind and logical item count (PR 4 logical counters).
//! * **MP310** cancel discipline — after a node delivers (acks) a
//!   `Cancel` wave epoch it must not emit another `Answer`/`AnswerBatch`
//!   (PR 8 resource governance: cancelled nodes drain, never produce).
//!
//! **Actor identity under sharding.** A trace actor is a *physical*
//! process id. At `--shards K > 1` each request-keyed node contributes
//! `K` actors — the `(node, shard)` instances of the engine's
//! `Network::shard_of` map — so every invariant above applies per shard
//! instance and per shard link, with no special cases: clocks, seq/ack
//! prefixes, FIFO, exactly-once, and cancel discipline are checked on
//! each instance exactly as on an unsharded node, and the two-level
//! termination wave is just MP304's wave discipline over the
//! captain-extended spanning tree.

use crate::event::{EventKind, MsgKind, Trace, NO_SEQ};
use mp_lint::{Code, Diagnostic};
use std::collections::{BTreeMap, BTreeSet};

/// Logical message counts reconstructed from a trace's `Send` events.
/// Mirrors the batching-invariant `logical_*` counters in
/// `mp_engine::Stats`, so an engine run and its trace can be
/// cross-checked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogicalCounts {
    /// Logical tuple requests (batch frames count their contents).
    pub tuple_requests: u64,
    /// Logical answers.
    pub answers: u64,
    /// Logical end-tuple-requests.
    pub end_tuple_requests: u64,
}

/// Sum the logical data-plane traffic recorded in `trace`.
pub fn logical_counts(trace: &Trace) -> LogicalCounts {
    let mut c = LogicalCounts::default();
    for e in &trace.events {
        if let EventKind::Send { kind, items, .. } = e.kind {
            match kind {
                MsgKind::TupleRequest => c.tuple_requests += 1,
                MsgKind::TupleRequestBatch => c.tuple_requests += items,
                MsgKind::Answer => c.answers += 1,
                MsgKind::AnswerBatch => c.answers += items,
                MsgKind::EndTupleRequest => c.end_tuple_requests += 1,
                MsgKind::EndTupleRequestBatch => c.end_tuple_requests += items,
                _ => {}
            }
        }
    }
    c
}

#[derive(Default)]
struct LinkState {
    /// Send events on this link: link_seq → (event index, kind, items,
    /// lamport, vclock).
    sends: BTreeMap<u64, (usize, MsgKind, u64, u64, Vec<u64>)>,
    delivered: BTreeSet<u64>,
    max_delivered: Option<u64>,
}

#[derive(Default)]
struct ActorState {
    last_lamport: Option<u64>,
    last_vclock: Vec<u64>,
    crashes: u64,
    recovers: u64,
    /// `(wave, epoch)` pairs this actor has requested via `EndRequest`.
    requested: BTreeSet<(u64, u64)>,
    /// Last completed `(epoch, wave)` at this actor as a leader.
    last_wave: Option<(u64, u64)>,
    /// Relation sizes: rel → last size.
    rel_sizes: BTreeMap<u32, u64>,
    /// Cumulative ack points: peer → last upto.
    acks: BTreeMap<u32, u64>,
    end_seen: bool,
    /// The cancel-wave epoch this actor acked, if any (sticky: log
    /// replay re-delivers the cancel to a reborn node).
    cancelled_epoch: Option<u64>,
}

fn diag(code: Code, msg: String, note: &str) -> Diagnostic {
    Diagnostic::new(code, msg).with_note(note.to_string())
}

/// Check every invariant against `trace`. An empty result means the
/// recorded execution is consistent with the protocol; each violation
/// becomes one deny-level diagnostic naming the event index.
pub fn check(trace: &Trace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if trace.dropped > 0 {
        out.push(diag(
            Code::TraceSeqGap,
            format!(
                "trace is incomplete: {} event(s) were dropped by the ring buffer",
                trace.dropped
            ),
            "re-record with a larger ring; invariants cannot be checked on a lossy trace",
        ));
        return out;
    }

    let engine = trace.engine_actor();
    let mut actors: BTreeMap<u32, ActorState> = BTreeMap::new();
    let mut links: BTreeMap<(u32, u32), LinkState> = BTreeMap::new();

    for (i, e) in trace.events.iter().enumerate() {
        let a = actors.entry(e.actor).or_default();

        // MP301: per-actor clock discipline.
        if let Some(prev) = a.last_lamport {
            if e.lamport <= prev {
                out.push(diag(
                    Code::TraceClockRegression,
                    format!(
                        "event {i}: actor {} Lamport clock regressed ({prev} -> {})",
                        e.actor, e.lamport
                    ),
                    "Lamport clocks must strictly increase along each actor's history",
                ));
            }
        }
        if !a.last_vclock.is_empty() {
            let own = e.actor as usize;
            let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
            let n = a.last_vclock.len().max(e.vclock.len());
            let regressed = (0..n).any(|c| get(&e.vclock, c) < get(&a.last_vclock, c));
            let own_advanced = get(&e.vclock, own) > get(&a.last_vclock, own);
            if regressed || !own_advanced {
                out.push(diag(
                    Code::TraceClockRegression,
                    format!("event {i}: actor {} vector clock regressed", e.actor),
                    "an actor's own component must strictly increase and no \
                     component may decrease",
                ));
            }
        }
        a.last_lamport = Some(e.lamport);
        a.last_vclock = e.vclock.clone();

        match &e.kind {
            EventKind::Send {
                to,
                kind,
                items,
                link_seq,
                wave,
                epoch,
            } => {
                let link = links.entry((e.actor, *to)).or_default();
                let expected = link.sends.len() as u64;
                if *link_seq != expected {
                    out.push(diag(
                        Code::TraceSeqGap,
                        format!(
                            "event {i}: link {} -> {to} send sequence jumped to {link_seq} \
                             (expected {expected})",
                            e.actor
                        ),
                        "logical link sequence numbers count up from 0 without gaps",
                    ));
                }
                link.sends
                    .insert(*link_seq, (i, *kind, *items, e.lamport, e.vclock.clone()));
                if *kind == MsgKind::EndRequest {
                    a.requested.insert((*wave, *epoch));
                }
                // MP310: a cancelled node's answer stream is closed.
                if kind.is_answer() && e.actor != engine {
                    if let Some(ce) = a.cancelled_epoch {
                        out.push(diag(
                            Code::TraceAnswerAfterCancel,
                            format!(
                                "event {i}: actor {} sent {kind} after acking cancel \
                                 wave epoch {ce}",
                                e.actor
                            ),
                            "a cancelled node drains the protocol but must never \
                             produce more answers",
                        ));
                    }
                }
            }
            EventKind::Deliver {
                from,
                kind,
                items,
                link_seq,
                wave,
                epoch,
            } => {
                // MP303: the engine's answer stream is closed by End.
                if e.actor == engine {
                    if kind.is_answer() && a.end_seen {
                        out.push(diag(
                            Code::TraceAnswerAfterEnd,
                            format!("event {i}: engine received an answer after End"),
                            "Thm 3.1: End certifies the answer stream is complete",
                        ));
                    }
                    if *kind == MsgKind::End {
                        a.end_seen = true;
                    }
                }

                // MP310: record the acked cancel-wave epoch.
                if *kind == MsgKind::Cancel {
                    a.cancelled_epoch = Some(a.cancelled_epoch.map_or(*epoch, |c| c.max(*epoch)));
                }

                // MP304: wave replies must name a requested (wave, epoch).
                if matches!(kind, MsgKind::EndNegative | MsgKind::EndConfirmed)
                    && !a.requested.contains(&(*wave, *epoch))
                {
                    out.push(diag(
                        Code::TraceStaleEpoch,
                        format!(
                            "event {i}: actor {} accepted a {kind} for wave {wave} \
                             epoch {epoch} it never requested",
                            e.actor
                        ),
                        "§3.2: replies to stale probe waves must be dropped, not delivered",
                    ));
                }

                if *link_seq != NO_SEQ {
                    let link = links.entry((*from, e.actor)).or_default();
                    if link.delivered.contains(link_seq) {
                        out.push(diag(
                            Code::TraceDuplicateDelivery,
                            format!(
                                "event {i}: link {from} -> {} delivered seq {link_seq} twice",
                                e.actor
                            ),
                            "transport dedup must make logical delivery exactly-once",
                        ));
                    } else {
                        if let Some(max) = link.max_delivered {
                            if *link_seq < max {
                                out.push(diag(
                                    Code::TraceFifoViolation,
                                    format!(
                                        "event {i}: link {from} -> {} delivered seq {link_seq} \
                                         after seq {max}",
                                        e.actor
                                    ),
                                    "per-link delivery must be FIFO",
                                ));
                            }
                        }
                        link.max_delivered =
                            Some(link.max_delivered.map_or(*link_seq, |m| m.max(*link_seq)));
                        link.delivered.insert(*link_seq);
                    }

                    // MP301 / MP309: match against the send.
                    match link.sends.get(link_seq) {
                        Some((si, skind, sitems, slamport, svclock)) => {
                            let dominates = {
                                let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
                                let n = e.vclock.len().max(svclock.len());
                                (0..n).all(|c| get(&e.vclock, c) >= get(svclock, c))
                            };
                            if e.lamport <= *slamport || !dominates {
                                out.push(diag(
                                    Code::TraceClockRegression,
                                    format!(
                                        "event {i}: delivery does not happen-after its send \
                                         (event {si})"
                                    ),
                                    "a delivery must strictly dominate its send in both clocks",
                                ));
                            }
                            if skind != kind || sitems != items {
                                out.push(diag(
                                    Code::TraceCountMismatch,
                                    format!(
                                        "event {i}: delivered {kind} x{items} but event {si} \
                                         sent {skind} x{sitems}"
                                    ),
                                    "batching must preserve logical message kind and count",
                                ));
                            }
                        }
                        None => out.push(diag(
                            Code::TraceClockRegression,
                            format!(
                                "event {i}: link {from} -> {} delivered seq {link_seq} \
                                 with no recorded send",
                                e.actor
                            ),
                            "every delivery must be caused by a send",
                        )),
                    }
                }
            }
            EventKind::Ack { peer, upto } => {
                let last = a.acks.entry(*peer).or_insert(0);
                if *upto < *last {
                    out.push(diag(
                        Code::TraceSeqGap,
                        format!(
                            "event {i}: actor {} ack to peer {peer} regressed ({last} -> {upto})",
                            e.actor
                        ),
                        "cumulative acks are monotone",
                    ));
                }
                *last = (*last).max(*upto);
            }
            EventKind::Flush { .. } => {}
            EventKind::Crash { .. } => a.crashes += 1,
            EventKind::Recover { .. } => {
                a.recovers += 1;
                if a.recovers > a.crashes {
                    out.push(diag(
                        Code::TraceOrphanRecover,
                        format!(
                            "event {i}: actor {} recovered without a preceding crash",
                            e.actor
                        ),
                        "recovery replays a crash's durable log; without a crash there \
                         is nothing to recover from",
                    ));
                }
            }
            EventKind::Wave { wave, epoch } => {
                if let Some((le, lw)) = a.last_wave {
                    if (*epoch, *wave) <= (le, lw) {
                        out.push(diag(
                            Code::TraceStaleEpoch,
                            format!(
                                "event {i}: actor {} completed wave {wave} epoch {epoch} \
                                 after wave {lw} epoch {le}",
                                e.actor
                            ),
                            "probe waves are totally ordered per leader: (epoch, wave) \
                             must strictly increase",
                        ));
                    }
                }
                a.last_wave = Some((*epoch, *wave));
            }
            EventKind::Store { rel, size } => {
                let last = a.rel_sizes.entry(*rel).or_insert(0);
                if *size < *last {
                    out.push(diag(
                        Code::TraceShrinkingRelation,
                        format!(
                            "event {i}: actor {} relation {rel} shrank ({last} -> {size})",
                            e.actor
                        ),
                        "§4 / Thm 4.1: temporary relations only grow (monotone flow)",
                    ));
                }
                *last = (*last).max(*size);
            }
            EventKind::End => {
                if e.actor == engine {
                    a.end_seen = true;
                }
            }
        }
    }

    // MP302: end-of-trace — delivered seqs per link must be a gap-free
    // prefix {0..k}. Trailing sends that never delivered are fine (the
    // run shut down with frames in flight); holes are not.
    for ((from, to), link) in &links {
        if let Some(max) = link.max_delivered {
            for missing in (0..max).filter(|s| !link.delivered.contains(s)) {
                out.push(diag(
                    Code::TraceSeqGap,
                    format!(
                        "link {from} -> {to}: seq {missing} was never delivered but \
                             seq {max} was"
                    ),
                    "the recovery transport delivers each link's messages as a \
                     gap-free in-order prefix",
                ));
            }
        }
    }

    mp_lint::sort_diagnostics(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Stamp};
    use crate::record::{collect, Tracer};
    use crate::ring::Ring;
    use std::sync::Arc;

    /// A tiny but complete synthetic execution: engine (actor 2) sends a
    /// request to node 0, node 0 stores and answers via node 1, waves
    /// run, End closes the stream.
    fn clean_trace() -> Trace {
        let ring = Arc::new(Ring::with_capacity(1 << 10));
        let mut n0 = Tracer::new(0, 3, Arc::clone(&ring));
        let mut n1 = Tracer::new(1, 3, Arc::clone(&ring));
        let mut eng = Tracer::new(2, 3, Arc::clone(&ring));

        let s = eng.on_send(0, MsgKind::RelationRequest, 1, 0, 0);
        n0.on_deliver(2, Some(&s), MsgKind::RelationRequest, 1, 0, 0);
        n0.on_store(0, 1);
        n0.on_store(0, 2);
        let s = n0.on_send(1, MsgKind::AnswerBatch, 2, 0, 0);
        n0.on_flush(2);
        n1.on_deliver(0, Some(&s), MsgKind::AnswerBatch, 2, 0, 0);
        let s = n1.on_send(2, MsgKind::Answer, 1, 0, 0);
        eng.on_deliver(1, Some(&s), MsgKind::Answer, 1, 0, 0);
        let s = n0.on_send(1, MsgKind::EndRequest, 1, 1, 0);
        n0.on_wave(1, 0);
        n1.on_deliver(0, Some(&s), MsgKind::EndRequest, 1, 1, 0);
        let s = n1.on_send(2, MsgKind::End, 1, 0, 0);
        eng.on_deliver(1, Some(&s), MsgKind::End, 1, 0, 0);
        eng.on_end();
        collect(3, &ring)
    }

    #[test]
    fn clean_synthetic_trace_passes() {
        let t = clean_trace();
        let diags = check(&t);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn logical_counts_sum_batches() {
        let t = clean_trace();
        let c = logical_counts(&t);
        assert_eq!(c.answers, 3); // one batch of 2 + one scalar
        assert_eq!(c.tuple_requests, 0);
    }

    #[test]
    fn dropped_events_invalidate_the_trace() {
        let mut t = clean_trace();
        t.dropped = 7;
        let diags = check(&t);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::TraceSeqGap);
    }

    #[test]
    fn crash_recover_pair_is_clean() {
        let ring = Arc::new(Ring::with_capacity(64));
        let mut n0 = Tracer::new(0, 2, Arc::clone(&ring));
        n0.on_crash(1);
        n0.on_recover(1, 4);
        let t = collect(2, &ring);
        assert!(check(&t).is_empty());
    }

    #[test]
    fn unstamped_delivery_skips_link_checks() {
        let ring = Arc::new(Ring::with_capacity(64));
        let mut n0 = Tracer::new(0, 2, Arc::clone(&ring));
        n0.on_deliver(1, None, MsgKind::Answer, 1, 0, 0);
        let t = collect(2, &ring);
        assert!(check(&t).is_empty());
    }

    #[test]
    fn trailing_undelivered_sends_are_fine() {
        let ring = Arc::new(Ring::with_capacity(64));
        let mut n0 = Tracer::new(0, 2, Arc::clone(&ring));
        let mut n1 = Tracer::new(1, 2, Arc::clone(&ring));
        let s0 = n0.on_send(1, MsgKind::Answer, 1, 0, 0);
        let _s1 = n0.on_send(1, MsgKind::Answer, 1, 0, 0); // in flight at shutdown
        n1.on_deliver(0, Some(&s0), MsgKind::Answer, 1, 0, 0);
        let t = collect(2, &ring);
        assert!(check(&t).is_empty());
    }

    #[test]
    fn hand_built_events_need_no_tracer() {
        // The checker runs on parsed traces too (no Stamp machinery).
        let t = Trace {
            n_actors: 2,
            dropped: 0,
            events: vec![Event {
                actor: 0,
                lamport: 1,
                vclock: vec![1, 0],
                kind: EventKind::Store { rel: 0, size: 5 },
            }],
        };
        assert!(check(&t).is_empty());
        let _ = Stamp {
            lamport: 1,
            vclock: vec![1, 0],
            link_seq: 0,
        };
    }
}
