//! A bounded lock-free multi-producer queue (Vyukov's array-based
//! design) used as the event sink in the threaded runtime: every worker
//! pushes, the engine drains once after shutdown.
//!
//! Slot allocation is a CAS on `enqueue_pos`, so the slot order is a
//! total order consistent with each producer's program order; because a
//! send is recorded before its frame hits the channel and a delivery is
//! recorded after the frame is received, slot order also respects
//! send-before-deliver across threads. The checker and the replay
//! machinery rely on exactly this property.
//!
//! When the ring is full, events are *dropped* (and counted) rather than
//! blocking the hot path — a trace with `dropped > 0` is unusable for
//! checking but the run itself is unaffected.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot<T> {
    /// Vyukov sequence word: `pos` when the slot is free for the
    /// producer of ticket `pos`, `pos + 1` once written, `pos + cap`
    /// after the consumer frees it for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC ring buffer (used MPSC here).
pub struct Ring<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots hand off exclusive access via the `seq` protocol — a
// producer writes a slot only after winning the CAS for its ticket, a
// consumer reads it only after the producer's Release store of `pos+1`.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// A ring with at least `capacity` slots (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let buf: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            buf,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Push an item. Returns `false` (and bumps the dropped counter)
    /// when the ring is full; never blocks.
    pub fn push(&self, value: T) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for ticket `pos` grants
                        // exclusive write access to this slot until the
                        // Release store below publishes it.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Consumer hasn't freed this lap's slot: full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest item, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the producer's Release store of `pos+1`
                        // happens-before our Acquire load, so the slot
                        // holds an initialized value we now own.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(
                            pos.wrapping_add(self.mask).wrapping_add(1),
                            Ordering::Release,
                        );
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain everything currently in the ring, in push order.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }

    /// How many pushes were rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Release any items never drained.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let r = Ring::with_capacity(8);
        for i in 0..8 {
            assert!(r.push(i));
        }
        assert_eq!(r.drain(), (0..8).collect::<Vec<_>>());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let r = Ring::with_capacity(4);
        for i in 0..6 {
            let ok = r.push(i);
            assert_eq!(ok, i < 4, "push {i}");
        }
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.drain(), vec![0, 1, 2, 3]);
        // Drained: accepts again.
        assert!(r.push(99));
        assert_eq!(r.pop(), Some(99));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let r = Ring::with_capacity(5);
        for i in 0..8 {
            assert!(r.push(i), "rounded capacity should hold 8");
        }
        assert!(!r.push(8));
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let r = Arc::new(Ring::with_capacity(1 << 12));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        assert!(r.push((t, i)));
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        let all = r.drain();
        assert_eq!(all.len(), 2000);
        // Per-producer order is preserved even though producers interleave.
        for t in 0..4 {
            let mine: Vec<u64> = all
                .iter()
                .filter(|(p, _)| *p == t)
                .map(|(_, i)| *i)
                .collect();
            assert_eq!(mine, (0..500).collect::<Vec<_>>());
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn drop_releases_undrained_items() {
        let r = Ring::with_capacity(8);
        let payload = Arc::new(());
        for _ in 0..5 {
            assert!(r.push(Arc::clone(&payload)));
        }
        drop(r);
        assert_eq!(Arc::strong_count(&payload), 1);
    }
}
