//! `mp-check` — verify recorded execution traces offline.
//!
//! ```text
//! mp-check [OPTIONS] [FILE...]    check mptrace files (`mpq --trace F`
//!                                 records one); reads stdin when no FILE
//!
//!   --json                        emit diagnostics as a JSON array on
//!                                 stdout (one object per diagnostic)
//!   --counts                      also print the logical message counts
//!                                 reconstructed from each trace
//! ```
//!
//! Exit status: 0 when every trace satisfies the invariant suite, 1 when
//! any diagnostic fired, 2 on usage or I/O errors.

use mp_trace::Trace;
use std::io::Read;
use std::process::ExitCode;

struct Options {
    files: Vec<String>,
    json: bool,
    counts: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        json: false,
        counts: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--counts" => opts.counts = true,
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => opts.files.push(other.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: mp-check [--json] [--counts] [FILE...]\n\
         checks recorded mptrace files; reads stdin when no FILE is given"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("mp-check: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let mut inputs: Vec<(String, String)> = Vec::new();
    if opts.files.is_empty() {
        let mut src = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut src) {
            eprintln!("mp-check: reading stdin: {e}");
            return ExitCode::from(2);
        }
        inputs.push(("<stdin>".to_string(), src));
    } else {
        for f in &opts.files {
            match std::fs::read_to_string(f) {
                Ok(src) => inputs.push((f.clone(), src)),
                Err(e) => {
                    eprintln!("mp-check: {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let mut total = 0usize;
    let mut json_objects: Vec<String> = Vec::new();
    for (name, text) in &inputs {
        let trace = match Trace::from_text(text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mp-check: {name}: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = mp_trace::check(&trace);
        for d in &diags {
            if opts.json {
                json_objects.push(d.to_json(name));
            } else {
                print!("{}", d.render(name, ""));
            }
        }
        total += diags.len();
        if opts.counts {
            let c = mp_trace::logical_counts(&trace);
            eprintln!(
                "mp-check: {name}: {} events, {} actors; logical: {} tuple requests, \
                 {} answers, {} end requests",
                trace.events.len(),
                trace.n_actors,
                c.tuple_requests,
                c.answers,
                c.end_tuple_requests
            );
        }
    }

    if opts.json {
        println!("[");
        for (i, o) in json_objects.iter().enumerate() {
            println!(
                "  {}{}",
                o,
                if i + 1 < json_objects.len() { "," } else { "" }
            );
        }
        println!("]");
    }
    if total > 0 {
        eprintln!(
            "mp-check: {total} violation(s) in {} trace(s)",
            inputs.len()
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
