//! Checker mutation coverage: hand-corrupted traces, one per invariant,
//! each asserting the *exact* MP3xx code fired. A checker that goes
//! quiet on any of these has lost a protocol guarantee.

use mp_lint::Code;
use mp_trace::{check, collect, MsgKind, Ring, Trace, Tracer};
use std::sync::Arc;

/// Three actors: nodes 0 and 1, engine = 2.
fn tracers() -> (Tracer, Tracer, Tracer, Arc<Ring<mp_trace::Event>>) {
    let ring = Arc::new(Ring::with_capacity(1 << 10));
    (
        Tracer::new(0, 3, Arc::clone(&ring)),
        Tracer::new(1, 3, Arc::clone(&ring)),
        Tracer::new(2, 3, Arc::clone(&ring)),
        ring,
    )
}

fn codes(t: &Trace) -> Vec<&'static str> {
    check(t).iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn answer_after_end_fires_mp303() {
    let (mut n0, _n1, mut eng, ring) = tracers();
    let s = n0.on_send(2, MsgKind::End, 1, 0, 0);
    eng.on_deliver(0, Some(&s), MsgKind::End, 1, 0, 0);
    eng.on_end();
    // A straggler answer arrives after the stream was certified complete.
    let s = n0.on_send(2, MsgKind::Answer, 1, 0, 0);
    eng.on_deliver(0, Some(&s), MsgKind::Answer, 1, 0, 0);
    assert_eq!(codes(&collect(3, &ring)), vec!["MP303"]);
}

#[test]
fn seq_gap_fires_mp302() {
    let (mut n0, mut n1, _eng, ring) = tracers();
    let s0 = n0.on_send(1, MsgKind::Answer, 1, 0, 0);
    let _s1 = n0.on_send(1, MsgKind::Answer, 1, 0, 0); // lost in transit
    let s2 = n0.on_send(1, MsgKind::Answer, 1, 0, 0);
    n1.on_deliver(0, Some(&s0), MsgKind::Answer, 1, 0, 0);
    n1.on_deliver(0, Some(&s2), MsgKind::Answer, 1, 0, 0);
    assert_eq!(codes(&collect(3, &ring)), vec!["MP302"]);
}

#[test]
fn stale_epoch_ack_fires_mp304() {
    let (mut n0, mut n1, _eng, ring) = tracers();
    // Node 1 accepts a confirmation for a wave/epoch it never originated.
    let s = n0.on_send(1, MsgKind::EndConfirmed, 1, 5, 9);
    n1.on_deliver(0, Some(&s), MsgKind::EndConfirmed, 1, 5, 9);
    assert_eq!(codes(&collect(3, &ring)), vec!["MP304"]);
}

#[test]
fn shrinking_relation_fires_mp306() {
    let (mut n0, _n1, _eng, ring) = tracers();
    n0.on_store(2, 5);
    n0.on_store(2, 3); // monotone flow violated
    assert_eq!(codes(&collect(3, &ring)), vec!["MP306"]);
}

#[test]
fn vector_clock_regression_fires_mp301() {
    let (mut n0, _n1, _eng, ring) = tracers();
    n0.on_flush(1);
    n0.on_flush(1);
    let mut t = collect(3, &ring);
    // Corrupt the second event: roll its vector clock backwards.
    t.events[1].vclock = vec![0, 0, 0];
    assert_eq!(codes(&t), vec!["MP301"]);
}

#[test]
fn lamport_regression_fires_mp301() {
    let (mut n0, _n1, _eng, ring) = tracers();
    n0.on_flush(1);
    n0.on_flush(1);
    let mut t = collect(3, &ring);
    t.events[1].lamport = 0;
    t.events[1].vclock = vec![2, 0, 0]; // keep the vector clock honest
    assert_eq!(codes(&t), vec!["MP301"]);
}

#[test]
fn deliver_without_happens_before_fires_mp301() {
    let (mut n0, mut n1, _eng, ring) = tracers();
    let s = n0.on_send(1, MsgKind::Answer, 1, 0, 0);
    n1.on_deliver(0, Some(&s), MsgKind::Answer, 1, 0, 0);
    let mut t = collect(3, &ring);
    // The delivery no longer dominates the send in the sender component.
    let send_vclock = t.events[0].vclock.clone();
    if let Some(e) = t.events.get_mut(1) {
        e.vclock[0] = send_vclock[0] - 1;
    }
    assert_eq!(codes(&t), vec!["MP301"]);
}

#[test]
fn duplicate_frame_surviving_dedup_fires_mp308() {
    let (mut n0, mut n1, _eng, ring) = tracers();
    let s = n0.on_send(1, MsgKind::Answer, 1, 0, 0);
    n1.on_deliver(0, Some(&s), MsgKind::Answer, 1, 0, 0);
    n1.on_deliver(0, Some(&s), MsgKind::Answer, 1, 0, 0); // dedup failed
    assert_eq!(codes(&collect(3, &ring)), vec!["MP308"]);
}

#[test]
fn fifo_violation_fires_mp305() {
    let (mut n0, mut n1, _eng, ring) = tracers();
    let s0 = n0.on_send(1, MsgKind::Answer, 1, 0, 0);
    let s1 = n0.on_send(1, MsgKind::Answer, 1, 0, 0);
    n1.on_deliver(0, Some(&s1), MsgKind::Answer, 1, 0, 0); // overtook s0
    n1.on_deliver(0, Some(&s0), MsgKind::Answer, 1, 0, 0);
    assert_eq!(codes(&collect(3, &ring)), vec!["MP305"]);
}

#[test]
fn orphan_recover_fires_mp307() {
    let (mut n0, _n1, _eng, ring) = tracers();
    n0.on_recover(1, 0); // never crashed
    assert_eq!(codes(&collect(3, &ring)), vec!["MP307"]);
}

#[test]
fn logical_count_mismatch_fires_mp309() {
    let (mut n0, mut n1, _eng, ring) = tracers();
    let s = n0.on_send(1, MsgKind::AnswerBatch, 4, 0, 0);
    n1.on_deliver(0, Some(&s), MsgKind::AnswerBatch, 2, 0, 0); // tuples vanished
    assert_eq!(codes(&collect(3, &ring)), vec!["MP309"]);
}

#[test]
fn wave_order_regression_fires_mp304() {
    let (mut n0, _n1, _eng, ring) = tracers();
    n0.on_wave(2, 1);
    n0.on_wave(1, 1); // wave number went backwards within an epoch
    assert_eq!(codes(&collect(3, &ring)), vec!["MP304"]);
}

#[test]
fn answer_after_cancel_fires_mp310() {
    let (mut n0, mut n1, mut eng, ring) = tracers();
    // The engine broadcasts a cancel wave; node 1 acks it...
    let s = eng.on_send(1, MsgKind::Cancel, 1, 1, 0);
    n1.on_deliver(2, Some(&s), MsgKind::Cancel, 1, 1, 0);
    // ...then keeps deriving: an answer leaves the cancelled node.
    let s = n1.on_send(0, MsgKind::Answer, 1, 0, 0);
    n0.on_deliver(1, Some(&s), MsgKind::Answer, 1, 0, 0);
    assert_eq!(codes(&collect(3, &ring)), vec!["MP310"]);
}

#[test]
fn cancelled_node_may_still_drain_protocol_traffic() {
    // MP310 closes the *answer* stream only: wave replies and the final
    // End from a cancelled node are legitimate drain traffic.
    let (mut n0, mut n1, mut eng, ring) = tracers();
    let s = eng.on_send(1, MsgKind::Cancel, 1, 1, 0);
    n1.on_deliver(2, Some(&s), MsgKind::Cancel, 1, 1, 0);
    let s = n1.on_send(0, MsgKind::End, 1, 0, 0);
    n0.on_deliver(1, Some(&s), MsgKind::End, 1, 0, 0);
    assert_eq!(codes(&collect(3, &ring)), Vec::<&str>::new());
}

#[test]
fn mutations_survive_text_roundtrip() {
    // Corruption is still detected after serializing and reparsing.
    let (mut n0, _n1, _eng, ring) = tracers();
    n0.on_store(0, 5);
    n0.on_store(0, 3);
    let t = collect(3, &ring);
    let reparsed = Trace::from_text(&t.to_text()).unwrap();
    let diags = check(&reparsed);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::TraceShrinkingRelation);
    assert!(diags[0].is_deny());
}
