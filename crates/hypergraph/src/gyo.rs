//! The Graham (GYO) reduction: decides α-acyclicity and emits qual-tree
//! edges (§4.1 of the paper).
//!
//! The procedure applies two reductions as long as possible:
//!
//! 1. if a variable is currently in only one hyperedge, delete it;
//! 2. if a hyperedge `h1` is a subset of another hyperedge `h2`, add the
//!    edge `(h1, h2)` to the qual tree and delete `h1`.
//!
//! "A hypergraph is acyclic if and only if this procedure reduces it to
//! one empty edge."

use crate::Hypergraph;
use mp_datalog::Var;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of running the Graham reduction.
#[derive(Clone, Debug)]
pub struct GyoOutcome {
    /// True iff the hypergraph is α-acyclic.
    pub acyclic: bool,
    /// Undirected qual-tree edges between original hyperedge indices,
    /// recorded as `(absorbed, witness)` in absorption order. Complete
    /// (spans all edges) only when `acyclic`.
    pub tree_edges: Vec<(usize, usize)>,
    /// Index of the last surviving hyperedge (the final absorption
    /// witness); `None` for an empty hypergraph.
    pub survivor: Option<usize>,
    /// For a cyclic hypergraph: the edge indices of the irreducible core
    /// (empty when acyclic).
    pub core: Vec<usize>,
}

/// Run the Graham reduction on `h`.
pub fn gyo_reduce(h: &Hypergraph) -> GyoOutcome {
    // Working copy: var sets per original edge index; `alive` tracks
    // which edges remain.
    let mut vars: Vec<BTreeSet<Var>> = h.edges().iter().map(|e| e.vars.clone()).collect();
    let n = vars.len();
    let mut alive: Vec<bool> = vec![true; n];
    let mut tree_edges = Vec::new();

    if n == 0 {
        return GyoOutcome {
            acyclic: true,
            tree_edges,
            survivor: None,
            core: Vec::new(),
        };
    }

    loop {
        let mut changed = false;

        // Rule 1: delete variables occurring in exactly one live edge.
        let mut occurrences: BTreeMap<&Var, usize> = BTreeMap::new();
        for (i, vs) in vars.iter().enumerate() {
            if alive[i] {
                for v in vs {
                    *occurrences.entry(v).or_insert(0) += 1;
                }
            }
        }
        let solitary: BTreeSet<Var> = occurrences
            .iter()
            .filter(|&(_, &c)| c == 1)
            .map(|(v, _)| (*v).clone())
            .collect();
        if !solitary.is_empty() {
            for (i, vs) in vars.iter_mut().enumerate() {
                if alive[i] {
                    let before = vs.len();
                    vs.retain(|v| !solitary.contains(v));
                    if vs.len() != before {
                        changed = true;
                    }
                }
            }
        }

        // Rule 2: absorb subset edges. Scan pairs in index order so the
        // outcome is deterministic; absorb at most one edge per pass to
        // keep occurrence counts fresh.
        'subset: for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in 0..n {
                if i == j || !alive[j] {
                    continue;
                }
                // For equal sets, absorb the higher index into the lower
                // so ties are deterministic and never cyclic.
                let absorb = if vars[i].len() == vars[j].len() {
                    vars[i] == vars[j] && i < j
                } else {
                    vars[j].is_subset(&vars[i])
                };
                if !absorb {
                    continue;
                }
                alive[j] = false;
                tree_edges.push((j, i));
                changed = true;
                break 'subset;
            }
        }

        if !changed {
            break;
        }
    }

    let live: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
    let acyclic = live.len() == 1 && vars[live[0]].is_empty();
    GyoOutcome {
        acyclic,
        survivor: if live.len() == 1 { Some(live[0]) } else { None },
        core: if acyclic { Vec::new() } else { live },
        tree_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeLabel;
    use mp_datalog::Var;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    fn hg(edges: &[&[&str]]) -> Hypergraph {
        let mut h = Hypergraph::new();
        for (i, e) in edges.iter().enumerate() {
            h.add_edge(EdgeLabel::Subgoal(i), e.iter().map(|s| v(s)));
        }
        h
    }

    #[test]
    fn chain_is_acyclic() {
        // R1 of Example 4.1 with head {X}: a(X,Y), b(Y,U), c(U,Z).
        let h = hg(&[&["X"], &["X", "Y"], &["Y", "U"], &["U", "Z"]]);
        let out = gyo_reduce(&h);
        assert!(out.acyclic);
        assert_eq!(out.tree_edges.len(), 3);
    }

    #[test]
    fn triangle_is_cyclic() {
        // The classic cyclic example: pairwise-overlapping edges.
        let h = hg(&[&["X", "Y"], &["Y", "Z"], &["Z", "X"]]);
        let out = gyo_reduce(&h);
        assert!(!out.acyclic);
        assert_eq!(out.core.len(), 3);
    }

    #[test]
    fn paper_rule_r2_is_acyclic() {
        // R2: p(X,Z) :- a(X,Y,V), b(Y,U), c(V,T), d(T), e(U,Z); head {X}.
        // (Fig 3 of the paper.)
        let h = hg(&[
            &["X"],
            &["X", "Y", "V"],
            &["Y", "U"],
            &["V", "T"],
            &["T"],
            &["U", "Z"],
        ]);
        assert!(gyo_reduce(&h).acyclic);
    }

    #[test]
    fn paper_rule_r3_is_cyclic() {
        // R3: p(X,Z) :- a(X,Y,V), b(Y,W), c(V,W,T), d(T), e(W,Z); head
        // {X}. Fig 4's cycle involves Y, V, and W across a, b, c.
        let h = hg(&[
            &["X"],
            &["X", "Y", "V"],
            &["Y", "W"],
            &["V", "W", "T"],
            &["T"],
            &["W", "Z"],
        ]);
        let out = gyo_reduce(&h);
        assert!(!out.acyclic);
        // The irreducible core is the a, b, c triangle on {Y, V, W}.
        assert_eq!(out.core, vec![1, 2, 3]);
    }

    #[test]
    fn single_edge_and_empty() {
        assert!(gyo_reduce(&hg(&[&["X", "Y"]])).acyclic);
        assert!(gyo_reduce(&hg(&[])).acyclic);
        assert!(gyo_reduce(&hg(&[&[]])).acyclic);
    }

    #[test]
    fn duplicate_edges_absorb_deterministically() {
        let h = hg(&[&["X", "Y"], &["X", "Y"]]);
        let out = gyo_reduce(&h);
        assert!(out.acyclic);
        assert_eq!(out.tree_edges[0], (1, 0));
    }

    #[test]
    fn disconnected_components_reduce_via_empty_edges() {
        // p(X,Y) :- a(X), b(Y) with head {X}: b's Y is solitary, b becomes
        // empty, then absorbs into a survivor.
        let h = hg(&[&["X"], &["X"], &["Y"]]);
        let out = gyo_reduce(&h);
        assert!(out.acyclic);
    }

    #[test]
    fn tree_edges_span_all_edges_when_acyclic() {
        let h = hg(&[&["X"], &["X", "Y"], &["Y", "Z"], &["Z", "W"], &["W"]]);
        let out = gyo_reduce(&h);
        assert!(out.acyclic);
        // n-1 tree edges over n hyperedges.
        assert_eq!(out.tree_edges.len(), h.len() - 1);
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for &(a, b) in &out.tree_edges {
            touched.insert(a);
            touched.insert(b);
        }
        assert_eq!(touched.len(), h.len());
    }
}
