//! Qual trees (§4.1).
//!
//! "The important qual tree property that makes a tree a qual tree is the
//! following: for any variable in the rule, and any two hyperedges (rule
//! head or subgoals) containing that variable, the path between those
//! hyperedges in the qual tree only involves hyperedges (qual tree nodes)
//! that also contain that variable."

use crate::{gyo_reduce, EdgeLabel, Hypergraph};
use mp_datalog::Var;
use std::collections::{BTreeSet, VecDeque};

/// A qual tree over the hyperedges of an (acyclic) evaluation hypergraph,
/// rooted at the rule-head node.
#[derive(Clone, Debug)]
pub struct QualTree {
    /// Node labels, indexed like the source hypergraph's edges.
    pub labels: Vec<EdgeLabel>,
    /// Each node's variable set (the *original* hyperedge contents).
    pub vars: Vec<BTreeSet<Var>>,
    /// Undirected tree edges between node indices.
    pub edges: Vec<(usize, usize)>,
    /// The root node index (the head hyperedge).
    pub root: usize,
}

impl QualTree {
    /// Build a qual tree for `h` by Graham reduction, rooted at the `Head`
    /// edge. Returns `None` if `h` is cyclic or has no head edge.
    pub fn build(h: &Hypergraph) -> Option<QualTree> {
        let root = h.edge_index(EdgeLabel::Head)?;
        let out = gyo_reduce(h);
        if !out.acyclic {
            return None;
        }
        Some(QualTree {
            labels: h.edges().iter().map(|e| e.label).collect(),
            vars: h.edges().iter().map(|e| e.vars.clone()).collect(),
            edges: out.tree_edges,
            root,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Neighbours of a node.
    pub fn neighbours(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for &(a, b) in &self.edges {
            if a == node {
                out.push(b);
            } else if b == node {
                out.push(a);
            }
        }
        out
    }

    /// The parent of each node when edges are directed away from the root
    /// (`parent[root]` is `usize::MAX`). Panics if the tree is
    /// disconnected — `build` never produces such a tree.
    pub fn parents(&self) -> Vec<usize> {
        let n = self.len();
        let mut parent = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([self.root]);
        seen[self.root] = true;
        while let Some(u) = queue.pop_front() {
            for v in self.neighbours(u) {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "qual tree is disconnected: {:?}",
            self.edges
        );
        parent
    }

    /// Subgoal indices in breadth-first order from the root — the order in
    /// which Theorem 4.1's greedy information passing strategy schedules
    /// them (edges directed away from the root).
    pub fn bfs_subgoal_order(&self) -> Vec<usize> {
        let mut order = Vec::new();
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([self.root]);
        seen[self.root] = true;
        while let Some(u) = queue.pop_front() {
            if let EdgeLabel::Subgoal(i) = self.labels[u] {
                order.push(i);
            }
            let mut nb = self.neighbours(u);
            nb.sort_unstable();
            for v in nb {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        order
    }

    /// Check the qual tree property: for every variable, the set of nodes
    /// containing it forms a connected subtree. Returns the first
    /// offending variable if the property fails.
    pub fn verify(&self) -> Result<(), Var> {
        let n = self.len();
        if n == 0 {
            return Ok(());
        }
        let all_vars: BTreeSet<&Var> = self.vars.iter().flatten().collect();
        for var in all_vars {
            let holders: Vec<usize> = (0..n).filter(|&i| self.vars[i].contains(var)).collect();
            if holders.len() <= 1 {
                continue;
            }
            // BFS within the induced subgraph of holders.
            let holder_set: BTreeSet<usize> = holders.iter().copied().collect();
            let mut seen = BTreeSet::from([holders[0]]);
            let mut queue = VecDeque::from([holders[0]]);
            while let Some(u) = queue.pop_front() {
                for v in self.neighbours(u) {
                    if holder_set.contains(&v) && seen.insert(v) {
                        queue.push_back(v);
                    }
                }
            }
            if seen.len() != holders.len() {
                return Err(var.clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    /// The paper's R2 with head binding {X}: qual tree of Example 4.2.
    fn r2_hypergraph() -> Hypergraph {
        let mut h = Hypergraph::new();
        h.add_edge(EdgeLabel::Head, [v("X")]);
        h.add_edge(EdgeLabel::Subgoal(0), [v("X"), v("Y"), v("V")]); // a
        h.add_edge(EdgeLabel::Subgoal(1), [v("Y"), v("U")]); // b
        h.add_edge(EdgeLabel::Subgoal(2), [v("V"), v("T")]); // c
        h.add_edge(EdgeLabel::Subgoal(3), [v("T")]); // d
        h.add_edge(EdgeLabel::Subgoal(4), [v("U"), v("Z")]); // e
        h
    }

    #[test]
    fn r2_qual_tree_matches_example_4_2() {
        let qt = QualTree::build(&r2_hypergraph()).unwrap();
        qt.verify().unwrap();
        let parents = qt.parents();
        // Example 4.2: root p^b — a; a — b, a — c; b — e; c — d.
        assert_eq!(parents[1], 0); // a's parent is the head
        assert_eq!(parents[2], 1); // b under a
        assert_eq!(parents[3], 1); // c under a
        assert_eq!(parents[4], 3); // d under c
        assert_eq!(parents[5], 2); // e under b
    }

    #[test]
    fn r2_bfs_order_is_the_greedy_strategy() {
        let qt = QualTree::build(&r2_hypergraph()).unwrap();
        let order = qt.bfs_subgoal_order();
        // a first; then b and c (independent, "can be done in parallel");
        // then d and e.
        assert_eq!(order[0], 0);
        assert_eq!(BTreeSet::from([order[1], order[2]]), BTreeSet::from([1, 2]));
        assert_eq!(BTreeSet::from([order[3], order[4]]), BTreeSet::from([3, 4]));
    }

    #[test]
    fn cyclic_hypergraph_has_no_qual_tree() {
        let mut h = Hypergraph::new();
        h.add_edge(EdgeLabel::Head, [v("X")]);
        h.add_edge(EdgeLabel::Subgoal(0), [v("X"), v("Y")]);
        h.add_edge(EdgeLabel::Subgoal(1), [v("Y"), v("Z")]);
        h.add_edge(EdgeLabel::Subgoal(2), [v("Z"), v("X")]);
        assert!(QualTree::build(&h).is_none());
    }

    #[test]
    fn verify_detects_broken_property() {
        // Hand-build a tree violating the property: X in nodes 0 and 2,
        // but the path goes through node 1 which lacks X.
        let qt = QualTree {
            labels: vec![
                EdgeLabel::Head,
                EdgeLabel::Subgoal(0),
                EdgeLabel::Subgoal(1),
            ],
            vars: vec![
                BTreeSet::from([v("X")]),
                BTreeSet::from([v("Y")]),
                BTreeSet::from([v("X"), v("Y")]),
            ],
            edges: vec![(0, 1), (1, 2)],
            root: 0,
        };
        assert_eq!(qt.verify(), Err(v("X")));
    }

    #[test]
    fn missing_head_edge_yields_none() {
        let mut h = Hypergraph::new();
        h.add_edge(EdgeLabel::Subgoal(0), [v("X")]);
        assert!(QualTree::build(&h).is_none());
    }
}
