//! The §4.3 cost model: the paper's "reasonable assumptions" asserting
//! "a high degree of ignorance about the relations in the EDB":
//!
//! 1. all subgoal relations are of comparable size `n`, and large;
//! 2. each bound argument reduces the relation size by an *order of
//!    magnitude* — defined in the paper's footnote as reducing its
//!    **logarithm** by a constant factor `α < 1` (so a relation of size
//!    `n` selected on one argument has about `n^α` tuples, on two
//!    arguments `n^(α²)`, …);
//! 3. the size of a join is the size of the cross product, reduced by one
//!    order of magnitude per pair of join arguments;
//! 4. the cost of a join is proportional to the sum of the operand and
//!    result sizes;
//! 5. log factors are ignored.
//!
//! Experiment E9 compares this model's predictions against measured
//! intermediate sizes for different information passing strategies.

use mp_datalog::{Rule, Var};
use std::collections::BTreeSet;

/// The model's parameters.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// The order-of-magnitude factor `α < 1` from the paper's footnote.
    pub alpha: f64,
    /// Base relation size `n` (all subgoal relations, by assumption 1).
    pub n: f64,
}

impl CostModel {
    /// Create a model; `alpha` must lie in (0, 1) and `n` must exceed 1.
    pub fn new(alpha: f64, n: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(n > 1.0, "n must exceed 1");
        CostModel { alpha, n }
    }

    /// Size of a base relation with `bound` bound arguments:
    /// `n^(alpha^bound)` (assumption 2).
    pub fn selected_size(&self, bound: usize) -> f64 {
        self.n.powf(self.alpha.powi(bound as i32))
    }

    /// Size of the join of relations of sizes `a` and `b` sharing
    /// `join_pairs` argument pairs (assumption 3): the cross product's
    /// logarithm shrinks by `alpha` per pair.
    pub fn join_size(&self, a: f64, b: f64, join_pairs: usize) -> f64 {
        let cross = a * b;
        if cross <= 1.0 {
            return cross;
        }
        cross.powf(self.alpha.powi(join_pairs as i32))
    }

    /// Cost of that join (assumption 4).
    pub fn join_cost(&self, a: f64, b: f64, join_pairs: usize) -> f64 {
        a + b + self.join_size(a, b, join_pairs)
    }
}

/// Predicted evaluation of a rule body in a given subgoal order, starting
/// from the bound head variables. At each step the next subgoal is
/// semijoin-reduced by every already-bound variable it shares, then joined
/// into the running intermediate relation.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Per-step intermediate relation sizes (after each join).
    pub intermediate_sizes: Vec<f64>,
    /// Per-step subgoal retrieval sizes (after selection on bound args).
    pub subgoal_sizes: Vec<f64>,
    /// Total predicted cost (sum of join costs, assumption 4).
    pub total_cost: f64,
    /// Largest intermediate size — the quantity monotone flow bounds.
    pub max_intermediate: f64,
}

/// Predict the cost of evaluating `rule`'s body in `order` (a permutation
/// of subgoal indices) with `bound_head_vars` initially bound.
pub fn predict(
    model: &CostModel,
    rule: &Rule,
    order: &[usize],
    bound_head_vars: &BTreeSet<Var>,
) -> Prediction {
    let head_vars: BTreeSet<Var> = rule.head.vars().into_iter().collect();
    let mut bound: BTreeSet<Var> = head_vars.intersection(bound_head_vars).cloned().collect();

    // The running intermediate starts as the set of head bindings: one
    // "tuple request" per binding. Model it as the selected size of a
    // relation on the bound head args — or 1 when nothing is bound.
    let mut inter = if bound.is_empty() {
        1.0
    } else {
        model.selected_size(bound.len()).max(1.0)
    };

    let mut intermediate_sizes = Vec::with_capacity(order.len());
    let mut subgoal_sizes = Vec::with_capacity(order.len());
    let mut total_cost = 0.0;
    let mut max_intermediate = inter;

    for &i in order {
        let sg_vars: BTreeSet<Var> = rule.body[i].vars().into_iter().collect();
        let shared = sg_vars.intersection(&bound).count();
        let sg_size = model.selected_size(shared);
        let join_size = model.join_size(inter, sg_size, shared);
        total_cost += model.join_cost(inter, sg_size, shared);
        inter = join_size;
        max_intermediate = max_intermediate.max(inter);
        subgoal_sizes.push(sg_size);
        intermediate_sizes.push(inter);
        bound.extend(sg_vars);
    }

    Prediction {
        intermediate_sizes,
        subgoal_sizes,
        total_cost,
        max_intermediate,
    }
}

/// Enumerate all subgoal orders of `rule` and return the one the model
/// scores cheapest (ties broken by lexicographic order). Exponential in
/// the body length; intended for the small rules of the experiments.
pub fn optimal_order(
    model: &CostModel,
    rule: &Rule,
    bound_head_vars: &BTreeSet<Var>,
) -> (Vec<usize>, Prediction) {
    let k = rule.body.len();
    let mut best: Option<(Vec<usize>, Prediction)> = None;
    let mut order: Vec<usize> = (0..k).collect();
    permute(&mut order, 0, &mut |perm| {
        let p = predict(model, rule, perm, bound_head_vars);
        let better = match &best {
            None => true,
            Some((_, bp)) => p.total_cost < bp.total_cost,
        };
        if better {
            best = Some((perm.to_vec(), p));
        }
    });
    best.expect("at least one permutation")
}

fn permute(items: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monotone::examples::{r1, r2, r3};

    fn model() -> CostModel {
        CostModel::new(0.3, 1.0e6)
    }

    fn bound_x() -> BTreeSet<Var> {
        BTreeSet::from([Var::new("X")])
    }

    #[test]
    fn selection_shrinks_by_orders_of_magnitude() {
        let m = model();
        let s0 = m.selected_size(0);
        let s1 = m.selected_size(1);
        let s2 = m.selected_size(2);
        assert_eq!(s0, 1.0e6);
        // log10(s1) = 6 * 0.3 = 1.8.
        assert!((s1.log10() - 1.8).abs() < 1e-9);
        assert!((s2.log10() - 0.54).abs() < 1e-9);
        assert!(s2 < s1 && s1 < s0);
    }

    #[test]
    fn join_with_more_shared_vars_is_smaller() {
        let m = model();
        let j0 = m.join_size(1.0e3, 1.0e3, 0);
        let j1 = m.join_size(1.0e3, 1.0e3, 1);
        let j2 = m.join_size(1.0e3, 1.0e3, 2);
        assert_eq!(j0, 1.0e6);
        assert!(j2 < j1 && j1 < j0);
    }

    #[test]
    fn r1_chain_order_beats_reverse() {
        // Following the flow X→Y→U→Z should be cheaper than starting from
        // the unbound end.
        let m = model();
        let fwd = predict(&m, &r1(), &[0, 1, 2], &bound_x());
        let rev = predict(&m, &r1(), &[2, 1, 0], &bound_x());
        assert!(fwd.total_cost < rev.total_cost);
        assert!(fwd.max_intermediate < rev.max_intermediate);
    }

    #[test]
    fn optimal_order_for_r1_is_the_qual_tree_order() {
        let m = model();
        let (order, _) = optimal_order(&m, &r1(), &bound_x());
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn r2_greedy_orders_are_within_optimal() {
        // §4.3 conjecture: for monotone rules the qual-tree greedy order
        // is optimal under the model. Both valid BFS orders of R2's qual
        // tree should match the enumerated optimum's cost.
        let m = model();
        let (_, best) = optimal_order(&m, &r2(), &bound_x());
        let greedy1 = predict(&m, &r2(), &[0, 1, 2, 3, 4], &bound_x());
        let greedy2 = predict(&m, &r2(), &[0, 2, 1, 4, 3], &bound_x());
        assert!((greedy1.total_cost - best.total_cost).abs() / best.total_cost < 1e-9);
        assert!((greedy2.total_cost - best.total_cost).abs() / best.total_cost < 1e-9);
    }

    #[test]
    fn r3_parallel_flow_blows_up_vs_sequential() {
        // Evaluating b and c "in parallel" (both straight from a's
        // bindings, no W exchange) is modelled by the order a,b,c with
        // the shared-variable count of c computed against bound vars —
        // here the sequential order lets c see W from b, while the
        // *reverse* order c-before-b denies b the W binding symmetrically;
        // both sequential orders beat interleaving e early.
        let m = model();
        let seq = predict(&m, &r3(), &[0, 1, 2, 3, 4], &bound_x());
        let premature_e = predict(&m, &r3(), &[0, 4, 1, 2, 3], &bound_x());
        assert!(seq.max_intermediate <= premature_e.max_intermediate);
        assert!(seq.total_cost < premature_e.total_cost);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        CostModel::new(1.5, 10.0);
    }
}
