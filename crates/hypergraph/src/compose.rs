//! Qual tree composition under resolution (Theorem 4.2, Fig 5).
//!
//! Let rule `Rv` have a qual tree in which subgoal `p` is a leaf, and let
//! rule `Rw`'s head unify with `p`. Resolving (replacing `p` by `Rw`'s
//! subgoals after applying the mgu) produces an extended rule, and the two
//! qual trees *compose* into a qual tree for it: attach the neighbours of
//! the root `p^b` of `Rw`'s tree to the parent of the leaf `p` in `Rv`'s
//! tree, removing both `p^b` and `p`.
//!
//! This matters for recursion: "the property might be transmitted to all
//! recursive extensions of the rule" (§4.2).

use crate::{EdgeLabel, QualTree};
use mp_datalog::unify::{mgu, rename_apart};
use mp_datalog::{Rule, Var};
use std::collections::BTreeSet;

/// Why a composition attempt failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComposeError {
    /// The subgoal index is out of range for `rv`.
    NoSuchSubgoal(usize),
    /// `rw`'s head does not unify with the selected subgoal.
    NotUnifiable,
    /// The selected subgoal is not a leaf of `rv`'s qual tree (Thm 4.2
    /// requires a leaf).
    SubgoalNotLeaf(usize),
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::NoSuchSubgoal(i) => write!(f, "no subgoal {i} in the outer rule"),
            ComposeError::NotUnifiable => write!(f, "inner head does not unify with the subgoal"),
            ComposeError::SubgoalNotLeaf(i) => {
                write!(f, "subgoal {i} is not a leaf of the outer qual tree")
            }
        }
    }
}

impl std::error::Error for ComposeError {}

/// The result of resolving two rules and composing their qual trees.
#[derive(Clone, Debug)]
pub struct Composition {
    /// The extended rule: `rv` with subgoal `p` replaced by `rw`'s body
    /// (mgu applied throughout).
    pub rule: Rule,
    /// The composed qual tree over the extended rule's head and subgoals.
    pub qual_tree: QualTree,
}

/// Resolve `rv`'s subgoal `p` with `rw` and compose their qual trees per
/// Theorem 4.2. `qt_v` and `qt_w` must be the qual trees of `rv` (with its
/// binding) and `rw` (with the matching binding for its head).
///
/// `rw` is renamed apart internally, so callers may pass rules sharing
/// variable names (including `rv == rw`, the recursive self-extension).
pub fn compose(
    rv: &Rule,
    qt_v: &QualTree,
    p: usize,
    rw: &Rule,
    qt_w: &QualTree,
) -> Result<Composition, ComposeError> {
    if p >= rv.body.len() {
        return Err(ComposeError::NoSuchSubgoal(p));
    }
    // Node ids in qt_v: by construction (evaluation_hypergraph) node 0 is
    // the head and node i+1 is subgoal i.
    let p_node = qt_v
        .labels
        .iter()
        .position(|&l| l == EdgeLabel::Subgoal(p))
        .expect("qual tree covers every subgoal");
    if qt_v.neighbours(p_node).len() != 1 {
        return Err(ComposeError::SubgoalNotLeaf(p));
    }
    let p_parent = qt_v.neighbours(p_node)[0];

    // Rename rw apart using a counter past any `~k` suffix already present
    // in rv (rename_apart suffixes with `~n`; a fresh large counter avoids
    // collisions without tracking global state).
    let mut counter = next_fresh_counter(rv);
    let rw_fresh = rename_apart(rw, &mut counter);

    let sigma = mgu(&rv.body[p], &rw_fresh.head).ok_or(ComposeError::NotUnifiable)?;

    // Extended rule.
    let mut body = Vec::with_capacity(rv.body.len() - 1 + rw_fresh.body.len());
    for (i, sg) in rv.body.iter().enumerate() {
        if i == p {
            for inner in &rw_fresh.body {
                body.push(sigma.apply_atom(inner));
            }
        } else {
            body.push(sigma.apply_atom(sg));
        }
    }
    let rule = Rule::new(sigma.apply_atom(&rv.head), body);

    // Node mapping into the composed tree: 0 = head, then subgoals in the
    // extended rule's order.
    let w_body = rw_fresh.body.len();
    let map_v = |node: usize| -> Option<usize> {
        match qt_v.labels[node] {
            EdgeLabel::Head => Some(0),
            EdgeLabel::Subgoal(j) if j < p => Some(j + 1),
            EdgeLabel::Subgoal(j) if j > p => Some(j - 1 + w_body + 1),
            EdgeLabel::Subgoal(_) => None, // the resolved leaf p
        }
    };
    let w_root = qt_w.root;
    let map_w = |node: usize| -> Option<usize> {
        match qt_w.labels[node] {
            EdgeLabel::Head => None, // p^b, removed
            EdgeLabel::Subgoal(j) => Some(p + j + 1),
        }
    };
    debug_assert_eq!(qt_w.labels[w_root], EdgeLabel::Head);

    let mut edges = Vec::new();
    for &(a, b) in &qt_v.edges {
        if let (Some(a2), Some(b2)) = (map_v(a), map_v(b)) {
            edges.push((a2, b2));
        }
    }
    for &(a, b) in &qt_w.edges {
        match (map_w(a), map_w(b)) {
            (Some(a2), Some(b2)) => edges.push((a2, b2)),
            // An edge touching qt_w's root: reattach the surviving
            // endpoint to p's former parent.
            (Some(a2), None) => edges.push((a2, map_v(p_parent).expect("parent survives"))),
            (None, Some(b2)) => edges.push((b2, map_v(p_parent).expect("parent survives"))),
            (None, None) => unreachable!("tree has no self-loop at the root"),
        }
    }

    // Rebuild node var sets from the *extended rule* (post-substitution),
    // preserving qt_v's head-edge binding semantics: the composed head
    // node keeps rv's bound head vars, imaged through sigma and the
    // renaming is irrelevant for the head (head vars come from rv).
    let head_bound: BTreeSet<Var> = qt_v.vars[qt_v.root]
        .iter()
        .flat_map(|v| {
            sigma
                .apply_term(&mp_datalog::Term::Var(v.clone()))
                .as_var()
                .cloned()
        })
        .collect();
    let mut labels = vec![EdgeLabel::Head];
    let mut vars = vec![head_bound];
    for (i, sg) in rule.body.iter().enumerate() {
        labels.push(EdgeLabel::Subgoal(i));
        vars.push(sg.vars().into_iter().collect());
    }

    Ok(Composition {
        rule,
        qual_tree: QualTree {
            labels,
            vars,
            edges,
            root: 0,
        },
    })
}

/// Find a counter value guaranteed to produce variable names not already
/// present in `r` (rename_apart uses `name~counter`).
fn next_fresh_counter(r: &Rule) -> u64 {
    let mut max = 0u64;
    for v in r.vars() {
        if let Some(idx) = v.name().rfind('~') {
            if let Ok(n) = v.name()[idx + 1..].parse::<u64>() {
                max = max.max(n + 1);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monotone::examples::{r1, r3};
    use crate::{monotone_flow, MonotoneFlow};
    use mp_datalog::parser::parse_rule;

    fn bound_x() -> BTreeSet<Var> {
        BTreeSet::from([Var::new("X")])
    }

    fn qt_of(r: &Rule) -> QualTree {
        match monotone_flow(r, &bound_x()) {
            MonotoneFlow::Monotone(qt) => qt,
            MonotoneFlow::Cyclic(core) => panic!("expected monotone rule, core = {core:?}"),
        }
    }

    #[test]
    fn fig5_style_composition() {
        // Outer: r(X, Z) :- s(X, Y), p(Y, Z).   p is a leaf.
        // Inner: p(X, Z) :- a(X, Y), b(Y, Z).
        let rv = parse_rule("r(X, Z) :- s(X, Y), p(Y, Z).").unwrap();
        let rw = parse_rule("p(X, Z) :- a(X, Y), b(Y, Z).").unwrap();
        let qv = qt_of(&rv);
        let qw = qt_of(&rw);
        let comp = compose(&rv, &qv, 1, &rw, &qw).unwrap();
        // Extended rule: r(X,Z) :- s(X,Y), a(Y,..), b(..,Z).
        assert_eq!(comp.rule.body.len(), 3);
        assert_eq!(comp.rule.body[0].pred.name(), "s");
        assert_eq!(comp.rule.body[1].pred.name(), "a");
        assert_eq!(comp.rule.body[2].pred.name(), "b");
        // Theorem 4.2: the composed tree IS a qual tree.
        comp.qual_tree.verify().unwrap();
        assert_eq!(comp.qual_tree.len(), 4);
    }

    #[test]
    fn recursive_self_extension_preserves_monotone_flow() {
        // R1 extended on its own recursive form: use a chain rule whose
        // middle subgoal is p itself.
        let rv = parse_rule("p(X, Z) :- a(X, Y), p(Y, U), c(U, Z).").unwrap();
        // In rv's qual tree (head bound {X}), p(Y,U) is a chain node, not
        // a leaf — but c(U,Z) IS a leaf; compose there with R1 instead.
        let qv = qt_of(&rv);
        let rw = parse_rule("c(X, Z) :- g(X, Y), h(Y, Z).").unwrap();
        let qw = qt_of(&rw);
        let comp = compose(&rv, &qv, 2, &rw, &qw).unwrap();
        comp.qual_tree.verify().unwrap();
        // The composed rule still has monotone flow when re-tested from
        // scratch.
        let mf = monotone_flow(&comp.rule, &bound_x());
        assert!(mf.is_monotone());
    }

    #[test]
    fn repeated_composition_models_recursive_expansion() {
        // Repeatedly expanding R1's trailing subgoal keeps monotone flow,
        // mirroring §4.2's remark about recursive extensions.
        let mut rule = r1();
        let mut qt = qt_of(&rule);
        for _ in 0..5 {
            let inner = parse_rule("c(X, Z) :- a(X, Y), b(Y, U), c(U, Z).").unwrap();
            let qi = qt_of(&inner);
            let last = rule.body.len() - 1;
            let comp = compose(&rule, &qt, last, &inner, &qi).unwrap();
            comp.qual_tree.verify().unwrap();
            rule = comp.rule;
            qt = comp.qual_tree;
        }
        assert_eq!(rule.body.len(), 3 + 5 * 2);
        assert!(monotone_flow(&rule, &bound_x()).is_monotone());
    }

    #[test]
    fn non_leaf_subgoal_rejected() {
        let rv = r1(); // a(X,Y), b(Y,U), c(U,Z): b is interior.
        let qv = qt_of(&rv);
        let rw = parse_rule("b(X, Z) :- g(X, Z).").unwrap();
        let qw = qt_of(&rw);
        assert_eq!(
            compose(&rv, &qv, 1, &rw, &qw).unwrap_err(),
            ComposeError::SubgoalNotLeaf(1)
        );
    }

    #[test]
    fn ununifiable_heads_rejected() {
        let rv = r1();
        let qv = qt_of(&rv);
        let rw = parse_rule("zzz(X) :- g(X).").unwrap();
        let qw = qt_of(&rw);
        assert_eq!(
            compose(&rv, &qv, 2, &rw, &qw).unwrap_err(),
            ComposeError::NotUnifiable
        );
    }

    #[test]
    fn out_of_range_subgoal_rejected() {
        let rv = r1();
        let qv = qt_of(&rv);
        assert_eq!(
            compose(&rv, &qv, 9, &rv, &qv).unwrap_err(),
            ComposeError::NoSuchSubgoal(9)
        );
    }

    #[test]
    fn composing_into_cyclic_outer_is_prevented_by_construction() {
        // A cyclic rule has no qual tree, so there is nothing to pass to
        // compose — the API makes the misuse unrepresentable.
        assert!(monotone_flow(&r3(), &bound_x()).qual_tree().is_none());
    }
}
