#![warn(missing_docs)]

//! # mp-hypergraph
//!
//! Evaluation hypergraphs, Graham (GYO) reduction, qual trees, and the
//! **monotone flow property** — §4 of Van Gelder, "A Message Passing
//! Framework for Logical Query Evaluation" (SIGMOD 1986).
//!
//! A rule with given head binding classes has an *evaluation hypergraph*
//! (Def 4.1): one vertex per variable, a hyperedge of the bound (`c`/`d`)
//! head variables, and a hyperedge per subgoal. The rule has the
//! *monotone flow property* (Def 4.2) iff that hypergraph is α-acyclic,
//! which the Graham reduction both decides and witnesses with a *qual
//! tree* rooted at the head. Directing qual-tree edges away from the root
//! yields a greedy sideways-information-passing strategy (Thm 4.1), and
//! qual trees compose under resolution on leaf subgoals (Thm 4.2).
//!
//! The [`cost`] module implements the paper's §4.3 "reasonable
//! assumptions" cost model, used by experiment E9.

pub mod compose;
pub mod cost;
mod gyo;
mod hypergraph;
mod monotone;
mod qualtree;

pub use gyo::{gyo_reduce, GyoOutcome};
pub use hypergraph::{EdgeLabel, HyperEdge, Hypergraph};
pub use monotone::examples;
pub use monotone::{evaluation_hypergraph, monotone_flow, MonotoneFlow};
pub use qualtree::QualTree;
