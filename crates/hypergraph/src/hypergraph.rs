//! Hypergraphs over rule variables.

use mp_datalog::Var;
use std::collections::BTreeSet;
use std::fmt;

/// What a hyperedge stands for in an evaluation hypergraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeLabel {
    /// The bound (`c`/`d`) variables of the rule head — the paper writes
    /// this hyperedge with a superscript `b`.
    Head,
    /// The `i`-th subgoal of the rule (0-based).
    Subgoal(usize),
}

impl fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeLabel::Head => write!(f, "head^b"),
            EdgeLabel::Subgoal(i) => write!(f, "subgoal[{i}]"),
        }
    }
}

/// A hyperedge: a labelled set of variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperEdge {
    /// The edge's identity.
    pub label: EdgeLabel,
    /// Its variables.
    pub vars: BTreeSet<Var>,
}

/// A hypergraph: "a generalization of a graph in which hyperedges are
/// arbitrary sets of nodes instead of just pairs of nodes" (§4).
#[derive(Clone, Debug, Default)]
pub struct Hypergraph {
    edges: Vec<HyperEdge>,
}

impl Hypergraph {
    /// Create an empty hypergraph.
    pub fn new() -> Self {
        Hypergraph::default()
    }

    /// Add a hyperedge; returns its index.
    pub fn add_edge(&mut self, label: EdgeLabel, vars: impl IntoIterator<Item = Var>) -> usize {
        self.edges.push(HyperEdge {
            label,
            vars: vars.into_iter().collect(),
        });
        self.edges.len() - 1
    }

    /// The hyperedges, in insertion order.
    pub fn edges(&self) -> &[HyperEdge] {
        &self.edges
    }

    /// Number of hyperedges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the hypergraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All distinct vertices (variables).
    pub fn vertices(&self) -> BTreeSet<Var> {
        self.edges
            .iter()
            .flat_map(|e| e.vars.iter().cloned())
            .collect()
    }

    /// Index of the edge with the given label, if present.
    pub fn edge_index(&self, label: EdgeLabel) -> Option<usize> {
        self.edges.iter().position(|e| e.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn build_and_inspect() {
        let mut h = Hypergraph::new();
        let e0 = h.add_edge(EdgeLabel::Head, [v("X")]);
        let e1 = h.add_edge(EdgeLabel::Subgoal(0), [v("X"), v("Y")]);
        assert_eq!(e0, 0);
        assert_eq!(e1, 1);
        assert_eq!(h.len(), 2);
        assert_eq!(h.vertices().len(), 2);
        assert_eq!(h.edge_index(EdgeLabel::Head), Some(0));
        assert_eq!(h.edge_index(EdgeLabel::Subgoal(7)), None);
    }

    #[test]
    fn duplicate_vars_in_edge_collapse() {
        let mut h = Hypergraph::new();
        h.add_edge(EdgeLabel::Subgoal(0), [v("X"), v("X")]);
        assert_eq!(h.edges()[0].vars.len(), 1);
    }
}
