//! The monotone flow property (Defs 4.1–4.2).

use crate::{EdgeLabel, Hypergraph, QualTree};
use mp_datalog::{Rule, Var};
use std::collections::BTreeSet;

/// Build the evaluation hypergraph of a rule (Def 4.1): one vertex per
/// rule variable; a hyperedge of the head's **bound** variables (the
/// `c`/`d` classes, given here as `bound_head_vars`); one hyperedge per
/// subgoal containing all of that subgoal's variables.
///
/// Constants contribute no vertices: they are local selections, not
/// cross-subgoal flow. One consequence is that a rule whose only initial
/// binding is a constant (e.g. a top goal `p(0, Z)`) has an *empty* head
/// edge, so its qual tree roots arbitrarily and carries no flow
/// direction — the qual-tree SIP strategy therefore falls back to the
/// greedy order in that case (`mp-rulegoal`).
pub fn evaluation_hypergraph(rule: &Rule, bound_head_vars: &BTreeSet<Var>) -> Hypergraph {
    let mut h = Hypergraph::new();
    let head_vars: BTreeSet<Var> = rule.head.vars().into_iter().collect();
    h.add_edge(
        EdgeLabel::Head,
        head_vars.intersection(bound_head_vars).cloned(),
    );
    for (i, sg) in rule.body.iter().enumerate() {
        h.add_edge(EdgeLabel::Subgoal(i), sg.vars());
    }
    h
}

/// Outcome of testing a rule for monotone flow.
#[derive(Clone, Debug)]
pub enum MonotoneFlow {
    /// The evaluation hypergraph is α-acyclic; the witness qual tree is
    /// attached (Def 4.2).
    Monotone(QualTree),
    /// The hypergraph is cyclic; the subgoal indices of the irreducible
    /// core are attached (the "inherently cyclic structure" of §1.2).
    Cyclic(Vec<usize>),
}

impl MonotoneFlow {
    /// True for the monotone case.
    pub fn is_monotone(&self) -> bool {
        matches!(self, MonotoneFlow::Monotone(_))
    }

    /// The qual tree, if monotone.
    pub fn qual_tree(&self) -> Option<&QualTree> {
        match self {
            MonotoneFlow::Monotone(qt) => Some(qt),
            MonotoneFlow::Cyclic(_) => None,
        }
    }
}

/// Test whether `rule`, with the given bound head variables, has the
/// monotone flow property (Def 4.2).
pub fn monotone_flow(rule: &Rule, bound_head_vars: &BTreeSet<Var>) -> MonotoneFlow {
    let h = evaluation_hypergraph(rule, bound_head_vars);
    match QualTree::build(&h) {
        Some(qt) => MonotoneFlow::Monotone(qt),
        None => {
            let core = crate::gyo_reduce(&h)
                .core
                .into_iter()
                .filter_map(|i| match h.edges()[i].label {
                    EdgeLabel::Subgoal(s) => Some(s),
                    EdgeLabel::Head => None,
                })
                .collect();
            MonotoneFlow::Cyclic(core)
        }
    }
}

/// The paper's three running example rules (Example 4.1), reconstructed
/// from the prose (the OCR of the rule bodies is partially garbled; the
/// reconstruction is the unique reading consistent with the flow
/// descriptions and with Figs 3–4 — see DESIGN.md).
pub mod examples {
    use mp_datalog::parser::parse_rule;
    use mp_datalog::Rule;

    /// R1: `p(X,Z) :- a(X,Y), b(Y,U), c(U,Z).` — "information flows from
    /// X to Y to U to Z quite naturally."
    pub fn r1() -> Rule {
        parse_rule("p(X, Z) :- a(X, Y), b(Y, U), c(U, Z).").expect("valid R1")
    }

    /// R2: `p(X,Z) :- a(X,Y,V), b(Y,U), c(V,T), d(T), e(U,Z).` — flow
    /// from X to both Y and V; extending to U (via b) or T (via c) is
    /// independent. Fig 3's hypergraph; monotone.
    pub fn r2() -> Rule {
        parse_rule("p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).").expect("valid R2")
    }

    /// R3: `p(X,Z) :- a(X,Y,V), b(Y,W), c(V,W,T), d(T), e(W,Z).` — after
    /// a, evaluating b yields W bindings that restrict c and vice versa;
    /// doing both in parallel risks "two large relations that are nearly
    /// unjoinable due to mismatches on W". Fig 4's cycle on Y, V, W; not
    /// monotone.
    pub fn r3() -> Rule {
        parse_rule("p(X, Z) :- a(X, Y, V), b(Y, W), c(V, W, T), d(T), e(W, Z).").expect("valid R3")
    }
}

#[cfg(test)]
mod tests {
    use super::examples::{r1, r2, r3};
    use super::*;

    fn bound_x() -> BTreeSet<Var> {
        BTreeSet::from([Var::new("X")])
    }

    #[test]
    fn r1_is_monotone() {
        let mf = monotone_flow(&r1(), &bound_x());
        assert!(mf.is_monotone());
        let qt = mf.qual_tree().unwrap();
        qt.verify().unwrap();
        // Chain: a, then b, then c.
        assert_eq!(qt.bfs_subgoal_order(), vec![0, 1, 2]);
    }

    #[test]
    fn r2_is_monotone() {
        let mf = monotone_flow(&r2(), &bound_x());
        assert!(mf.is_monotone());
        mf.qual_tree().unwrap().verify().unwrap();
    }

    #[test]
    fn r3_is_cyclic_on_abc() {
        let mf = monotone_flow(&r3(), &bound_x());
        assert!(!mf.is_monotone());
        match mf {
            MonotoneFlow::Cyclic(core) => assert_eq!(core, vec![0, 1, 2]),
            MonotoneFlow::Monotone(_) => unreachable!(),
        }
    }

    #[test]
    fn binding_pattern_changes_the_answer() {
        // R3 with *both* head variables bound stays cyclic (the Y-V-W
        // cycle does not involve head vars)...
        let both = BTreeSet::from([Var::new("X"), Var::new("Z")]);
        assert!(!monotone_flow(&r3(), &both).is_monotone());
        // ...while a fully-free head on R1 is still monotone: the empty
        // head edge absorbs into anything.
        assert!(monotone_flow(&r1(), &BTreeSet::new()).is_monotone());
    }

    #[test]
    fn head_edge_only_keeps_bound_vars_that_exist_in_head() {
        // A bound set mentioning a variable not in the head is ignored.
        let odd = BTreeSet::from([Var::new("Nope")]);
        let h = evaluation_hypergraph(&r1(), &odd);
        assert!(h.edges()[0].vars.is_empty());
    }
}
