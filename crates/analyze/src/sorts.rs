//! Sort/type inference over a constant-domain lattice.
//!
//! The abstract domain tracks, per (predicate, column), an
//! **over-approximation** of the set of values that column can hold in
//! the least model: either an exact finite set seeded from the EDB, or —
//! once the set outgrows the widening cap — just the value *types* it may
//! contain (integers / symbols). A Kleene iteration from ⊥ propagates
//! sorts through the rules, so at the fixpoint:
//!
//! * a column whose sort is empty provably holds no values;
//! * a rule whose body is abstractly empty provably never fires (the
//!   soundness direction dead-rule pruning relies on);
//! * a join variable whose occurrence sorts intersect to ∅ can never
//!   match — flagged as MP401 when the sorts are *type*-disjoint (one
//!   side only integers, the other only symbols) and as a dead join
//!   otherwise.
//!
//! Everything here is pure program + EDB reasoning: no rule/goal graph,
//! no adornments. The graph-level planner (`plan`) reuses the fixpoint to
//! test per-instance rule bodies (with the goal's constants substituted
//! in), which is strictly more precise than the program-level pass.
//!
//! **Negation and aggregation.** Negated subgoals *weaken* rather than
//! bind: a `!q(..)` can only remove tuples, so ignoring it keeps the
//! fixpoint an over-approximation of the perfect model — MP401–MP403
//! pruning stays sound under stratified negation. Aggregate output
//! columns for `count`/`sum` widen to the integer type bit (the fold
//! synthesizes values outside the fold variable's sort); `min`/`max`
//! select an existing value and keep the variable's sort.

use mp_datalog::{AggFunc, Atom, Database, Predicate, Program, Var};
use mp_storage::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Default widening cap: column sorts larger than this collapse to their
/// type bits. Chosen so canonical workloads (hundreds of constants) stay
/// cheap while unit-test-sized programs keep exact sorts.
pub const DEFAULT_WIDEN_CAP: usize = 256;

/// An over-approximation of the values one column may hold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SortSet {
    /// An exact finite set (at most the widening cap).
    Values(BTreeSet<Value>),
    /// Widened: only the value types are tracked.
    Top {
        /// May contain integers.
        ints: bool,
        /// May contain interned symbols.
        syms: bool,
    },
}

fn is_int(v: &Value) -> bool {
    v.as_int().is_some()
}

impl SortSet {
    /// The empty sort (⊥).
    pub fn empty() -> SortSet {
        SortSet::Values(BTreeSet::new())
    }

    /// The full sort (⊤ over both types).
    pub fn all() -> SortSet {
        SortSet::Top {
            ints: true,
            syms: true,
        }
    }

    /// True when no value can inhabit this sort.
    pub fn is_empty(&self) -> bool {
        match self {
            SortSet::Values(s) => s.is_empty(),
            SortSet::Top { ints, syms } => !ints && !syms,
        }
    }

    /// Which value types the sort may contain: `(ints, syms)`.
    pub fn type_bits(&self) -> (bool, bool) {
        match self {
            SortSet::Values(s) => (s.iter().any(is_int), s.iter().any(|v| !is_int(v))),
            SortSet::Top { ints, syms } => (*ints, *syms),
        }
    }

    /// Membership test (over-approximate: `Top` admits by type).
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            SortSet::Values(s) => s.contains(v),
            SortSet::Top { ints, syms } => {
                if is_int(v) {
                    *ints
                } else {
                    *syms
                }
            }
        }
    }

    /// Exact cardinality, when the sort is still a finite set.
    pub fn size(&self) -> Option<usize> {
        match self {
            SortSet::Values(s) => Some(s.len()),
            SortSet::Top { .. } => None,
        }
    }

    /// Lattice join, widening to `Top` past `cap`. Returns true when
    /// `self` grew.
    pub fn union_with(&mut self, other: &SortSet, cap: usize) -> bool {
        match (&mut *self, other) {
            (SortSet::Values(a), SortSet::Values(b)) => {
                let before = a.len();
                a.extend(b.iter().copied());
                if a.len() > cap {
                    let grown = SortSet::Top {
                        ints: a.iter().any(is_int),
                        syms: a.iter().any(|v| !is_int(v)),
                    };
                    *self = grown;
                    true
                } else {
                    a.len() > before
                }
            }
            (SortSet::Top { ints, syms }, other) => {
                let (oi, os) = other.type_bits();
                let grew = (oi && !*ints) || (os && !*syms);
                *ints |= oi;
                *syms |= os;
                grew
            }
            (slot @ SortSet::Values(_), SortSet::Top { .. }) => {
                let (si, ss) = slot.type_bits();
                let (oi, os) = other.type_bits();
                *slot = SortSet::Top {
                    ints: si || oi,
                    syms: ss || os,
                };
                true
            }
        }
    }

    /// Lattice meet.
    pub fn intersect(&self, other: &SortSet) -> SortSet {
        match (self, other) {
            (SortSet::Values(a), SortSet::Values(b)) => {
                SortSet::Values(a.intersection(b).copied().collect())
            }
            (SortSet::Values(a), t @ SortSet::Top { .. })
            | (t @ SortSet::Top { .. }, SortSet::Values(a)) => {
                SortSet::Values(a.iter().filter(|v| t.contains(v)).copied().collect())
            }
            (SortSet::Top { ints: a, syms: b }, SortSet::Top { ints: c, syms: d }) => {
                SortSet::Top {
                    ints: *a && *c,
                    syms: *b && *d,
                }
            }
        }
    }
}

/// Why an abstract rule body evaluated to the empty relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmptyReason {
    /// Subgoal `index`'s predicate provably has no tuples (empty or
    /// entirely absent relation, and no rule can derive into it).
    EmptyPredicate {
        /// Body position of the offending subgoal.
        index: usize,
    },
    /// Subgoal `index` carries a constant outside the column's sort.
    ConstMismatch {
        /// Body position of the offending subgoal.
        index: usize,
        /// Column of the offending constant.
        col: usize,
        /// The constant itself.
        value: Value,
    },
    /// A join variable's occurrence sorts intersect to ∅.
    EmptyVar {
        /// The variable whose sorts clash.
        var: Var,
        /// True when the clash is type-level (one side only integers,
        /// the other only symbols) — the MP401 case.
        type_clash: bool,
    },
}

/// The sort-inference fixpoint: per-predicate column sorts. A predicate
/// absent from the map is provably empty.
#[derive(Clone, Debug, Default)]
pub struct SortAnalysis {
    /// Final column sorts per predicate (EDB and IDB alike).
    pub sorts: BTreeMap<Predicate, Vec<SortSet>>,
    /// The widening cap the fixpoint ran with.
    pub cap: usize,
}

impl SortAnalysis {
    /// Run the Kleene iteration: seed column sorts from the EDB, then
    /// apply every rule until nothing grows. Terminates because each
    /// (predicate, column) sort only grows and the lattice has finite
    /// height (cap + 3 type states).
    pub fn infer(program: &Program, db: &Database, cap: usize) -> SortAnalysis {
        let mut sorts: BTreeMap<Predicate, Vec<SortSet>> = BTreeMap::new();
        for (pred, rel) in db.iter() {
            let mut cols = vec![SortSet::empty(); rel.arity()];
            for t in rel.iter() {
                for (c, slot) in cols.iter_mut().enumerate() {
                    slot.union_with(&SortSet::Values(BTreeSet::from([t[c]])), cap);
                }
            }
            sorts.insert(pred.clone(), cols);
        }
        loop {
            let mut changed = false;
            for rule in &program.rules {
                let Ok(vars) = abstract_body_in(&sorts, &rule.body) else {
                    continue;
                };
                let head_arity = rule.head.arity();
                let entry = sorts
                    .entry(rule.head.pred.clone())
                    .or_insert_with(|| vec![SortSet::empty(); head_arity]);
                for (i, t) in rule.head.terms.iter().enumerate() {
                    // Aggregate output columns: `count`/`sum` synthesize
                    // integers outside the fold variable's sort, so only
                    // the type bit is sound; `min`/`max` select one of the
                    // variable's own values and keep its sort.
                    if rule.agg.as_ref().is_some_and(|a| {
                        a.position == i && matches!(a.func, AggFunc::Count | AggFunc::Sum)
                    }) {
                        changed |= entry[i].union_with(
                            &SortSet::Top {
                                ints: true,
                                syms: false,
                            },
                            cap,
                        );
                        continue;
                    }
                    let col_sort = match t {
                        mp_datalog::Term::Const(v) => SortSet::Values(BTreeSet::from([*v])),
                        // Safe rules bind every head var in the body; an
                        // unsafe rule (denied upstream) degrades to ⊤.
                        mp_datalog::Term::Var(v) => {
                            vars.get(v).cloned().unwrap_or_else(SortSet::all)
                        }
                    };
                    changed |= entry[i].union_with(&col_sort, cap);
                }
            }
            if !changed {
                return SortAnalysis { sorts, cap };
            }
        }
    }

    /// Column sorts of one predicate; `None` means provably empty.
    pub fn of(&self, pred: &Predicate) -> Option<&Vec<SortSet>> {
        self.sorts.get(pred)
    }

    /// Abstractly evaluate a rule body against the current sorts:
    /// the variable environment on success, or the first reason the body
    /// is provably empty. Sound: any concrete satisfying assignment maps
    /// each variable into the returned sort.
    pub fn abstract_body(&self, body: &[Atom]) -> Result<BTreeMap<Var, SortSet>, EmptyReason> {
        abstract_body_in(&self.sorts, body)
    }
}

fn abstract_body_in(
    sorts: &BTreeMap<Predicate, Vec<SortSet>>,
    body: &[Atom],
) -> Result<BTreeMap<Var, SortSet>, EmptyReason> {
    let mut env: BTreeMap<Var, SortSet> = BTreeMap::new();
    for (index, atom) in body.iter().enumerate() {
        let Some(cols) = sorts.get(&atom.pred) else {
            return Err(EmptyReason::EmptyPredicate { index });
        };
        // A zero-arity predicate with an entry is derivable (its one
        // possible tuple is the unit tuple); only a column provably
        // holding no value empties a relation.
        if !cols.is_empty() && cols.iter().all(SortSet::is_empty) {
            return Err(EmptyReason::EmptyPredicate { index });
        }
        for (col, term) in atom.terms.iter().enumerate() {
            // Arity mismatches are denied by MP002 before analysis
            // runs; degrade to ⊤ rather than panic if one slips by.
            let col_sort = cols.get(col).cloned().unwrap_or_else(SortSet::all);
            match term {
                mp_datalog::Term::Const(v) => {
                    if !col_sort.contains(v) {
                        return Err(EmptyReason::ConstMismatch {
                            index,
                            col,
                            value: *v,
                        });
                    }
                }
                mp_datalog::Term::Var(v) => {
                    let met = match env.get(v) {
                        Some(prev) => {
                            let met = prev.intersect(&col_sort);
                            if met.is_empty() {
                                let (pi, ps) = prev.type_bits();
                                let (ci, cs) = col_sort.type_bits();
                                // Type-disjoint: both sides nonempty but
                                // sharing no type.
                                let type_clash = !(pi && ci || ps && cs);
                                return Err(EmptyReason::EmptyVar {
                                    var: v.clone(),
                                    type_clash,
                                });
                            }
                            met
                        }
                        None => col_sort,
                    };
                    env.insert(v.clone(), met);
                }
            }
        }
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::tuple;

    fn setup(src: &str, facts: &[(&str, i64, i64)]) -> (Program, Database) {
        let program = parse_program(src).unwrap();
        let mut db = Database::new();
        for &(p, a, b) in facts {
            db.insert(p, tuple![a, b]).unwrap();
        }
        (program, db)
    }

    #[test]
    fn fixpoint_covers_derived_values() {
        let (program, db) = setup(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             ?- path(0, Z).",
            &[("edge", 0, 1), ("edge", 1, 2)],
        );
        let sa = SortAnalysis::infer(&program, &db, DEFAULT_WIDEN_CAP);
        let path = sa.of(&Predicate::new("path")).unwrap();
        // Column 1 of path must cover every reachable node: {1, 2}.
        assert!(path[1].contains(&Value::int(1)));
        assert!(path[1].contains(&Value::int(2)));
        // Column 0 only ever holds edge sources: {0, 1}.
        assert!(path[0].contains(&Value::int(0)));
        assert!(!path[0].contains(&Value::int(2)));
    }

    #[test]
    fn type_disjoint_join_is_a_type_clash() {
        let program = parse_program(
            "p(X) :- a(X, Y), b(Y, Z).
             ?- p(X).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("a", tuple![1, 2]).unwrap();
        db.insert("b", tuple!["x", "y"]).unwrap();
        let sa = SortAnalysis::infer(&program, &db, DEFAULT_WIDEN_CAP);
        let err = sa.abstract_body(&program.rules[0].body).unwrap_err();
        match err {
            EmptyReason::EmptyVar { var, type_clash } => {
                assert_eq!(var.name(), "Y");
                assert!(type_clash, "int-vs-symbol join must be a type clash");
            }
            other => panic!("expected EmptyVar, got {other:?}"),
        }
    }

    #[test]
    fn value_disjoint_join_is_empty_but_not_type_clash() {
        let (program, db) = setup(
            "p(X) :- a(X, Y), b(Y, Z).
             ?- p(X).",
            &[("a", 1, 2), ("b", 5, 6)],
        );
        let sa = SortAnalysis::infer(&program, &db, DEFAULT_WIDEN_CAP);
        match sa.abstract_body(&program.rules[0].body).unwrap_err() {
            EmptyReason::EmptyVar { type_clash, .. } => assert!(!type_clash),
            other => panic!("expected EmptyVar, got {other:?}"),
        }
    }

    #[test]
    fn constant_outside_sort_is_flagged() {
        let (program, db) = setup(
            "p(X) :- edge(9, X).
             ?- p(X).",
            &[("edge", 0, 1)],
        );
        let sa = SortAnalysis::infer(&program, &db, DEFAULT_WIDEN_CAP);
        assert_eq!(
            sa.abstract_body(&program.rules[0].body).unwrap_err(),
            EmptyReason::ConstMismatch {
                index: 0,
                col: 0,
                value: Value::int(9),
            }
        );
    }

    #[test]
    fn missing_predicate_is_empty() {
        let (program, db) = setup(
            "p(X) :- ghost(X, Y).
             ?- p(X).",
            &[("edge", 0, 1)],
        );
        let sa = SortAnalysis::infer(&program, &db, DEFAULT_WIDEN_CAP);
        assert_eq!(
            sa.abstract_body(&program.rules[0].body).unwrap_err(),
            EmptyReason::EmptyPredicate { index: 0 }
        );
    }

    #[test]
    fn widening_keeps_types_sound() {
        let program = parse_program(
            "p(X, Y) :- edge(X, Y).
             ?- p(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..10 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        // Cap of 4 forces widening; membership must stay over-approximate.
        let sa = SortAnalysis::infer(&program, &db, 4);
        let edge = sa.of(&Predicate::new("edge")).unwrap();
        assert!(matches!(edge[0], SortSet::Top { ints: true, .. }));
        assert!(edge[0].contains(&Value::int(999)), "Top admits by type");
        assert!(!edge[0].contains(&Value::str("zzz")));
    }

    #[test]
    fn negated_subgoals_weaken_instead_of_bind() {
        // `stuck` holds at most the positive bindings of `pos`; the
        // negation only removes tuples, so its sort must cover pos's
        // column even though `!moved(X)` could (concretely) filter
        // everything out. The abstraction must NOT treat the negated
        // subgoal as a binder (which could wrongly shrink the sort).
        let (program, db) = setup(
            "moved(X) :- move(X, _Y).
             stuck(X) :- pos(X, _P), !moved(X).
             ?- stuck(X).",
            &[("move", 1, 2), ("pos", 1, 0), ("pos", 7, 0)],
        );
        let sa = SortAnalysis::infer(&program, &db, DEFAULT_WIDEN_CAP);
        let stuck = sa.of(&Predicate::new("stuck")).unwrap();
        // 1 is concretely removed by !moved(1), but must stay in the
        // over-approximation; 7 truly survives.
        assert!(stuck[0].contains(&Value::int(1)));
        assert!(stuck[0].contains(&Value::int(7)));
        assert!(!stuck[0].contains(&Value::int(2)));
    }

    #[test]
    fn aggregate_columns_widen_by_function() {
        let (program, db) = setup(
            "n(D, count<S>) :- pay(D, S).
             t(D, sum<S>) :- pay(D, S).
             m(D, min<S>) :- pay(D, S).
             ?- n(D, C).",
            &[("pay", 1, 10), ("pay", 1, 20)],
        );
        let sa = SortAnalysis::infer(&program, &db, DEFAULT_WIDEN_CAP);
        // count/sum synthesize integers outside S's sort: the column is
        // integer-Top (2 and 30 are derivable but not in {10, 20}).
        for pred in ["n", "t"] {
            let cols = sa.of(&Predicate::new(pred)).unwrap();
            assert_eq!(
                cols[1],
                SortSet::Top {
                    ints: true,
                    syms: false
                },
                "{pred}"
            );
            assert!(cols[0].contains(&Value::int(1)), "grouping col is exact");
        }
        // min/max pick an existing value: the fold variable's own sort.
        let m = sa.of(&Predicate::new("m")).unwrap();
        assert!(m[1].contains(&Value::int(10)));
        assert!(!m[1].contains(&Value::int(30)));
    }
}
