//! Per-node annotation planning: cardinality and message-volume
//! estimates, batch-size hints, and SIP-key partition inference.
//!
//! Cardinality runs a bounded fixpoint over the rule/goal graph using the
//! EDB statistics (`DbStats` row/distinct counts) and the inferred column
//! sorts as domain caps: EDB leaves count their filtered rows exactly,
//! rule nodes take a System-R style equijoin estimate over their subgoal
//! relations, goal nodes sum their rules. Estimates are heuristics — they
//! steer batch sizing and hot-link warnings, never correctness.
//!
//! Partition inference answers the ROADMAP item 1 question: *if every
//! temporary relation were hash-partitioned across K shards, which key
//! would route both its requests and its answers to the right shard?*
//!
//! * A node with `d`-class transmitted columns partitions on them —
//!   tuple requests already arrive keyed by exactly those columns.
//! * Otherwise its consuming join stages vote. A stage's candidate
//!   columns carry variables the rule joins on (shared with another
//!   subgoal or bound by the head), forwards through a SIP edge, or
//!   must route to satisfy the consumer's own inherited key. Keys
//!   propagate top-down from the root, so a pass-through rule under the
//!   gather point constrains nothing.
//! * A multi-subgoal stage with no candidate columns is a cross product:
//!   its input cannot be co-partitioned at all and votes ∅.
//! * The key is the intersection of all votes; ∅ means no single key
//!   serves every link — MP405, broadcast required. No votes at all
//!   means free choice: hash on the whole transmitted tuple.

use crate::sorts::SortAnalysis;
use mp_datalog::{Database, DbStats, Predicate, Term, Var};
use mp_rulegoal::sip::bound_head_vars;
use mp_rulegoal::{ArcKind, ArgClass, GoalKind, LabelArg, Node, NodeId, RuleGoalGraph};
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// Cardinality estimates saturate here; beyond it the numbers carry no
/// information and only risk float noise in golden files.
const CARD_CEILING: f64 = 1e15;

/// Column width to assume when a sort has widened and no EDB statistic
/// applies (an unknown-but-large domain).
const UNKNOWN_WIDTH: f64 = 1024.0;

/// Rounds of the cardinality fixpoint. Estimates are monotone and
/// saturate at `CARD_CEILING`; a fixed bound keeps the pass linear.
const CARD_ROUNDS: usize = 16;

/// How one temporary relation would be placed across K shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionKey {
    /// Hash-partition on these transmitted-space columns.
    Key(Vec<usize>),
    /// The root goal: answers gather at the engine, no partitioning.
    Gather,
    /// At most one tuple (no variable transmitted columns): replicate
    /// freely, partitioning is moot.
    Singleton,
    /// No key is consistent with every producing/consuming link; the
    /// relation would have to be broadcast to all shards (MP405).
    Broadcast,
}

impl PartitionKey {
    /// Shard fan-out this verdict permits at `--shards K`: `Key`
    /// relations spread over all `shards`; `Gather`, `Singleton`, and
    /// `Broadcast` relations stay single-instance.
    pub fn fan_out(&self, shards: usize) -> usize {
        match self {
            PartitionKey::Key(_) => shards.max(1),
            _ => 1,
        }
    }

    /// Compact human form: `key[1]`, `gather`, `singleton`, `broadcast`.
    pub fn render(&self) -> String {
        match self {
            PartitionKey::Key(cols) => {
                let cols: Vec<String> = cols.iter().map(usize::to_string).collect();
                format!("key[{}]", cols.join(","))
            }
            PartitionKey::Gather => "gather".to_string(),
            PartitionKey::Singleton => "singleton".to_string(),
            PartitionKey::Broadcast => "broadcast".to_string(),
        }
    }
}

/// The full annotation for one rule/goal-graph node.
#[derive(Clone, Debug)]
pub struct NodeAnnotation {
    /// The node id in the *unpruned* graph.
    pub id: NodeId,
    /// Node kind: `goal`, `rule`, `edb`, or `cycle-ref`.
    pub kind: &'static str,
    /// [`Node::describe`] output, captured so reports need no graph.
    pub desc: String,
    /// Estimated rows of the node's answer relation (transmitted space).
    pub card: f64,
    /// Estimated answer tuples sent: `card × customer links`.
    pub volume: f64,
    /// Suggested `--batch-size` for this node's output links.
    pub batch_hint: u32,
    /// Inferred shard placement for the node's temporary relation.
    pub partition: PartitionKey,
    /// Stratum of the node's predicate under the stratification plan
    /// (0 for every node of a flat program).
    pub stratum: usize,
    /// True when every tuple request this node receives already carries
    /// its full partition key (a goal-kind node whose `Key` columns are
    /// its label's non-empty `d` columns) and the node is free to
    /// replicate — it is not the leader of a nontrivial SCC. Only such
    /// nodes are actually instantiated K ways; see [`shard_fan_outs`].
    pub request_keyed: bool,
    /// True when analysis pruning removes this node.
    pub pruned: bool,
}

impl NodeAnnotation {
    /// How many instances this node gets at `--shards K`: `K` for
    /// request-keyed `Key` relations, 1 for everything else (`Gather`,
    /// `Singleton`, `Broadcast`, rule nodes, SCC leaders).
    pub fn fan_out(&self, shards: usize) -> usize {
        if self.request_keyed {
            self.partition.fan_out(shards)
        } else {
            1
        }
    }
}

/// A batch-size suggestion from an estimated link volume: one flush per
/// ~64 tuples, rounded to a power of two, clamped to the data plane's
/// sensible range.
fn batch_hint(volume: f64) -> u32 {
    let v = volume.clamp(0.0, CARD_CEILING) as u64;
    ((v / 64).max(1).next_power_of_two() as u32).min(1024)
}

/// Width of one (predicate, column) domain: exact sort size when known,
/// else the EDB distinct count, else "unknown but large".
fn col_width(sorts: &SortAnalysis, stats: &DbStats, pred: &Predicate, col: usize) -> f64 {
    if let Some(cols) = sorts.of(pred) {
        if let Some(sz) = cols.get(col).and_then(crate::sorts::SortSet::size) {
            return (sz as f64).max(1.0);
        }
    }
    if let Some(rs) = stats.relation(pred) {
        if let Some(&d) = rs.distinct.get(col) {
            return (d as f64).max(1.0);
        }
    }
    UNKNOWN_WIDTH
}

/// Exact row count of an EDB leaf after applying the label's constants
/// and repeated-variable equalities (the node's standing selection).
fn edb_filtered_rows(db: &Database, atom: &mp_datalog::Atom) -> f64 {
    let Some(rel) = db.relation(&atom.pred) else {
        return 0.0;
    };
    let n = rel
        .iter()
        .filter(|t| {
            let mut bound: Vec<(&Var, mp_storage::Value)> = Vec::new();
            for (i, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(v) => {
                        if t[i] != *v {
                            return false;
                        }
                    }
                    Term::Var(v) => match bound.iter().find(|(w, _)| *w == v) {
                        Some((_, prev)) => {
                            if t[i] != *prev {
                                return false;
                            }
                        }
                        None => bound.push((v, t[i])),
                    },
                }
            }
            true
        })
        .count();
    n as f64
}

/// Domain cap for a goal-label node: the product of its variable
/// transmitted columns' widths (constants contribute 1).
fn domain_cap(sorts: &SortAnalysis, stats: &DbStats, label: &mp_rulegoal::GoalLabel) -> f64 {
    let adorn = label.adornment();
    let mut cap = 1.0f64;
    for &p in &adorn.transmitted_positions() {
        if matches!(label.args[p], LabelArg::Var { .. }) {
            cap = (cap * col_width(sorts, stats, &label.pred, p)).min(CARD_CEILING);
        }
    }
    cap
}

/// The rule node's subgoal nodes in SIP order, paired with their original
/// body indices: the builder pushes tree feeders in plan order, so the
/// k-th tree feeder is subgoal `plan.order[k]`.
fn rule_stages(graph: &RuleGoalGraph, rule_id: NodeId) -> Vec<(NodeId, usize)> {
    let Node::Rule { plan, .. } = graph.node(rule_id) else {
        return Vec::new();
    };
    graph
        .feeders(rule_id)
        .iter()
        .filter(|&&(_, k)| k == ArcKind::Tree)
        .map(|&(f, _)| f)
        .zip(plan.order.iter().copied())
        .collect()
}

/// Run the bounded cardinality fixpoint. `dead[id]` marks abstractly-dead
/// rule nodes whose estimate is pinned at zero.
pub fn estimate_cards(
    graph: &RuleGoalGraph,
    db: &Database,
    stats: &DbStats,
    sorts: &SortAnalysis,
    dead: &[bool],
) -> Vec<f64> {
    let n = graph.len();
    let mut base = vec![0.0f64; n];
    let mut caps = vec![CARD_CEILING; n];
    for (id, node) in graph.nodes() {
        match node {
            Node::Goal { atom, kind, label } => {
                if *kind == GoalKind::Edb {
                    base[id] = edb_filtered_rows(db, atom);
                }
                caps[id] = domain_cap(sorts, stats, label);
            }
            Node::Rule { head_label, .. } => {
                caps[id] = domain_cap(sorts, stats, head_label);
            }
        }
    }

    let mut card = vec![0.0f64; n];
    for _ in 0..CARD_ROUNDS {
        for id in 0..n {
            card[id] = match graph.node(id) {
                Node::Goal { kind, .. } => match kind {
                    GoalKind::Edb => base[id].min(caps[id]),
                    GoalKind::CycleRef { ancestor } => card[*ancestor],
                    GoalKind::Idb => {
                        let sum: f64 = graph
                            .feeders(id)
                            .iter()
                            .filter(|&&(_, k)| k == ArcKind::Tree)
                            .map(|&(f, _)| card[f])
                            .sum();
                        sum.min(caps[id])
                    }
                },
                Node::Rule { .. } if dead[id] => 0.0,
                Node::Rule { rule, .. } => {
                    // System-R style: multiply the subgoal relation sizes,
                    // divide by a column width per repeated join-variable
                    // occurrence (equijoin selectivity under uniformity).
                    let mut est = 1.0f64;
                    let mut seen: BTreeSet<&Var> = BTreeSet::new();
                    for (f, j) in rule_stages(graph, id) {
                        est = (est * card[f]).min(CARD_CEILING);
                        let atom = &rule.body[j];
                        for (i, term) in atom.terms.iter().enumerate() {
                            if let Term::Var(v) = term {
                                if !seen.insert(v) {
                                    est /= col_width(sorts, stats, &atom.pred, i).max(1.0);
                                }
                            }
                        }
                    }
                    est.min(caps[id])
                }
            };
        }
    }
    card
}

/// One consuming stage's vote on a node's partition columns (in the
/// node's transmitted space):
///
/// * `None` — indifferent (pass-through into an unkeyed consumer);
/// * `Some(∅)` — a cross product: no co-partitioning can serve it;
/// * `Some(cols)` — any key within `cols` routes this stage's join.
fn stage_vote(
    graph: &RuleGoalGraph,
    rule_id: NodeId,
    feeder_id: NodeId,
    sg_index: usize,
    computed: &[Option<PartitionKey>],
    constrained: &[bool],
) -> Option<BTreeSet<usize>> {
    let Node::Rule {
        rule,
        plan,
        head_label,
        ..
    } = graph.node(rule_id)
    else {
        return None;
    };
    let sg_atom = rule.body.get(sg_index)?;

    // Variables this stage can route by: shared with another subgoal or
    // bound by the head (the rule node equijoins on them), or demanded
    // by a later subgoal through a SIP edge.
    let mut routed: BTreeSet<Var> = bound_head_vars(rule, &head_label.adornment());
    for (other, atom) in rule.body.iter().enumerate() {
        if other != sg_index {
            for v in atom.vars() {
                if sg_atom.vars().contains(&v) {
                    routed.insert(v);
                }
            }
        }
    }
    for e in &plan.edges {
        if e.from == mp_rulegoal::SipSource::Subgoal(sg_index) {
            routed.insert(e.var.clone());
        }
    }

    // Inherited demand: if the rule's own output is keyed (its parent
    // goal has a Key), the head variables under that key must route here
    // too, so the rule's shards produce tuples they own. A free-choice
    // key (nobody actually constrains the parent) imposes nothing.
    let parent = graph
        .customers(rule_id)
        .iter()
        .find(|&&(_, k)| k == ArcKind::Tree)
        .map(|&(c, _)| c)
        .filter(|&p| constrained[p]);
    let mut inherited_constraint = false;
    if let Some(Some(PartitionKey::Key(head_cols))) = parent.map(|p| computed[p].clone()) {
        inherited_constraint = true;
        let head_trans = head_label.adornment().transmitted_positions();
        for &hc in &head_cols {
            if let Some(&orig) = head_trans.get(hc) {
                if let Some(Term::Var(v)) = rule.head.terms.get(orig) {
                    routed.insert(v.clone());
                }
            }
        }
    }

    // Map routed variables onto the node's transmitted-space columns.
    let Node::Goal { label, .. } = graph.node(feeder_id) else {
        return None;
    };
    let trans = label.adornment().transmitted_positions();
    let mut cols = BTreeSet::new();
    for (ti, &orig) in trans.iter().enumerate() {
        if let Some(Term::Var(v)) = sg_atom.terms.get(orig) {
            if routed.contains(v) {
                cols.insert(ti);
            }
        }
    }
    if cols.is_empty() {
        if rule.body.len() > 1 || inherited_constraint {
            // A multi-subgoal stage that joins on nothing is a cross
            // product; an inherited key this subgoal cannot carry means
            // its tuples land on shards that do not own the output.
            Some(BTreeSet::new())
        } else {
            // Single-subgoal pass-through under an unkeyed consumer.
            None
        }
    } else {
        Some(cols)
    }
}

/// Infer partition keys for every node. Goal-kind nodes are processed
/// top-down (customers before feeders) so inherited keys propagate from
/// the root's gather point; rule nodes share their parent goal's key.
pub fn partition_keys(graph: &RuleGoalGraph) -> Vec<PartitionKey> {
    let n = graph.len();
    let mut computed: Vec<Option<PartitionKey>> = vec![None; n];
    // Whether a node's placement was genuinely forced (d-columns or a
    // consumer vote) as opposed to a free-choice default; only forced
    // keys impose inherited demand on feeders.
    let mut constrained = vec![true; n];

    // BFS from the root over feeder arcs: a goal node's consuming rules
    // (and their parent goals) are visited before the node itself. Cycle
    // refs may look "up" at an ancestor not yet finalized; their stage
    // votes simply skip the inherited part then.
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([graph.root()]);
    seen[graph.root()] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &(f, _) in graph.feeders(v) {
            if !seen[f] {
                seen[f] = true;
                queue.push_back(f);
            }
        }
    }
    // Unreachable nodes (none today, pruning keeps reachable sets) still
    // get a placement so the annotation table is total.
    order.extend((0..n).filter(|&id| !seen[id]));

    for &id in &order {
        let node = graph.node(id);
        if node.is_rule() {
            let parent = graph
                .customers(id)
                .iter()
                .find(|&&(_, k)| k == ArcKind::Tree)
                .map(|&(c, _)| c);
            if let Some(p) = parent {
                constrained[id] = constrained[p];
            }
            computed[id] = Some(match parent.and_then(|p| computed[p].clone()) {
                Some(k) => k,
                None => PartitionKey::Singleton,
            });
            continue;
        }
        let Node::Goal { label, .. } = node else {
            unreachable!()
        };
        let adorn = label.adornment();
        let trans = adorn.transmitted_positions();
        let var_cols: Vec<usize> = trans
            .iter()
            .enumerate()
            .filter(|&(_, &p)| matches!(label.args[p], LabelArg::Var { .. }))
            .map(|(ti, _)| ti)
            .collect();
        if var_cols.is_empty() {
            computed[id] = Some(PartitionKey::Singleton);
            continue;
        }
        if id == graph.root() {
            computed[id] = Some(PartitionKey::Gather);
            continue;
        }
        // Tuple requests arrive keyed by the `d` columns; partitioning on
        // them co-locates each request with the answers it selects.
        let d_cols: Vec<usize> = trans
            .iter()
            .enumerate()
            .filter(|&(_, &p)| adorn.class(p) == ArgClass::D)
            .map(|(ti, _)| ti)
            .collect();
        if !d_cols.is_empty() {
            computed[id] = Some(PartitionKey::Key(d_cols));
            continue;
        }

        // Consumer stages: the tree-customer rule, plus — for cycle
        // ancestors — each cycle ref's customer rule (the ref relays this
        // node's answers into that join).
        let mut stages: Vec<(NodeId, NodeId)> = Vec::new();
        for &(c, kind) in graph.customers(id) {
            match kind {
                ArcKind::Tree => {
                    if graph.node(c).is_rule() {
                        stages.push((c, id));
                    }
                }
                ArcKind::Cycle => {
                    for &(c2, k2) in graph.customers(c) {
                        if k2 == ArcKind::Tree && graph.node(c2).is_rule() {
                            stages.push((c2, c));
                        }
                    }
                }
            }
        }
        let mut key: Option<BTreeSet<usize>> = None;
        for (rule_id, feeder_id) in stages {
            let Some(sg_index) = rule_stages(graph, rule_id)
                .into_iter()
                .find(|&(f, _)| f == feeder_id)
                .map(|(_, j)| j)
            else {
                continue;
            };
            let Some(vote) =
                stage_vote(graph, rule_id, feeder_id, sg_index, &computed, &constrained)
            else {
                continue;
            };
            key = Some(match key {
                None => vote,
                Some(prev) => prev.intersection(&vote).copied().collect(),
            });
        }
        computed[id] = Some(match key {
            Some(cols) if !cols.is_empty() => PartitionKey::Key(cols.into_iter().collect()),
            // Constraining votes exist but agree on nothing: broadcast.
            Some(_) => PartitionKey::Broadcast,
            // Nobody constrains this relation: free choice, shard on the
            // whole transmitted tuple.
            None => {
                constrained[id] = false;
                PartitionKey::Key(var_cols)
            }
        });
    }

    computed
        .into_iter()
        .map(|k| k.expect("every node was assigned a placement"))
        .collect()
}

/// Whether node `id` is request-keyed (shardable): a goal-kind node
/// whose `Key` verdict is its label's non-empty `d` columns — so every
/// tuple request already carries the full partition key and the router
/// can pick the owning shard without coordination — and not the leader
/// of a nontrivial SCC. The exclusions are load-bearing:
///
/// * **Rule nodes never shard.** A rule's `requested[level]` dedup is
///   per instance; two seed bindings landing on different shards can
///   project to the *same* subgoal request, which would then be issued
///   twice — inflating the logical tuple-request/answer counters that
///   sharding must preserve bit-identically. The rule body stays
///   colocated with its dedup tables; its head answers hash-route up.
/// * **SCC leaders never shard.** Only the leader concludes the probe
///   wave and ends the component's cross streams; a replicated exit's
///   sibling instances would never `End` their customers.
/// * **Free-choice keys (no `d` columns) never shard.** Their requests
///   carry no key values, so routing would have to broadcast.
fn is_request_keyed(graph: &RuleGoalGraph, id: NodeId, partition: &PartitionKey) -> bool {
    let Node::Goal { label, .. } = graph.node(id) else {
        return false;
    };
    if !matches!(partition, PartitionKey::Key(_)) {
        return false;
    }
    let adorn = label.adornment();
    let has_d = adorn
        .transmitted_positions()
        .iter()
        .any(|&p| adorn.class(p) == ArgClass::D);
    if !has_d {
        return false;
    }
    let scc = graph.scc();
    !(scc.in_nontrivial(id) && scc.leader_of(scc.component_of(id)) == Some(id))
}

/// Per-node shard fan-out for `--shards K`: `K` for request-keyed nodes
/// (see [`NodeAnnotation::request_keyed`]), 1 for everything else. This
/// is the vector the compiler's `ShardPlan` consumes.
pub fn shard_fan_outs(
    graph: &RuleGoalGraph,
    partition: &[PartitionKey],
    shards: usize,
) -> Vec<usize> {
    (0..graph.len())
        .map(|id| {
            if shards > 1 && is_request_keyed(graph, id, &partition[id]) {
                shards
            } else {
                1
            }
        })
        .collect()
}

/// Node kind as a stable lowercase string for reports.
pub fn kind_str(node: &Node) -> &'static str {
    match node {
        Node::Rule { .. } => "rule",
        Node::Goal { kind, .. } => match kind {
            GoalKind::Idb => "goal",
            GoalKind::Edb => "edb",
            GoalKind::CycleRef { .. } => "cycle-ref",
        },
    }
}

/// Assemble the per-node annotations: cardinalities, volumes, batch
/// hints, and partition keys.
pub fn annotate(
    graph: &RuleGoalGraph,
    db: &Database,
    stats: &DbStats,
    sorts: &SortAnalysis,
    dead: &[bool],
    keep: &[bool],
    strata: &crate::stratify::StratumPlan,
) -> Vec<NodeAnnotation> {
    let card = estimate_cards(graph, db, stats, sorts, dead);
    let partitions = partition_keys(graph);
    graph
        .nodes()
        .map(|(id, node)| {
            let pruned = !keep[id];
            let c = if pruned { 0.0 } else { card[id] };
            let volume = c * graph.customers(id).len() as f64;
            let pred = match node {
                Node::Rule { rule, .. } => &rule.head.pred,
                Node::Goal { atom, .. } => &atom.pred,
            };
            NodeAnnotation {
                id,
                kind: kind_str(node),
                desc: node.describe(),
                card: c,
                volume,
                batch_hint: batch_hint(volume),
                request_keyed: is_request_keyed(graph, id, &partitions[id]),
                partition: partitions[id].clone(),
                stratum: strata.stratum(pred),
                pruned,
            }
        })
        .collect()
}
