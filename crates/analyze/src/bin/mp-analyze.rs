//! `mp-analyze` — abstract-interpretation analysis of Datalog programs.
//!
//! ```text
//! mp-analyze [OPTIONS] [FILE...]  analyze .dl programs (facts + rules +
//!                                 ?- query); reads stdin when no FILE
//!
//!   --json                        emit one JSON object per input file
//!                                 (annotation plan + MP4xx diagnostics,
//!                                 sharing mp-lint's diagnostic schema)
//!   --sip <greedy|left-to-right|all-free|qual-tree|cost-based>
//!                                 SIP strategy for graph construction
//!   --widen-cap <N>               sort-lattice widening cap (default 256)
//!   --hot-link <N>                MP404 volume threshold (default 100000)
//! ```
//!
//! Exit status: 0 when the program analyzed cleanly, 1 when a deny-level
//! lint blocked analysis, 2 on usage or I/O errors. MP4xx findings are
//! warnings and do not affect the exit status.

use mp_analyze::{analyze, AnalyzeOptions};
use mp_datalog::parser::parse_program_with_spans;
use mp_datalog::Database;
use mp_lint::Diagnostic;
use mp_rulegoal::{RuleGoalGraph, SipKind};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    files: Vec<String>,
    json: bool,
    sip: SipKind,
    analyze: AnalyzeOptions,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        json: false,
        sip: SipKind::Greedy,
        analyze: AnalyzeOptions::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sip" => {
                let v = args.next().ok_or("--sip needs a value")?;
                opts.sip = SipKind::ALL
                    .into_iter()
                    .find(|s| s.name() == v)
                    .ok_or_else(|| format!("unknown sip strategy `{v}`"))?;
            }
            "--widen-cap" => {
                let v = args.next().ok_or("--widen-cap needs a value")?;
                opts.analyze.widen_cap = v
                    .parse()
                    .map_err(|_| format!("invalid --widen-cap `{v}`"))?;
            }
            "--hot-link" => {
                let v = args.next().ok_or("--hot-link needs a value")?;
                opts.analyze.hot_link_threshold =
                    v.parse().map_err(|_| format!("invalid --hot-link `{v}`"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => opts.files.push(other.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: mp-analyze [--json] [--sip STRATEGY] [--widen-cap N] [--hot-link N] [FILE...]\n\
         analyzes Datalog programs; reads stdin when no FILE is given"
    );
}

/// What analyzing one input produced.
enum Outcome {
    /// Full analysis: diagnostics plus the JSON report body.
    Analyzed(Box<mp_analyze::Analysis>, String),
    /// A deny-level lint blocked analysis; only diagnostics to show.
    Blocked(Vec<Diagnostic>),
}

fn analyze_source(name: &str, source: &str, opts: &Options) -> Result<Outcome, String> {
    let (program, spans) =
        parse_program_with_spans(source).map_err(|e| format!("parse error: {e}"))?;
    let mut db = Database::new();
    let _ = program.load_facts(&mut db);

    // The MP0xx gate runs first: analysis assumes a well-formed program.
    // Stratum inference (MP009/MP010) gates alongside the rule-local
    // lints — an unstratifiable program has no plan to report.
    let mut lints = mp_lint::program::lint_program(&program, Some(&db), Some(&spans));
    let (_, strat_diags) = mp_analyze::stratify(&program, Some(&spans));
    lints.extend(strat_diags);
    if lints.iter().any(Diagnostic::is_deny) {
        mp_lint::sort_diagnostics(&mut lints);
        return Ok(Outcome::Blocked(lints));
    }

    let graph = RuleGoalGraph::build(&program, &db, opts.sip)
        .map_err(|e| format!("rule/goal graph construction failed: {e}"))?;
    let analysis = analyze(&program, &db, &graph, Some(&spans), &opts.analyze);
    let json = analysis.to_json(name, opts.sip.name());
    Ok(Outcome::Analyzed(Box::new(analysis), json))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("mp-analyze: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let mut inputs: Vec<(String, String)> = Vec::new();
    if opts.files.is_empty() {
        let mut src = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut src) {
            eprintln!("mp-analyze: reading stdin: {e}");
            return ExitCode::from(2);
        }
        inputs.push(("<stdin>".to_string(), src));
    } else {
        for f in &opts.files {
            match std::fs::read_to_string(f) {
                Ok(src) => inputs.push((f.clone(), src)),
                Err(e) => {
                    eprintln!("mp-analyze: {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let mut blocked = 0usize;
    let mut json_objects: Vec<String> = Vec::new();
    for (name, source) in &inputs {
        match analyze_source(name, source, &opts) {
            Ok(Outcome::Analyzed(analysis, json)) => {
                if opts.json {
                    json_objects.push(json);
                } else {
                    for d in &analysis.diagnostics {
                        print!("{}", d.render(name, source));
                    }
                    println!("{name}:");
                    print!("{}", analysis.render_explain(1));
                }
            }
            Ok(Outcome::Blocked(lints)) => {
                blocked += 1;
                if opts.json {
                    // Keep the schema: an object with the diagnostics and
                    // an empty plan, so consumers can still key on "file".
                    let mut out = String::new();
                    out.push_str("{\n");
                    out.push_str(&format!("  \"file\": \"{name}\",\n"));
                    out.push_str("  \"blocked\": true,\n");
                    out.push_str("  \"plan\": [],\n");
                    out.push_str("  \"diagnostics\": [\n");
                    for (i, d) in lints.iter().enumerate() {
                        out.push_str("    ");
                        out.push_str(&d.to_json(name));
                        out.push_str(if i + 1 < lints.len() { ",\n" } else { "\n" });
                    }
                    out.push_str("  ]\n");
                    out.push('}');
                    json_objects.push(out);
                } else {
                    for d in &lints {
                        print!("{}", d.render(name, source));
                    }
                    eprintln!("mp-analyze: {name}: deny-level lint blocked analysis");
                }
            }
            Err(msg) => {
                eprintln!("mp-analyze: {name}: {msg}");
                blocked += 1;
            }
        }
    }

    if opts.json {
        println!("[");
        for (i, o) in json_objects.iter().enumerate() {
            // Indent each object's lines to sit inside the array.
            for (j, line) in o.lines().enumerate() {
                let last = j + 1 == o.lines().count();
                let comma = if last && i + 1 < json_objects.len() {
                    ","
                } else {
                    ""
                };
                println!("  {line}{comma}");
            }
        }
        println!("]");
    }
    if blocked > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
