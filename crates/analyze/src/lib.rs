#![warn(missing_docs)]

//! # mp-analyze
//!
//! Abstract-interpretation program analysis over the parsed program and
//! the adorned rule/goal graph. Three cooperating passes produce a
//! per-node **annotation plan**:
//!
//! * **Sort/type inference** ([`sorts`]): a constant-domain lattice
//!   seeded from the EDB, widened past a cap to value-type bits, and
//!   propagated to a least fixpoint through the rules. Because the
//!   fixpoint over-approximates the least model, an abstractly-empty rule
//!   body is *provably* dead — the soundness fact pruning rests on.
//!   Emits `MP401` (type-clash join), `MP402` (subgoal can never match),
//!   and `MP403` (rule can never fire).
//! * **Dead-rule and unreachable-goal elimination**: rule nodes with
//!   abstractly-empty bodies are removed, along with every node whose
//!   only path to the root ran through them (`MP406`). `Engine::compile`
//!   applies the pruning for real via [`RuleGoalGraph::retain`].
//! * **Cardinality & partition planning** ([`plan`]): relation-size and
//!   per-link message-volume estimates from EDB row/distinct/degree
//!   statistics (`MP404` hot links, batch-size hints), and SIP-key
//!   partition inference — the hash key each temporary relation would
//!   shard by under ROADMAP item 1's K-way evaluation, or `MP405` when
//!   no key is consistent with every link.
//!
//! Diagnostics share mp-lint's [`Diagnostic`] type, registry, and
//! `--json` schema; all MP4xx codes are warnings (analysis advises, the
//! deny gate stays with the MP0xx/MP1xx/MP2xx lints).

pub mod plan;
pub mod sorts;
pub mod stratify;

use mp_datalog::{Database, DbStats, Program, SourceMap};
use mp_lint::{Code, Diagnostic};
use mp_rulegoal::{Node, RuleGoalGraph};
use sorts::EmptyReason;

pub use plan::{shard_fan_outs, NodeAnnotation, PartitionKey};
pub use sorts::{SortAnalysis, SortSet};
pub use stratify::{stratify, uses_negation_or_aggregates, StratumPlan};

/// Tunables for the analysis passes.
#[derive(Clone, Debug)]
pub struct AnalyzeOptions {
    /// Column sorts larger than this widen to type bits.
    pub widen_cap: usize,
    /// Estimated answer tuples on one node's output links above which an
    /// MP404 hot-link warning fires.
    pub hot_link_threshold: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            widen_cap: sorts::DEFAULT_WIDEN_CAP,
            hot_link_threshold: 100_000.0,
        }
    }
}

/// The complete analysis result for one (program, EDB, graph) triple.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// One annotation per node of the *unpruned* graph.
    pub nodes: Vec<NodeAnnotation>,
    /// All MP4xx diagnostics, sorted by (code, location).
    pub diagnostics: Vec<Diagnostic>,
    /// Liveness mask over the unpruned graph (`false` = prune).
    pub keep: Vec<bool>,
    /// Total nodes the mask removes.
    pub pruned_nodes: usize,
    /// Rule nodes the mask removes.
    pub pruned_rules: usize,
    /// The sort-inference fixpoint (exposed for soundness tests).
    pub sorts: SortAnalysis,
    /// The stratification plan ([`stratify`]): predicate strata for the
    /// staged evaluation pipeline. Flat (single-stratum) for pure
    /// positive programs.
    pub strata: StratumPlan,
}

impl Analysis {
    /// Apply the liveness mask: the pruned graph, or `None` when nothing
    /// is dead (callers keep the original and skip the copy).
    pub fn pruned_graph(&self, graph: &RuleGoalGraph) -> Option<RuleGoalGraph> {
        if self.pruned_nodes == 0 {
            None
        } else {
            Some(graph.retain(&self.keep))
        }
    }

    /// Predicates that may hold at least one tuple in the least model
    /// (over-approximate): the soundness proptest checks this set covers
    /// everything the engine actually derives.
    pub fn live_predicates(&self) -> std::collections::BTreeSet<mp_datalog::Predicate> {
        self.sorts
            .sorts
            .iter()
            .filter(|(_, cols)| cols.is_empty() || cols.iter().any(|s| !s.is_empty()))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Human-readable annotated plan (the body of `mpq --explain`).
    /// `shards` is the requested `--shards K` (1 when unsharded); the
    /// `fan` column shows how many instances each node would get.
    pub fn render_explain(&self, shards: usize) -> String {
        let mut out = String::new();
        let (mut goals, mut rules, mut edbs, mut refs) = (0, 0, 0, 0);
        for a in &self.nodes {
            match a.kind {
                "goal" => goals += 1,
                "rule" => rules += 1,
                "edb" => edbs += 1,
                _ => refs += 1,
            }
        }
        out.push_str(&format!(
            "nodes {} (goals {goals}, rules {rules}, edb {edbs}, refs {refs}); \
             pruned {} node(s), {} rule(s); strata {}\n",
            self.nodes.len(),
            self.pruned_nodes,
            self.pruned_rules,
            self.strata.count().max(1)
        ));
        out.push_str(&format!(
            "{:<5} {:<9} {:>10} {:>10} {:>5}  {:<12} {:>3} {:>5}  node\n",
            "id", "kind", "card", "volume", "batch", "partition", "fan", "strat"
        ));
        for a in &self.nodes {
            out.push_str(&format!(
                "#{:<4} {:<9} {:>10} {:>10} {:>5}  {:<12} {:>3} {:>5}  {}{}\n",
                a.id,
                a.kind,
                fmt_card(a.card),
                fmt_card(a.volume),
                a.batch_hint,
                a.partition.render(),
                a.fan_out(shards),
                a.stratum,
                a.desc,
                if a.pruned { "  [pruned]" } else { "" }
            ));
        }
        out
    }

    /// One JSON object for this analysis (part of `mp-analyze --json`;
    /// hand-rolled like the rest of the workspace, stable key order).
    pub fn to_json(&self, filename: &str, sip: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(filename)));
        out.push_str(&format!("  \"sip\": \"{sip}\",\n"));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes.len()));
        out.push_str(&format!("  \"pruned_nodes\": {},\n", self.pruned_nodes));
        out.push_str(&format!("  \"pruned_rules\": {},\n", self.pruned_rules));
        out.push_str(&format!("  \"strata\": {},\n", self.strata.count().max(1)));
        out.push_str("  \"plan\": [\n");
        for (i, a) in self.nodes.iter().enumerate() {
            let key = match &a.partition {
                PartitionKey::Key(cols) => format!(
                    "[{}]",
                    cols.iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                _ => "null".to_string(),
            };
            let part = match &a.partition {
                PartitionKey::Key(_) => "key",
                PartitionKey::Gather => "gather",
                PartitionKey::Singleton => "singleton",
                PartitionKey::Broadcast => "broadcast",
            };
            out.push_str(&format!(
                "    {{\"id\": {}, \"kind\": \"{}\", \"desc\": \"{}\", \
                 \"card\": \"{}\", \"volume\": \"{}\", \"batch_hint\": {}, \
                 \"partition\": \"{}\", \"key\": {}, \"stratum\": {}, \"pruned\": {}}}{}\n",
                a.id,
                a.kind,
                json_escape(&a.desc),
                fmt_card(a.card),
                fmt_card(a.volume),
                a.batch_hint,
                part,
                key,
                a.stratum,
                a.pruned,
                if i + 1 < self.nodes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&d.to_json(filename));
            out.push_str(if i + 1 < self.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n");
        out.push('}');
        out
    }
}

/// Deterministic cardinality formatting for reports and golden files:
/// integers up to 10^15 print exactly, anything else in fixed scientific
/// notation.
fn fmt_card(x: f64) -> String {
    if x <= 0.0 {
        "0".to_string()
    } else if x.fract() == 0.0 && x < 1e15 {
        format!("{}", x as u64)
    } else {
        format!("{x:.3e}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn reason_diags(
    reason: &EmptyReason,
    rule: &mp_datalog::Rule,
    span: Option<mp_datalog::Span>,
    context: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match reason {
        EmptyReason::EmptyVar {
            var,
            type_clash: true,
        } => {
            out.push(
                Diagnostic::new(
                    Code::TypeClashJoin,
                    format!(
                        "join variable `{var}` has type-disjoint sorts in {context} `{rule}` \
                         (one occurrence only integers, another only symbols)"
                    ),
                )
                .with_span(span),
            );
        }
        EmptyReason::EmptyVar {
            var,
            type_clash: false,
        } => {
            // Value-disjoint but type-compatible: only the MP403 below.
            let _ = var;
        }
        EmptyReason::ConstMismatch { index, col, value } => {
            out.push(
                Diagnostic::new(
                    Code::EmptySubgoal,
                    format!(
                        "subgoal `{}` in {context} `{rule}` can never match: constant `{value}` \
                         is outside column {col}'s inferred value sort",
                        rule.body[*index]
                    ),
                )
                .with_span(span),
            );
        }
        EmptyReason::EmptyPredicate { index } => {
            out.push(
                Diagnostic::new(
                    Code::EmptySubgoal,
                    format!(
                        "subgoal `{}` in {context} `{rule}` can never match: relation `{}` is \
                         provably empty",
                        rule.body[*index], rule.body[*index].pred
                    ),
                )
                .with_span(span),
            );
        }
    }
    let cause = match reason {
        EmptyReason::EmptyVar { var, .. } => {
            format!("join variable `{var}` ranges over disjoint value sorts")
        }
        EmptyReason::ConstMismatch { index, .. } | EmptyReason::EmptyPredicate { index } => {
            format!("subgoal `{}` is provably empty", rule.body[*index])
        }
    };
    out.push(
        Diagnostic::new(
            Code::DeadRule,
            format!("{context} `{rule}` can never fire: {cause}"),
        )
        .with_span(span)
        .with_note(
            "the sort abstraction over-approximates the least model, so an abstractly-empty \
             body is truly empty; the rule is pruned when analysis pruning is enabled",
        ),
    );
    out
}

/// Run the full analysis: sort inference, program- and instance-level
/// dead-rule detection, liveness, cardinality/volume estimation, and
/// partition-key inference. `spans` (when parsing kept a source map)
/// attaches rule positions to program-level diagnostics.
pub fn analyze(
    program: &Program,
    db: &Database,
    graph: &RuleGoalGraph,
    spans: Option<&SourceMap>,
    opts: &AnalyzeOptions,
) -> Analysis {
    let sort_fix = SortAnalysis::infer(program, db, opts.widen_cap);
    let stats = DbStats::of(db);
    // Stratum inference. Unstratifiable programs are denied before graph
    // construction (Engine::compile, mp-analyze), so reaching this point
    // normally means no MP009/MP010; the diagnostics are merged anyway so
    // every caller sees one consistent report.
    let (strata, mut diagnostics) = stratify(program, spans);

    // Program-level pass: each source rule, in its own variable space.
    let mut program_dead = vec![false; program.rules.len()];
    for (i, rule) in program.rules.iter().enumerate() {
        if let Err(reason) = sort_fix.abstract_body(&rule.body) {
            program_dead[i] = true;
            let span = spans.and_then(|m| m.rule(i));
            diagnostics.extend(reason_diags(&reason, rule, span, "rule"));
        }
    }

    // Instance-level pass: rule nodes carry the goal's constants
    // substituted in, so an instance can be dead while its source rule is
    // live (e.g. `?- p(9, X)` against a sort without 9).
    let mut dead = vec![false; graph.len()];
    for (id, node) in graph.nodes() {
        let Node::Rule {
            rule, source_index, ..
        } = node
        else {
            continue;
        };
        if let Err(reason) = sort_fix.abstract_body(&rule.body) {
            dead[id] = true;
            if !program_dead[*source_index] {
                diagnostics.extend(reason_diags(
                    &reason,
                    rule,
                    spans.and_then(|m| m.rule(*source_index)),
                    &format!("rule instance (node #{id})"),
                ));
            }
        }
    }

    // Liveness: everything reachable from the root by feeder arcs without
    // entering a dead rule node. The root is always live.
    let mut keep = vec![false; graph.len()];
    keep[graph.root()] = true;
    let mut stack = vec![graph.root()];
    while let Some(n) = stack.pop() {
        for &(f, _) in graph.feeders(n) {
            if !dead[f] && !keep[f] {
                keep[f] = true;
                stack.push(f);
            }
        }
    }
    let pruned_nodes = keep.iter().filter(|&&k| !k).count();
    let pruned_rules = graph
        .nodes()
        .filter(|(id, n)| !keep[*id] && n.is_rule())
        .count();
    let collateral = pruned_nodes - pruned_rules;
    if collateral > 0 {
        diagnostics.push(Diagnostic::new(
            Code::PrunedUnreachable,
            format!(
                "{collateral} goal/EDB node(s) became unreachable after dead-rule \
                 elimination and are pruned from the rule/goal graph"
            ),
        ));
    }

    // Annotations over the full (unpruned) graph, so reports can show
    // what was cut and why.
    let nodes = plan::annotate(graph, db, &stats, &sort_fix, &dead, &keep, &strata);
    for a in &nodes {
        if a.pruned {
            continue;
        }
        if a.volume > opts.hot_link_threshold {
            diagnostics.push(
                Diagnostic::new(
                    Code::HotLink,
                    format!(
                        "hot link: node #{} ({}) is estimated to send ~{} answer tuples; \
                         consider --batch-size {} or larger",
                        a.id,
                        a.desc,
                        fmt_card(a.volume),
                        a.batch_hint
                    ),
                )
                .with_note("estimate from EDB row/distinct statistics; advisory only"),
            );
        }
        if a.partition == PartitionKey::Broadcast {
            diagnostics.push(
                Diagnostic::new(
                    Code::BroadcastRequired,
                    format!(
                        "node #{} ({}) has no hash-partition key consistent with all of its \
                         producing/consuming links; K-way sharding would broadcast this relation",
                        a.id, a.desc
                    ),
                )
                .with_note(
                    "no transmitted column is joined on or forwarded by every consumer \
                     (SIP-key partition inference, ROADMAP item 1)",
                ),
            );
        }
    }

    mp_lint::sort_diagnostics(&mut diagnostics);
    Analysis {
        nodes,
        diagnostics,
        keep,
        pruned_nodes,
        pruned_rules,
        sorts: sort_fix,
        strata,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_rulegoal::SipKind;
    use mp_storage::tuple;

    fn run(src: &str, facts: &[(&str, &[i64])]) -> (Analysis, RuleGoalGraph) {
        let program = parse_program(src).unwrap();
        let mut db = Database::new();
        program.load_facts(&mut db).unwrap();
        for &(p, row) in facts {
            match row.len() {
                1 => db.insert(p, tuple![row[0]]).unwrap(),
                2 => db.insert(p, tuple![row[0], row[1]]).unwrap(),
                _ => panic!("unsupported arity in test helper"),
            };
        }
        let graph = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        let a = analyze(&program, &db, &graph, None, &AnalyzeOptions::default());
        (a, graph)
    }

    #[test]
    fn clean_tc_has_no_dead_rules_and_keyed_partitions() {
        let (a, g) = run(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             ?- path(0, Z).",
            &[("edge", &[0, 1]), ("edge", &[1, 2])],
        );
        assert_eq!(a.pruned_nodes, 0);
        assert!(a
            .diagnostics
            .iter()
            .all(|d| d.code != Code::DeadRule && d.code != Code::TypeClashJoin));
        // Every temporary relation gets a concrete placement: a key, the
        // root gather point, or a singleton — no broadcasts on tc.
        for n in &a.nodes {
            assert_ne!(
                n.partition,
                PartitionKey::Broadcast,
                "node #{} {}",
                n.id,
                n.desc
            );
        }
        assert_eq!(a.nodes[g.root()].partition, PartitionKey::Gather);
        // The answer stream from the root is the query result: nonzero.
        assert!(a.nodes[g.root()].card > 0.0);
    }

    #[test]
    fn dead_rule_is_flagged_and_pruned() {
        let (a, g) = run(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- ghost(X, Z), path(Z, Y).
             ?- path(0, Z).",
            &[("edge", &[0, 1])],
        );
        assert!(a.diagnostics.iter().any(|d| d.code == Code::DeadRule));
        assert!(a.pruned_rules >= 1, "ghost rule must be pruned");
        assert!(a.pruned_nodes > a.pruned_rules, "subtree goes with it");
        let pruned = a.pruned_graph(&g).expect("something was pruned");
        assert_eq!(pruned.len(), g.len() - a.pruned_nodes);
        // The pruned graph still answers the query: root kept.
        assert!(pruned.node(pruned.root()).goal_label().is_some());
    }

    #[test]
    fn type_clash_join_is_mp401() {
        let (a, _) = run(
            "p(X) :- num(X, Y), sym(Y, Z).
             num(1, 2).
             sym(\"a\", \"b\").
             ?- p(X).",
            &[],
        );
        assert!(a.diagnostics.iter().any(|d| d.code == Code::TypeClashJoin));
        assert!(a.diagnostics.iter().any(|d| d.code == Code::DeadRule));
    }

    #[test]
    fn cross_product_requires_broadcast() {
        // p's two subgoals share no variable: no consumer joins the
        // e1 relation on any transmitted column.
        let (a, _) = run(
            "p(X, Y) :- e1(X), e2(Y).
             ?- p(X, Y).",
            &[("e1", &[1]), ("e2", &[2])],
        );
        assert!(
            a.diagnostics
                .iter()
                .any(|d| d.code == Code::BroadcastRequired),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn hot_link_threshold_fires_mp404() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             ?- path(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..40i64 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let graph = RuleGoalGraph::build(&program, &db, SipKind::Greedy).unwrap();
        let opts = AnalyzeOptions {
            hot_link_threshold: 5.0,
            ..AnalyzeOptions::default()
        };
        let a = analyze(&program, &db, &graph, None, &opts);
        assert!(a.diagnostics.iter().any(|d| d.code == Code::HotLink));
        // Hints scale with volume and stay in the data plane's range.
        assert!(a.nodes.iter().all(|n| (1..=1024).contains(&n.batch_hint)));
    }

    #[test]
    fn json_and_explain_are_deterministic() {
        let (a, _) = run(
            "path(X, Y) :- edge(X, Y).
             ?- path(0, Z).",
            &[("edge", &[0, 1])],
        );
        let j1 = a.to_json("t.dl", "greedy");
        let j2 = a.to_json("t.dl", "greedy");
        assert_eq!(j1, j2);
        assert!(j1.contains("\"plan\": ["), "{j1}");
        assert!(j1.contains("\"partition\""), "{j1}");
        let e = a.render_explain(1);
        assert!(e.contains("gather"), "{e}");
    }

    #[test]
    fn explain_fan_out_tracks_shards() {
        let (a, g) = run(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             ?- path(0, Z).",
            &[("edge", &[0, 1]), ("edge", &[1, 2])],
        );
        // At K=1 every node is single-instance.
        assert!(a.nodes.iter().all(|n| n.fan_out(1) == 1));
        // At K=4 some goal-kind node fans out; the root (Gather) and
        // every rule node stay single-instance.
        assert!(a.nodes.iter().any(|n| n.fan_out(4) == 4), "no fan-out");
        assert_eq!(a.nodes[g.root()].fan_out(4), 1);
        assert!(a
            .nodes
            .iter()
            .filter(|n| n.kind == "rule")
            .all(|n| n.fan_out(4) == 1));
        // The fan-out vector the compiler consumes agrees with the
        // per-node accessor.
        let parts: Vec<_> = a.nodes.iter().map(|n| n.partition.clone()).collect();
        let fo = shard_fan_outs(&g, &parts, 4);
        for n in &a.nodes {
            assert_eq!(fo[n.id], n.fan_out(4), "node #{}", n.id);
        }
    }
}
