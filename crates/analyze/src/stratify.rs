//! Stratification analysis (**mp-stratify**): stratum inference for
//! programs with negation and aggregation.
//!
//! Pure positive Datalog has a least fixpoint regardless of evaluation
//! order; `!` and `count/sum/min/max` break that monotonicity. The
//! standard repair is *stratification*: partition the IDB predicates into
//! strata such that
//!
//! * a positive dependency stays in the same stratum or looks down,
//! * a negated dependency looks **strictly** down (the negated relation
//!   is complete before it is complemented),
//! * an aggregate rule's body looks strictly down (the fold sees the full
//!   extension of its body).
//!
//! Evaluating strata in order then computes the *perfect model* — each
//! stratum is an ordinary monotone fixpoint over the (now EDB-like)
//! results of the strata below, which is exactly a pipeline of
//! message-passing engine runs sealed by the §3.2 quiescence barrier.
//!
//! This pass assigns strata by Kleene iteration of the max-formula
//! above and **denies** when no assignment exists:
//!
//! * `MP009 UnstratifiableNegation` — a negated subgoal's predicate is
//!   mutually recursive with the rule's head (negation on a cycle),
//! * `MP010 AggregateInRecursion` — an aggregate rule's body predicate is
//!   mutually recursive with its head (the fold feeds itself).
//!
//! The rule-local safety half (`MP011`/`MP012`) lives in
//! `mp_lint::program`; both report through the shared diagnostic schema.

use mp_datalog::analysis::DependencyAnalysis;
use mp_datalog::{Predicate, Program, SourceMap};
use mp_lint::{Code, Diagnostic};
use std::collections::BTreeMap;

/// The stratum assignment: a first-class analysis artifact surfaced in
/// `mp-analyze --json` and `mpq --explain`, and consumed by
/// `Engine::compile` to stage evaluation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StratumPlan {
    /// Stratum of every IDB predicate (rule heads). EDB predicates are
    /// implicitly stratum 0.
    pub stratum_of: BTreeMap<Predicate, usize>,
    /// Predicates grouped by stratum, name-ordered within each group.
    /// `strata.len()` is the number of strata (1 for a flat program).
    pub strata: Vec<Vec<Predicate>>,
}

impl StratumPlan {
    /// Stratum of a predicate (0 for EDB predicates).
    pub fn stratum(&self, p: &Predicate) -> usize {
        self.stratum_of.get(p).copied().unwrap_or(0)
    }

    /// Number of strata (0 only for the empty/denied plan).
    pub fn count(&self) -> usize {
        self.strata.len()
    }

    /// True when every predicate sits in stratum 0 — evaluation needs no
    /// staging and the engine runs exactly as it would without this pass.
    pub fn is_flat(&self) -> bool {
        self.count() <= 1
    }
}

/// True if the program uses negation or aggregation anywhere — the only
/// programs whose evaluation the stratum plan can change.
pub fn uses_negation_or_aggregates(program: &Program) -> bool {
    program
        .rules
        .iter()
        .any(|r| !r.neg.is_empty() || r.agg.is_some())
}

/// Infer the stratum plan, denying unstratifiable programs.
///
/// On a deny (`MP009`/`MP010`) the returned plan is empty — there is no
/// consistent assignment to report.
pub fn stratify(program: &Program, spans: Option<&SourceMap>) -> (StratumPlan, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let rule_span = |i: usize| spans.and_then(|m| m.rule(i));
    let deps = DependencyAnalysis::of(program);

    // Cycle checks via the SCC condensation: an edge that must look
    // strictly down cannot stay inside a strongly connected component.
    for (i, r) in program.rules.iter().enumerate() {
        for n in &r.neg {
            if deps.mutually_recursive(&r.head.pred, &n.pred) {
                diags.push(
                    Diagnostic::new(
                        Code::UnstratifiableNegation,
                        format!(
                            "negated subgoal `!{n}` in rule `{r}` closes a dependency \
                             cycle: `{}` depends on its own negation",
                            r.head.pred.name()
                        ),
                    )
                    .with_span(rule_span(i))
                    .with_note(
                        "no stratification exists — the perfect model is undefined; break \
                         the cycle (e.g. the win-move stratified fragment) or drop the negation",
                    ),
                );
            }
        }
        if r.agg.is_some() {
            for b in r.body.iter().chain(r.neg.iter()) {
                if deps.mutually_recursive(&r.head.pred, &b.pred) {
                    diags.push(
                        Diagnostic::new(
                            Code::AggregateInRecursion,
                            format!(
                                "aggregate rule `{r}` lies on a dependency cycle through \
                                 `{}`: the fold would consume its own output",
                                b.pred.name()
                            ),
                        )
                        .with_span(rule_span(i))
                        .with_note(
                            "an aggregate needs the full extension of its body; move the \
                             recursion into a lower predicate and aggregate its fixpoint",
                        ),
                    );
                }
            }
        }
    }
    if diags.iter().any(Diagnostic::is_deny) {
        return (StratumPlan::default(), diags);
    }

    // Kleene iteration of
    //   stratum(p) = max over rules r with head p, dependency q of r:
    //     positive q, r not aggregating  -> stratum(q)
    //     negated q, or r aggregating    -> stratum(q) + 1
    // with EDB predicates pinned at 0. The condensation is acyclic along
    // +1 edges (checked above), so this converges within |preds| rounds;
    // the bound below is a belt-and-braces guard, not a control path.
    let mut stratum: BTreeMap<Predicate, usize> = program
        .rules
        .iter()
        .map(|r| (r.head.pred.clone(), 0))
        .collect();
    let bound = stratum.len() + 2;
    for _ in 0..bound {
        let mut changed = false;
        for r in &program.rules {
            let lift = usize::from(r.agg.is_some());
            let mut need = 0usize;
            for b in &r.body {
                need = need.max(stratum.get(&b.pred).copied().unwrap_or(0) + lift);
            }
            for n in &r.neg {
                need = need.max(stratum.get(&n.pred).copied().unwrap_or(0) + 1);
            }
            let cur = stratum.entry(r.head.pred.clone()).or_insert(0);
            if need > *cur {
                *cur = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let max = stratum.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<Predicate>> = vec![Vec::new(); max + 1];
    for (p, &s) in &stratum {
        strata[s].push(p.clone());
    }
    // BTreeMap iteration already yields name order within each stratum.
    (
        StratumPlan {
            stratum_of: stratum,
            strata,
        },
        diags,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::{parse_program, parse_program_with_spans};

    fn plan(src: &str) -> StratumPlan {
        let (p, d) = stratify(&parse_program(src).unwrap(), None);
        assert!(d.iter().all(|d| !d.is_deny()), "{d:?}");
        p
    }

    fn denies(src: &str) -> Vec<Code> {
        let (_, d) = stratify(&parse_program(src).unwrap(), None);
        d.into_iter()
            .filter(|d| d.is_deny())
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn positive_program_is_flat() {
        let p = plan(
            "tc(X, Y) :- e(X, Y).
             tc(X, Z) :- tc(X, Y), e(Y, Z).
             ?- tc(1, X).",
        );
        assert!(p.is_flat());
        assert_eq!(p.stratum(&Predicate::new("tc")), 0);
        assert_eq!(p.stratum(&Predicate::new("goal")), 0);
        assert_eq!(p.stratum(&Predicate::new("e")), 0);
    }

    #[test]
    fn negation_lifts_a_stratum() {
        let p = plan(
            "moved(X) :- move(X, _Y).
             stuck(X) :- pos(X), !moved(X).
             ?- stuck(X).",
        );
        assert_eq!(p.stratum(&Predicate::new("moved")), 0);
        assert_eq!(p.stratum(&Predicate::new("stuck")), 1);
        assert_eq!(p.stratum(&Predicate::new("goal")), 1);
        assert_eq!(p.count(), 2);
    }

    #[test]
    fn win_move_fragment_has_three_strata() {
        let p = plan(
            "moved(X) :- move(X, _Y).
             lose(X) :- pos(X), !moved(X).
             win(X) :- move(X, Y), lose(Y).
             unresolved(X) :- pos(X), !win(X), !lose(X).
             ?- unresolved(X).",
        );
        assert_eq!(p.stratum(&Predicate::new("moved")), 0);
        assert_eq!(p.stratum(&Predicate::new("lose")), 1);
        assert_eq!(p.stratum(&Predicate::new("win")), 1);
        assert_eq!(p.stratum(&Predicate::new("unresolved")), 2);
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn aggregate_rule_lifts_over_its_body() {
        let p = plan(
            "reach(X, Y) :- e(X, Y).
             reach(X, Z) :- reach(X, Y), e(Y, Z).
             rcount(X, count<Y>) :- reach(X, Y).
             ?- rcount(X, C).",
        );
        assert_eq!(p.stratum(&Predicate::new("reach")), 0);
        assert_eq!(p.stratum(&Predicate::new("rcount")), 1);
        assert_eq!(p.stratum(&Predicate::new("goal")), 1);
    }

    #[test]
    fn win_move_is_denied_mp009() {
        let d = denies("win(X) :- move(X, Y), !win(Y). ?- win(1).");
        assert_eq!(d, vec![Code::UnstratifiableNegation]);
    }

    #[test]
    fn mutual_negation_is_denied_mp009() {
        let d = denies(
            "p(X) :- e(X), !q(X).
             q(X) :- e(X), !p(X).
             ?- p(1).",
        );
        assert!(d.iter().all(|c| *c == Code::UnstratifiableNegation));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn aggregate_in_recursion_is_denied_mp010() {
        let d = denies(
            "total(X, sum<S>) :- part(X, Y), total(Y, S).
             ?- total(1, S).",
        );
        assert!(d.contains(&Code::AggregateInRecursion));
    }

    #[test]
    fn denied_plan_is_empty() {
        let (p, d) = stratify(
            &parse_program("win(X) :- move(X, Y), !win(Y). ?- win(1).").unwrap(),
            None,
        );
        assert!(d.iter().any(Diagnostic::is_deny));
        assert_eq!(p, StratumPlan::default());
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn deny_spans_point_at_the_rule() {
        let src = "moved(X) :- move(X, _Y).\nwin(X) :- move(X, Y), !win(Y).\n?- win(1).\n";
        let (prog, map) = parse_program_with_spans(src).unwrap();
        let (_, d) = stratify(&prog, Some(&map));
        let deny = d.iter().find(|d| d.is_deny()).unwrap();
        assert_eq!(deny.span.map(|s| s.line), Some(2));
    }

    #[test]
    fn uses_negation_or_aggregates_detects_both() {
        let pos = parse_program("p(X) :- e(X). ?- p(X).").unwrap();
        assert!(!uses_negation_or_aggregates(&pos));
        let neg = parse_program("p(X) :- e(X), !q(X). ?- p(X).").unwrap();
        assert!(uses_negation_or_aggregates(&neg));
        let agg = parse_program("t(count<X>) :- e(X). ?- t(C).").unwrap();
        assert!(uses_negation_or_aggregates(&agg));
    }
}
