//! Golden tests for the `mp-analyze` CLI: its `--json` output over the
//! example programs and the deliberately defective fixtures in
//! `examples/analyze/` must match the committed annotation plans byte
//! for byte (the CI `analyze-golden` job runs the same comparison with
//! `diff`). Regenerate after an intentional analysis change with
//! `scripts/regen-analyze-golden.sh`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the workspace root")
        .to_path_buf()
}

/// Run `mp-analyze --json <file>` from the workspace root (golden files
/// embed the repo-relative path) and return stdout. Exit code 1 is the
/// documented "deny-level lint blocked analysis" status — the blocked
/// JSON report is still the golden contract for those fixtures — so
/// only code 2 (usage/I/O) and crashes fail the harness.
fn analyze_json(rel: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_mp-analyze"))
        .current_dir(workspace_root())
        .args(["--json", rel])
        .output()
        .expect("mp-analyze runs");
    assert!(
        matches!(out.status.code(), Some(0 | 1)),
        "mp-analyze --json {rel} failed ({:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("JSON output is UTF-8")
}

fn fixtures() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut dls: Vec<PathBuf> = ["examples/analyze", "examples/programs"]
        .iter()
        .flat_map(|dir| std::fs::read_dir(root.join(dir)).expect("fixture dir exists"))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dl"))
        .collect();
    dls.sort();
    assert!(
        dls.len() >= 7,
        "expected ≥7 fixture programs, found {}",
        dls.len()
    );
    dls
}

#[test]
fn json_output_matches_committed_golden_plans() {
    let root = workspace_root();
    for dl in fixtures() {
        let rel = dl
            .strip_prefix(&root)
            .expect("fixture under root")
            .to_str()
            .expect("UTF-8 path")
            .to_string();
        let name = dl.file_stem().unwrap().to_str().unwrap();
        let golden_path = root.join(format!("examples/analyze/golden/{name}.json"));
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{rel} has no committed golden plan at {}: {e}\n\
                 (run scripts/regen-analyze-golden.sh)",
                golden_path.display()
            )
        });
        let actual = analyze_json(&rel);
        assert_eq!(
            actual, golden,
            "{rel}: mp-analyze --json drifted from its committed golden plan \
             (if intentional, run scripts/regen-analyze-golden.sh and review the diff)"
        );
    }
}

/// The defective fixtures earn their keep: each one actually triggers
/// the MP4xx code it was written to demonstrate.
#[test]
fn defective_fixtures_trigger_their_codes() {
    for (name, code) in [
        ("type_clash", "MP401"),
        ("dead_rule", "MP403"),
        ("cross_product", "MP405"),
    ] {
        let json = analyze_json(&format!("examples/analyze/{name}.dl"));
        assert!(
            json.contains(&format!("\"code\": \"{code}\"")),
            "examples/analyze/{name}.dl no longer triggers {code}:\n{json}"
        );
    }
}

/// The deny fixtures are rejected, not planned: each triggers the
/// stratification/safety code it demonstrates, reports itself blocked
/// with an empty plan, and makes the CLI exit with status 1.
#[test]
fn deny_fixtures_are_blocked_with_their_codes() {
    for (name, codes) in [
        ("unstratifiable", &["MP009"][..]),
        ("unsafe-negation", &["MP011"][..]),
        ("aggregate-cycle", &["MP010", "MP012"][..]),
    ] {
        let rel = format!("examples/analyze/{name}.dl");
        let out = Command::new(env!("CARGO_BIN_EXE_mp-analyze"))
            .current_dir(workspace_root())
            .args(["--json", &rel])
            .output()
            .expect("mp-analyze runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{rel}: a deny fixture must exit 1"
        );
        let json = String::from_utf8(out.stdout).expect("JSON output is UTF-8");
        assert!(
            json.contains("\"blocked\": true") && json.contains("\"plan\": []"),
            "{rel}: expected a blocked report with an empty plan:\n{json}"
        );
        for code in codes {
            assert!(
                json.contains(&format!("\"code\": \"{code}\"")),
                "{rel} no longer triggers {code}:\n{json}"
            );
        }
    }
}
