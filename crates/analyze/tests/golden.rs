//! Golden tests for the `mp-analyze` CLI: its `--json` output over the
//! example programs and the deliberately defective fixtures in
//! `examples/analyze/` must match the committed annotation plans byte
//! for byte (the CI `analyze-golden` job runs the same comparison with
//! `diff`). Regenerate after an intentional analysis change with
//! `scripts/regen-analyze-golden.sh`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the workspace root")
        .to_path_buf()
}

/// Run `mp-analyze --json <file>` from the workspace root (golden files
/// embed the repo-relative path) and return stdout.
fn analyze_json(rel: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_mp-analyze"))
        .current_dir(workspace_root())
        .args(["--json", rel])
        .output()
        .expect("mp-analyze runs");
    assert!(
        out.status.success(),
        "mp-analyze --json {rel} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("JSON output is UTF-8")
}

fn fixtures() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut dls: Vec<PathBuf> = ["examples/analyze", "examples/programs"]
        .iter()
        .flat_map(|dir| std::fs::read_dir(root.join(dir)).expect("fixture dir exists"))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dl"))
        .collect();
    dls.sort();
    assert!(
        dls.len() >= 7,
        "expected ≥7 fixture programs, found {}",
        dls.len()
    );
    dls
}

#[test]
fn json_output_matches_committed_golden_plans() {
    let root = workspace_root();
    for dl in fixtures() {
        let rel = dl
            .strip_prefix(&root)
            .expect("fixture under root")
            .to_str()
            .expect("UTF-8 path")
            .to_string();
        let name = dl.file_stem().unwrap().to_str().unwrap();
        let golden_path = root.join(format!("examples/analyze/golden/{name}.json"));
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{rel} has no committed golden plan at {}: {e}\n\
                 (run scripts/regen-analyze-golden.sh)",
                golden_path.display()
            )
        });
        let actual = analyze_json(&rel);
        assert_eq!(
            actual, golden,
            "{rel}: mp-analyze --json drifted from its committed golden plan \
             (if intentional, run scripts/regen-analyze-golden.sh and review the diff)"
        );
    }
}

/// The defective fixtures earn their keep: each one actually triggers
/// the MP4xx code it was written to demonstrate.
#[test]
fn defective_fixtures_trigger_their_codes() {
    for (name, code) in [
        ("type_clash", "MP401"),
        ("dead_rule", "MP403"),
        ("cross_product", "MP405"),
    ] {
        let json = analyze_json(&format!("examples/analyze/{name}.dl"));
        assert!(
            json.contains(&format!("\"code\": \"{code}\"")),
            "examples/analyze/{name}.dl no longer triggers {code}:\n{json}"
        );
    }
}
