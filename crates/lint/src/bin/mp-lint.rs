//! `mp-lint` — statically verify Datalog programs before evaluation.
//!
//! ```text
//! mp-lint [OPTIONS] [FILE...]     lint .dl programs (facts + rules +
//!                                 ?- query); reads stdin when no FILE
//!
//!   --deny-warnings               treat warnings as errors (exit 1)
//!   --json                        emit diagnostics as a JSON array on
//!                                 stdout (one object per diagnostic)
//!   --no-graph                    skip graph/protocol passes (program
//!                                 lints only; also skips SIP planning)
//!   --sip <greedy|left-to-right|all-free|qual-tree|cost-based>
//!                                 strategy for the graph passes
//! ```
//!
//! Exit status: 0 when no deny-level diagnostic fired, 1 otherwise,
//! 2 on usage or I/O errors.

use mp_datalog::parser::parse_program_with_spans;
use mp_datalog::Database;
use mp_lint::protocol::ProtocolView;
use mp_lint::{Code, Diagnostic, Severity};
use mp_rulegoal::{RuleGoalGraph, SipKind};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    files: Vec<String>,
    deny_warnings: bool,
    json: bool,
    graph_passes: bool,
    sip: SipKind,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        deny_warnings: false,
        json: false,
        graph_passes: true,
        sip: SipKind::Greedy,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--json" => opts.json = true,
            "--no-graph" => opts.graph_passes = false,
            "--sip" => {
                let v = args.next().ok_or("--sip needs a value")?;
                opts.sip = SipKind::ALL
                    .into_iter()
                    .find(|s| s.name() == v)
                    .ok_or_else(|| format!("unknown sip strategy `{v}`"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => opts.files.push(other.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: mp-lint [--deny-warnings] [--json] [--no-graph] [--sip STRATEGY] [FILE...]\n\
         lints Datalog programs; reads stdin when no FILE is given"
    );
}

/// Lint one source text; returns the diagnostics found.
fn lint_source(source: &str, opts: &Options) -> Result<Vec<Diagnostic>, String> {
    let (program, spans) =
        parse_program_with_spans(source).map_err(|e| format!("parse error: {e}"))?;
    let mut db = Database::new();
    // Inline facts feed arity/overlap checks; a non-ground or conflicting
    // fact is reported by the lints themselves, so load errors are not fatal.
    let _ = program.load_facts(&mut db);

    let mut diags = mp_lint::program::lint_program(&program, Some(&db), Some(&spans));
    let fatal = diags.iter().any(Diagnostic::is_deny);
    if opts.graph_passes && !fatal {
        match RuleGoalGraph::build(&program, &db, opts.sip) {
            Ok(graph) => {
                diags.extend(mp_lint::graph::lint_graph(&graph));
                diags.extend(mp_lint::protocol::lint_protocol(&ProtocolView::of(&graph)));
                // MP106: deployment advice for this machine (graph size
                // vs hardware threads → the --workers pool knob).
                let parallelism = std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1);
                diags.extend(mp_lint::graph::lint_parallelism(graph.len(), parallelism));
            }
            Err(e) => {
                // Program lints passed but graph construction failed
                // (e.g. size limit): surface it as a diagnostic rather
                // than a crash.
                diags.push(Diagnostic::new(
                    Code::VariantClosure,
                    format!("rule/goal graph construction failed: {e}"),
                ));
            }
        }
    }
    mp_lint::sort_diagnostics(&mut diags);
    Ok(diags)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("mp-lint: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    // (filename, source) pairs; stdin when no files were named.
    let mut inputs: Vec<(String, String)> = Vec::new();
    if opts.files.is_empty() {
        let mut src = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut src) {
            eprintln!("mp-lint: reading stdin: {e}");
            return ExitCode::from(2);
        }
        inputs.push(("<stdin>".to_string(), src));
    } else {
        for f in &opts.files {
            match std::fs::read_to_string(f) {
                Ok(src) => inputs.push((f.clone(), src)),
                Err(e) => {
                    eprintln!("mp-lint: {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let mut denies = 0usize;
    let mut warns = 0usize;
    let mut json_objects: Vec<String> = Vec::new();
    for (name, source) in &inputs {
        match lint_source(source, &opts) {
            Ok(diags) => {
                for d in &diags {
                    if opts.json {
                        json_objects.push(d.to_json(name));
                    } else {
                        print!("{}", d.render(name, source));
                    }
                    match d.severity {
                        Severity::Deny => denies += 1,
                        Severity::Warn => warns += 1,
                    }
                }
            }
            Err(msg) => {
                eprintln!("mp-lint: {name}: {msg}");
                denies += 1;
            }
        }
    }

    if opts.json {
        println!("[");
        for (i, o) in json_objects.iter().enumerate() {
            println!(
                "  {}{}",
                o,
                if i + 1 < json_objects.len() { "," } else { "" }
            );
        }
        println!("]");
    }
    if denies + warns > 0 {
        eprintln!(
            "mp-lint: {denies} error(s), {warns} warning(s) in {} input(s)",
            inputs.len()
        );
    }
    if denies > 0 || (opts.deny_warnings && warns > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
