//! Protocol lints (`MP201`–`MP204`): the per-strong-component state the
//! §3.2 termination protocol depends on.
//!
//! Thm 3.1's correctness argument leans on structural facts: each
//! nontrivial strong component has a *unique* node with a customer
//! outside the component (the exit / BFST leader), and the leader's
//! breadth-first spanning tree spans the component with symmetric
//! parent/child links — probe waves travel leader → leaves over BFST
//! children and acknowledgements return over BFST parents. If any of
//! that is off, probes either miss members (premature `End`) or
//! deadlock (no termination). These lints re-derive the facts from the
//! adjacency and cross-check them against the recorded protocol state.
//!
//! Like the graph pass, real [`SccInfo`](mp_rulegoal::SccInfo) state is
//! correct by construction; [`ProtocolView`] is plain data so tests can
//! corrupt every field.

use crate::{Code, Diagnostic};
use mp_rulegoal::RuleGoalGraph;

/// Plain-data protocol state for one graph: full adjacency plus the
/// strong-component/leader/BFST tables the termination protocol uses.
#[derive(Clone, Debug, Default)]
pub struct ProtocolView {
    /// `out[n]` = customers of `n` (answer direction), cycle and tree
    /// arcs alike.
    pub out: Vec<Vec<usize>>,
    /// `comp_of[n]` = index of `n`'s strong component.
    pub comp_of: Vec<usize>,
    /// Members of each component.
    pub components: Vec<Vec<usize>>,
    /// Per component: recorded exit node / BFST leader (`None` for
    /// trivial components).
    pub leaders: Vec<Option<usize>>,
    /// Per node: BFST parent within its component.
    pub bfst_parent: Vec<Option<usize>>,
    /// Per node: BFST children within its component.
    pub bfst_children: Vec<Vec<usize>>,
}

impl ProtocolView {
    /// Extract the view from a compiled graph.
    pub fn of(graph: &RuleGoalGraph) -> ProtocolView {
        let scc = graph.scc();
        let n = graph.len();
        ProtocolView {
            out: (0..n)
                .map(|i| graph.customers(i).iter().map(|&(t, _)| t).collect())
                .collect(),
            comp_of: (0..n).map(|i| scc.component_of(i)).collect(),
            components: (0..scc.component_count())
                .map(|c| scc.members(c).to_vec())
                .collect(),
            leaders: (0..scc.component_count())
                .map(|c| scc.leader_of(c))
                .collect(),
            bfst_parent: (0..n).map(|i| scc.bfst_parent(i)).collect(),
            bfst_children: (0..n).map(|i| scc.bfst_children(i).to_vec()).collect(),
        }
    }
}

/// Lint the protocol state of every nontrivial strong component.
pub fn lint_protocol(view: &ProtocolView) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = view.out.len();

    for (ci, members) in view.components.iter().enumerate() {
        if members.len() <= 1 {
            continue;
        }
        let in_comp = |v: usize| v < n && view.comp_of.get(v) == Some(&ci);

        // MP201: re-derive the exit set from the adjacency.
        let exits: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&v| {
                view.out
                    .get(v)
                    .is_some_and(|cs| cs.iter().any(|&c| !in_comp(c)))
            })
            .collect();
        if exits.len() != 1 {
            diags.push(
                Diagnostic::new(
                    Code::ExitNodeCount,
                    format!(
                        "strong component {ci} ({} members) has {} exit nodes ({exits:?}), \
                         expected exactly one",
                        members.len(),
                        exits.len()
                    ),
                )
                .with_note(
                    "Thm 3.1 assumes a unique feeder: the graph is a DFS tree plus back \
                     edges, so answers leave a component through one node only",
                ),
            );
        }

        // MP204: recorded leader must exist, be a member, and be the exit.
        let leader = view.leaders.get(ci).copied().flatten();
        match leader {
            None => diags.push(
                Diagnostic::new(
                    Code::LeaderInconsistent,
                    format!("nontrivial strong component {ci} has no recorded leader"),
                )
                .with_note(
                    "§3.2: the unique feeder is designated BFST leader and runs the protocol",
                ),
            ),
            Some(l) => {
                if !members.contains(&l) {
                    diags.push(Diagnostic::new(
                        Code::LeaderInconsistent,
                        format!("leader {l} of strong component {ci} is not one of its members"),
                    ));
                } else if exits.len() == 1 && l != exits[0] {
                    diags.push(
                        Diagnostic::new(
                            Code::LeaderInconsistent,
                            format!(
                                "leader of strong component {ci} is {l}, but the exit node is {}",
                                exits[0]
                            ),
                        )
                        .with_note(
                            "the protocol's probe waves originate at the node that feeds \
                             answers out of the component; another leader would declare \
                             quiescence the exit cannot see",
                        ),
                    );
                }
            }
        }

        // MP202: parent/child symmetry inside the component.
        for &m in members {
            if Some(m) == leader {
                if view.bfst_parent.get(m).copied().flatten().is_some() {
                    diags.push(Diagnostic::new(
                        Code::BfstAsymmetry,
                        format!("leader {m} of strong component {ci} has a BFST parent"),
                    ));
                }
            } else {
                match view.bfst_parent.get(m).copied().flatten() {
                    Some(p)
                        if in_comp(p)
                            && !view.bfst_children.get(p).is_some_and(|cs| cs.contains(&m)) =>
                    {
                        diags.push(
                            Diagnostic::new(
                                Code::BfstAsymmetry,
                                format!(
                                    "node {m} records BFST parent {p}, but {p} does not \
                                     list {m} as a child"
                                ),
                            )
                            .with_note(
                                "probe waves go down children links and acks come back \
                                 up parent links; asymmetry loses a subtree's ack",
                            ),
                        );
                    }
                    Some(p) if in_comp(p) => {} // symmetric link: fine
                    Some(p) => diags.push(Diagnostic::new(
                        Code::BfstAsymmetry,
                        format!(
                            "node {m} records BFST parent {p}, which is outside strong \
                             component {ci}"
                        ),
                    )),
                    None => {} // missing parent ⇒ unreachable; MP203 reports it
                }
            }
            for &c in view.bfst_children.get(m).map_or(&[][..], |v| v) {
                if view.bfst_parent.get(c).copied().flatten() != Some(m) {
                    diags.push(Diagnostic::new(
                        Code::BfstAsymmetry,
                        format!(
                            "node {m} lists BFST child {c}, but {c}'s recorded parent is {:?}",
                            view.bfst_parent.get(c).copied().flatten()
                        ),
                    ));
                }
            }
        }

        // MP203: the BFST must span the component. Walk children links
        // from the leader, bounded to avoid cycles in corrupt views.
        if let Some(l) = leader {
            if members.contains(&l) {
                let mut seen = std::collections::BTreeSet::from([l]);
                let mut stack = vec![l];
                while let Some(u) = stack.pop() {
                    for &c in view.bfst_children.get(u).map_or(&[][..], |v| v) {
                        if in_comp(c) && seen.insert(c) {
                            stack.push(c);
                        }
                    }
                }
                let missed: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|m| !seen.contains(m))
                    .collect();
                if !missed.is_empty() {
                    diags.push(
                        Diagnostic::new(
                            Code::BfstCoverage,
                            format!(
                                "BFST of strong component {ci} does not reach members {missed:?}"
                            ),
                        )
                        .with_note(
                            "a node outside the spanning tree never receives probe waves, so \
                             its pending work cannot veto termination (Thm 3.1)",
                        ),
                    );
                }
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A correct two-member component: 1 ⇄ 2, with 1 the exit feeding
    /// node 0 outside.
    fn small_view() -> ProtocolView {
        ProtocolView {
            out: vec![vec![], vec![0, 2], vec![1]],
            comp_of: vec![0, 1, 1],
            components: vec![vec![0], vec![1, 2]],
            leaders: vec![None, Some(1)],
            bfst_parent: vec![None, None, Some(1)],
            bfst_children: vec![vec![], vec![2], vec![]],
        }
    }

    #[test]
    fn sound_view_is_clean() {
        assert!(lint_protocol(&small_view()).is_empty());
    }

    #[test]
    fn two_exits_fire_mp201() {
        let mut v = small_view();
        v.out[2].push(0); // second member also feeds outside
        let ds = lint_protocol(&v);
        assert!(ds.iter().any(|d| d.code == Code::ExitNodeCount), "{ds:?}");
    }

    #[test]
    fn no_exit_fires_mp201() {
        let mut v = small_view();
        v.out[1] = vec![2]; // component is now closed
        let ds = lint_protocol(&v);
        assert!(ds.iter().any(|d| d.code == Code::ExitNodeCount), "{ds:?}");
    }

    #[test]
    fn asymmetric_parent_fires_mp202() {
        let mut v = small_view();
        v.bfst_children[1].clear(); // parent link stays, child link gone
        let ds = lint_protocol(&v);
        assert!(ds.iter().any(|d| d.code == Code::BfstAsymmetry), "{ds:?}");
    }

    #[test]
    fn leader_with_parent_fires_mp202() {
        let mut v = small_view();
        v.bfst_parent[1] = Some(2);
        let ds = lint_protocol(&v);
        assert!(ds.iter().any(|d| d.code == Code::BfstAsymmetry), "{ds:?}");
    }

    #[test]
    fn uncovered_member_fires_mp203() {
        let mut v = small_view();
        v.bfst_children[1].clear();
        v.bfst_parent[2] = None; // node 2 fully detached from the BFST
        let ds = lint_protocol(&v);
        assert!(ds.iter().any(|d| d.code == Code::BfstCoverage), "{ds:?}");
    }

    #[test]
    fn missing_leader_fires_mp204() {
        let mut v = small_view();
        v.leaders[1] = None;
        let ds = lint_protocol(&v);
        assert!(
            ds.iter().any(|d| d.code == Code::LeaderInconsistent),
            "{ds:?}"
        );
    }

    #[test]
    fn wrong_leader_fires_mp204() {
        let mut v = small_view();
        v.leaders[1] = Some(2); // member, but not the exit
        v.bfst_parent = vec![None, Some(2), None];
        v.bfst_children = vec![vec![], vec![], vec![1]];
        let ds = lint_protocol(&v);
        assert!(
            ds.iter().any(|d| d.code == Code::LeaderInconsistent),
            "{ds:?}"
        );
    }

    #[test]
    fn non_member_leader_fires_mp204() {
        let mut v = small_view();
        v.leaders[1] = Some(0);
        let ds = lint_protocol(&v);
        assert!(
            ds.iter().any(|d| d.code == Code::LeaderInconsistent),
            "{ds:?}"
        );
    }
}
