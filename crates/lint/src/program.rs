//! Program lints (`MP001`–`MP012`): the §1 well-formedness conditions,
//! checked over the Datalog AST with per-clause spans.
//!
//! These subsume `Program::validate` — every condition `validate` rejects
//! maps to a deny-level code here — and add advisory lints (`MP006`
//! unreachable predicates, `MP007` singleton variables) that `validate`
//! has no channel for, plus the rule-local safety half of the
//! stratification story: `MP011` (negated subgoals must range over
//! positively-bound variables) and `MP012` (aggregate well-formedness).
//! The global half — stratum inference, `MP009`/`MP010` — needs the
//! dependency graph and lives in `mp-analyze`'s `stratify` pass.

use crate::{Code, Diagnostic};
use mp_datalog::analysis::DependencyAnalysis;
use mp_datalog::{Atom, Database, Program, SourceMap, GOAL};
use std::collections::BTreeMap;

/// Lint a program. `db` supplies externally-loaded EDB relations (arities
/// and EDB/IDB separation are checked against it when present); `spans`
/// attaches source positions to clause-level diagnostics when the program
/// came from [`mp_datalog::parse_program_with_spans`].
pub fn lint_program(
    program: &Program,
    db: Option<&Database>,
    spans: Option<&SourceMap>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let rule_span = |i: usize| spans.and_then(|m| m.rule(i));
    let fact_span = |i: usize| spans.and_then(|m| m.fact(i));

    // MP002: one arity per predicate, across rules, facts, and the EDB.
    // Report each conflicting predicate once, at its first conflicting use.
    let mut arities: BTreeMap<String, (usize, String)> = BTreeMap::new();
    if let Some(db) = db {
        for (p, r) in db.iter() {
            arities.insert(
                p.name().to_string(),
                (r.arity(), "the database".to_string()),
            );
        }
    }
    let mut reported = std::collections::BTreeSet::new();
    let mut check_arity = |a: &Atom, where_: String, span, diags: &mut Vec<Diagnostic>| {
        match arities.get(a.pred.name()) {
            Some(&(n, ref first)) if n != a.arity() => {
                if reported.insert(a.pred.name().to_string()) {
                    diags.push(
                        Diagnostic::new(
                            Code::ArityConflict,
                            format!(
                                "predicate `{}` used with arity {} in {}, but with arity {} in {}",
                                a.pred.name(),
                                a.arity(),
                                where_,
                                n,
                                first
                            ),
                        )
                        .with_span(span)
                        .with_note("every predicate must have a single arity across the program and the EDB"),
                    );
                }
            }
            Some(_) => {}
            None => {
                arities.insert(a.pred.name().to_string(), (a.arity(), where_));
            }
        }
    };

    let mut has_query = false;
    for (i, r) in program.rules.iter().enumerate() {
        let span = rule_span(i);
        check_arity(&r.head, format!("rule `{r}`"), span, &mut diags);
        for b in r.body.iter().chain(r.neg.iter()) {
            check_arity(b, format!("rule `{r}`"), span, &mut diags);
            // MP004: `goal` may not be a subgoal (of either polarity).
            if b.pred.name() == GOAL {
                diags.push(
                    Diagnostic::new(
                        Code::GoalInBody,
                        format!("the query predicate `{GOAL}` occurs in the body of `{r}`"),
                    )
                    .with_span(span)
                    .with_note(
                        "`goal` is the distinguished query head (§1); it cannot be a subgoal",
                    ),
                );
            }
        }
        if r.head.pred.name() == GOAL {
            has_query = true;
        }

        // MP001: range restriction / safety.
        if let Some(v) = r.unsafe_var() {
            diags.push(
                Diagnostic::new(
                    Code::UnsafeRule,
                    format!(
                        "rule `{r}` is unsafe: head variable `{}` does not occur in the body",
                        v.name()
                    ),
                )
                .with_span(span)
                .with_note(
                    "range restriction (§1): every head variable must be bound by a body subgoal",
                ),
            );
        }

        // MP003: a rule head that already has EDB facts.
        let inline_fact = program.facts.iter().any(|f| f.pred == r.head.pred);
        let in_db = db.is_some_and(|d| d.contains_pred(&r.head.pred));
        if inline_fact || in_db {
            diags.push(
                Diagnostic::new(
                    Code::EdbIdbOverlap,
                    format!(
                        "predicate `{}` has {} facts but is derived by rule `{r}`",
                        r.head.pred.name(),
                        if in_db { "database" } else { "asserted" },
                    ),
                )
                .with_span(span)
                .with_note(
                    "§1 requires EDB and IDB predicates to be disjoint; goal nodes assume \
                     a predicate is either stored or derived, never both",
                ),
            );
        }

        // MP011: safety of negation. Every variable in a negated subgoal
        // must be bound by a positive subgoal, and there must be at least
        // one positive subgoal for the negation to filter.
        let pos_vars: std::collections::BTreeSet<&str> = r
            .body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| t.as_var().map(|v| v.name()))
            .collect();
        if !r.neg.is_empty() && r.body.is_empty() {
            diags.push(
                Diagnostic::new(
                    Code::UnsafeNegation,
                    format!("rule `{r}` has negated subgoals but no positive subgoal"),
                )
                .with_span(span)
                .with_note(
                    "negation filters positive bindings; with no positive subgoal it would \
                     range over the infinite complement",
                ),
            );
        }
        for n in &r.neg {
            for v in n.vars() {
                if !pos_vars.contains(v.name()) {
                    diags.push(
                        Diagnostic::new(
                            Code::UnsafeNegation,
                            format!(
                                "negated subgoal `!{n}` in rule `{r}` uses variable `{}` \
                                 not bound by any positive subgoal",
                                v.name()
                            ),
                        )
                        .with_span(span)
                        .with_note(
                            "bind the variable positively, or project it away through a \
                             helper predicate before negating",
                        ),
                    );
                }
            }
        }

        // MP012: aggregate well-formedness.
        if let Some(agg) = &r.agg {
            if !pos_vars.contains(agg.var.name()) {
                diags.push(
                    Diagnostic::new(
                        Code::UnsafeAggregate,
                        format!(
                            "aggregate `{}<{}>` in rule `{r}` folds a variable not bound \
                             by any positive subgoal",
                            agg.func.name(),
                            agg.var.name()
                        ),
                    )
                    .with_span(span)
                    .with_note("the fold variable must range over positive body bindings"),
                );
            }
            let in_grouping = r
                .head
                .terms
                .iter()
                .enumerate()
                .any(|(pos, t)| pos != agg.position && t.as_var() == Some(&agg.var));
            if in_grouping {
                diags.push(
                    Diagnostic::new(
                        Code::UnsafeAggregate,
                        format!(
                            "aggregate variable `{}` in rule `{r}` also appears in the \
                             grouping key",
                            agg.var.name()
                        ),
                    )
                    .with_span(span)
                    .with_note(
                        "grouping by the fold variable makes every group a singleton; \
                         use a distinct variable",
                    ),
                );
            }
            if r.head.pred.name() == GOAL {
                diags.push(
                    Diagnostic::new(
                        Code::UnsafeAggregate,
                        format!("the query head in `{r}` carries an aggregate"),
                    )
                    .with_span(span)
                    .with_note(
                        "name the aggregate as its own predicate and query that: \
                         `total(D, sum<S>) :- ... .  ?- total(D, C).`",
                    ),
                );
            }
            if program
                .rules
                .iter()
                .filter(|o| o.head.pred == r.head.pred)
                .count()
                > 1
            {
                diags.push(
                    Diagnostic::new(
                        Code::UnsafeAggregate,
                        format!(
                            "aggregate predicate `{}` has more than one defining rule",
                            r.head.pred.name()
                        ),
                    )
                    .with_span(span)
                    .with_note(
                        "an aggregate folds the full extension of its one rule body; \
                         multiple rules would make the fold ambiguous",
                    ),
                );
            }
        }

        // MP007: singleton variables (underscore-prefixed are deliberate).
        let mut occurrences: BTreeMap<&str, usize> = BTreeMap::new();
        for t in r
            .head
            .terms
            .iter()
            .chain(r.body.iter().flat_map(|a| a.terms.iter()))
            .chain(r.neg.iter().flat_map(|a| a.terms.iter()))
        {
            if let Some(v) = t.as_var() {
                *occurrences.entry(v.name()).or_insert(0) += 1;
            }
        }
        for (name, n) in occurrences {
            if n == 1 && !name.starts_with('_') {
                diags.push(
                    Diagnostic::new(
                        Code::SingletonVariable,
                        format!("variable `{name}` occurs only once in rule `{r}`"),
                    )
                    .with_span(span)
                    .with_note(format!(
                        "possibly a typo; rename it `_{name}` if the single occurrence is intended"
                    )),
                );
            }
        }
    }

    for (i, f) in program.facts.iter().enumerate() {
        let span = fact_span(i);
        check_arity(f, format!("fact `{f}.`"), span, &mut diags);
        // MP008: facts must be ground.
        if !f.is_ground() {
            diags.push(
                Diagnostic::new(
                    Code::NonGroundFact,
                    format!("fact `{f}.` contains a variable"),
                )
                .with_span(span)
                .with_note("EDB relations hold ground tuples only (§1)"),
            );
        }
    }

    // MP005: no query at all.
    if !has_query {
        diags.push(
            Diagnostic::new(
                Code::NoQuery,
                format!("program has no `{GOAL}` rule — nothing to evaluate"),
            )
            .with_note("write a query clause such as `?- p(1, X).`"),
        );
    }

    // MP006: IDB predicates the query can never reach. Only meaningful
    // when a query exists (otherwise MP005 already fired).
    if has_query {
        let analysis = DependencyAnalysis::of(program);
        let relevant = analysis.relevant_to_goal();
        for (i, r) in program.rules.iter().enumerate() {
            if r.head.pred.name() == GOAL || relevant.contains(&r.head.pred) {
                continue;
            }
            // One report per predicate, at its first defining rule.
            if program.rules[..i]
                .iter()
                .any(|p| p.head.pred == r.head.pred)
            {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    Code::UnreachablePredicate,
                    format!(
                        "predicate `{}` is not reachable from the query and will never be evaluated",
                        r.head.pred.name()
                    ),
                )
                .with_span(rule_span(i))
                .with_note(
                    "top-down evaluation only expands goals reachable from `goal` (§1.1); \
                     dead rules are usually leftovers or typos",
                ),
            );
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use mp_datalog::parser::{parse_program, parse_program_with_spans};

    fn codes(src: &str) -> Vec<Code> {
        let program = parse_program(src).unwrap();
        let mut ds = lint_program(&program, None, None);
        crate::sort_diagnostics(&mut ds);
        ds.into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let src = "
            e(1, 2). e(2, 3).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            ?- tc(1, X).
        ";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn unsafe_rule_fires_mp001() {
        let src = "p(X, Y) :- e(X). e(1). ?- p(1, Z).";
        assert!(codes(src).contains(&Code::UnsafeRule));
    }

    #[test]
    fn arity_conflict_fires_mp002_once() {
        let src = "p(X) :- e(X, X), e(X). e(1, 2). ?- p(X).";
        let cs = codes(src);
        assert_eq!(cs.iter().filter(|c| **c == Code::ArityConflict).count(), 1);
    }

    #[test]
    fn arity_conflict_against_db() {
        let program = parse_program("p(X) :- e(X). ?- p(X).").unwrap();
        let mut db = Database::new();
        db.declare("e", 2).unwrap();
        let ds = lint_program(&program, Some(&db), None);
        assert!(ds.iter().any(|d| d.code == Code::ArityConflict));
    }

    #[test]
    fn idb_facts_fire_mp003() {
        let src = "p(1). p(X) :- e(X). e(2). ?- p(X).";
        assert!(codes(src).contains(&Code::EdbIdbOverlap));
    }

    #[test]
    fn db_relation_as_head_fires_mp003() {
        let program = parse_program("e(X) :- f(X). ?- e(X).").unwrap();
        let mut db = Database::new();
        db.declare("e", 1).unwrap();
        db.declare("f", 1).unwrap();
        let ds = lint_program(&program, Some(&db), None);
        assert!(ds.iter().any(|d| d.code == Code::EdbIdbOverlap));
    }

    #[test]
    fn goal_in_body_fires_mp004() {
        let src = "p(X) :- goal(X). e(1). ?- p(X).";
        assert!(codes(src).contains(&Code::GoalInBody));
    }

    #[test]
    fn missing_query_fires_mp005() {
        assert_eq!(codes("p(X) :- e(X). e(1)."), vec![Code::NoQuery]);
    }

    #[test]
    fn unreachable_predicate_warns_mp006() {
        let src = "
            p(X) :- e(X).
            dead(X) :- e(X).
            e(1).
            ?- p(X).
        ";
        let program = parse_program(src).unwrap();
        let ds = lint_program(&program, None, None);
        let d = ds
            .iter()
            .find(|d| d.code == Code::UnreachablePredicate)
            .unwrap();
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("`dead`"));
    }

    #[test]
    fn singleton_variable_warns_mp007_unless_underscored() {
        let src = "p(X) :- e(X, Y). p(X) :- f(X, _Skip). e(1, 2). f(1, 2). ?- p(X).";
        let program = parse_program(src).unwrap();
        let ds = lint_program(&program, None, None);
        let singles: Vec<_> = ds
            .iter()
            .filter(|d| d.code == Code::SingletonVariable)
            .collect();
        assert_eq!(singles.len(), 1, "{singles:?}");
        assert!(singles[0].message.contains("`Y`"));
    }

    #[test]
    fn non_ground_fact_fires_mp008() {
        let src = "e(1, X). p(Y) :- e(1, Y). ?- p(Z).";
        assert!(codes(src).contains(&Code::NonGroundFact));
    }

    #[test]
    fn safe_negation_and_aggregate_are_clean() {
        let src = "
            move(1, 2). move(2, 3).
            moved(X) :- move(X, _Y).
            stuck(X) :- move(X, Y), !moved(Y).
            ?- stuck(X).
        ";
        assert!(codes(src).is_empty(), "{:?}", codes(src));
        let src = "
            pay(hw, 1, 10). pay(hw, 2, 20).
            total(D, sum<S>) :- pay(D, _E, S).
            ?- total(D, C).
        ";
        assert!(codes(src).is_empty(), "{:?}", codes(src));
    }

    #[test]
    fn unbound_negation_variable_fires_mp011() {
        let src = "p(X) :- e(X), !q(X, Y), r(Y). e(1). r(1). ?- p(X).";
        assert!(!codes(src).contains(&Code::UnsafeNegation));
        let src = "p(X) :- e(X), !q(X, Y). e(1). ?- p(X).";
        assert!(codes(src).contains(&Code::UnsafeNegation));
    }

    #[test]
    fn negation_without_positive_body_fires_mp011() {
        let src = "p(1) :- !q(1). q(2). ?- p(X).";
        assert!(codes(src).contains(&Code::UnsafeNegation));
    }

    #[test]
    fn aggregate_misuse_fires_mp012() {
        // Fold variable in the grouping key.
        let src = "t(S, sum<S>) :- pay(S). pay(1). ?- t(A, B).";
        assert!(codes(src).contains(&Code::UnsafeAggregate));
        // Fold variable unbound by the positive body (MP001 fires too —
        // the aggregate position is an ordinary head variable — but the
        // dedicated MP012 names the fold).
        let src = "t(D, sum<S>) :- pay(D), !q(D, S). pay(1). ?- t(A, B).";
        assert!(codes(src).contains(&Code::UnsafeAggregate));
        // Multiple defining rules for an aggregate predicate.
        let src = "
            t(D, sum<S>) :- pay(D, S).
            t(D, S) :- extra(D, S).
            pay(1, 2). extra(1, 3).
            ?- t(A, B).
        ";
        assert!(codes(src).contains(&Code::UnsafeAggregate));
    }

    #[test]
    fn aggregate_on_query_head_fires_mp012() {
        let program = mp_datalog::Program::new(vec![
            mp_datalog::parser::parse_rule("goal(D, count<S>) :- pay(D, S).").unwrap(),
            mp_datalog::parser::parse_rule("pay(1, 2).").unwrap(),
        ]);
        let ds = lint_program(&program, None, None);
        assert!(ds.iter().any(|d| d.code == Code::UnsafeAggregate));
    }

    #[test]
    fn negated_subgoal_vars_count_for_mp007() {
        // `Y` occurs once (in the negated subgoal) — singleton; `X` twice.
        let src = "p(X) :- e(X), !q(X). e(1). ?- p(X).";
        let program = parse_program(src).unwrap();
        let ds = lint_program(&program, None, None);
        assert!(!ds.iter().any(|d| d.code == Code::SingletonVariable));
    }

    #[test]
    fn spans_point_at_the_offending_clause() {
        let src = "e(1, 2).\nbad(X, Y) :- e(X, W).\n?- bad(1, Z).\n";
        let (program, map) = parse_program_with_spans(src).unwrap();
        let ds = lint_program(&program, None, Some(&map));
        let unsafe_d = ds.iter().find(|d| d.code == Code::UnsafeRule).unwrap();
        assert_eq!(unsafe_d.span.map(|s| s.line), Some(2));
    }
}
