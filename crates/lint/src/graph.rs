//! Graph lints (`MP101`–`MP104`): checks over compiled rule/goal
//! artifacts.
//!
//! * [`lint_plan`] checks one rule instance's SIP plan: argument-class
//!   soundness against the atom shapes (`MP101`, §1.2), a supplier for
//!   every `d` position (`MP102`, Def 2.4), and a non-empty semijoin key
//!   for every subgoal that joins against earlier bindings (`MP105`).
//!   Without a supplier the goal node would wait forever for tuple
//!   requests that never come; with an empty key the data plane has no
//!   column set to build a `KeyIndex` on, so the index-backed join
//!   kernel silently degrades to a full scan (cross product).
//! * [`lint_graph`] runs [`lint_plan`] on every rule node and checks the
//!   graph's structure through a [`GraphView`]: variant closure
//!   (`MP103`, Thm 2.1 / Def 2.2) and cycle-edge consistency (`MP104`,
//!   §2.1).
//!
//! [`RuleGoalGraph`] construction is correct by design, so on real graphs
//! these passes report nothing — they exist to catch regressions in the
//! compiler and to validate plans and views fabricated by tools or tests.
//! [`GraphView`] is plain data precisely so tests can corrupt it.

use crate::{Code, Diagnostic};
use mp_datalog::Rule;
use mp_rulegoal::sip::bound_head_vars;
use mp_rulegoal::{
    Adornment, ArcKind, ArgClass, GoalKind, GoalLabel, Node, RuleGoalGraph, SipPlan, SipSource,
};
use std::collections::BTreeSet;

/// Lint one rule instance's SIP plan against the rule and the head
/// adornment it was planned for.
pub fn lint_plan(rule: &Rule, head: &Adornment, plan: &SipPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let kind = plan.kind.name();

    if head.arity() != rule.head.arity() {
        diags.push(Diagnostic::new(
            Code::ClassMismatch,
            format!(
                "head adornment `{head}` has arity {} but the head of `{rule}` has arity {}",
                head.arity(),
                rule.head.arity()
            ),
        ));
        return diags;
    }

    // Order must be a permutation of the subgoal indices, and there must
    // be one adornment per subgoal with matching arity.
    let n = rule.body.len();
    let mut seen = vec![false; n];
    let mut order_ok = plan.order.len() == n;
    for &i in &plan.order {
        if i >= n || seen[i] {
            order_ok = false;
            break;
        }
        seen[i] = true;
    }
    if !order_ok {
        diags.push(
            Diagnostic::new(
                Code::ClassMismatch,
                format!(
                    "sip `{kind}` order {:?} is not a permutation of the {n} subgoals of `{rule}`",
                    plan.order
                ),
            )
            .with_note("every subgoal must be evaluated exactly once (Def 2.3)"),
        );
        return diags;
    }
    if plan.adornments.len() != n {
        diags.push(Diagnostic::new(
            Code::ClassMismatch,
            format!(
                "sip `{kind}` produced {} adornments for the {n} subgoals of `{rule}`",
                plan.adornments.len()
            ),
        ));
        return diags;
    }

    for (i, (atom, ad)) in rule.body.iter().zip(&plan.adornments).enumerate() {
        if ad.arity() != atom.arity() {
            diags.push(Diagnostic::new(
                Code::ClassMismatch,
                format!(
                    "subgoal {i} `{atom}` of `{rule}` has arity {} but adornment `{ad}`",
                    atom.arity()
                ),
            ));
            continue;
        }
        // Per-position class vs term shape (§1.2: `c` iff constant).
        for (j, t) in atom.terms.iter().enumerate() {
            match (t.as_const(), ad.class(j)) {
                (Some(v), c) if c != ArgClass::C => diags.push(
                    Diagnostic::new(
                        Code::ClassMismatch,
                        format!(
                            "constant `{v}` at position {j} of subgoal `{atom}` in `{rule}` \
                             is classed `{}`, expected `c`",
                            c.letter()
                        ),
                    )
                    .with_note(
                        "class c is exactly the constants known at graph-construction time (§1.2)",
                    ),
                ),
                (None, ArgClass::C) => diags.push(Diagnostic::new(
                    Code::ClassMismatch,
                    format!(
                        "variable at position {j} of subgoal `{atom}` in `{rule}` is classed `c`"
                    ),
                )),
                _ => {}
            }
        }
        // A variable must have one class within a subgoal, and an
        // existential variable must not escape: not into another subgoal
        // and not into a transmitted head position.
        let mut e_vars: BTreeSet<&str> = BTreeSet::new();
        let mut non_e: BTreeSet<&str> = BTreeSet::new();
        for (j, t) in atom.terms.iter().enumerate() {
            if let Some(v) = t.as_var() {
                if ad.class(j) == ArgClass::E {
                    e_vars.insert(v.name());
                } else {
                    non_e.insert(v.name());
                }
            }
        }
        for v in &e_vars {
            let mixed = non_e.contains(v);
            let in_other_subgoal = rule
                .body
                .iter()
                .enumerate()
                .any(|(k, a)| k != i && a.vars().iter().any(|w| w.name() == *v));
            let in_transmitted_head = rule.head.terms.iter().enumerate().any(|(j, t)| {
                t.as_var().is_some_and(|w| w.name() == *v) && head.class(j) != ArgClass::E
            });
            if mixed || in_other_subgoal || in_transmitted_head {
                diags.push(
                    Diagnostic::new(
                        Code::ClassMismatch,
                        format!(
                            "variable `{v}` is classed `e` in subgoal `{atom}` of `{rule}` \
                             but its value is needed elsewhere",
                        ),
                    )
                    .with_note(
                        "class e means the value is never transmitted (§1.2); \
                         a shared variable must be classed d or f",
                    ),
                );
            }
        }
    }
    if !diags.is_empty() {
        return diags;
    }

    // MP102: walk the plan order; every d position must be supplied by the
    // head's bound variables or a transmitted position of an earlier
    // subgoal (Def 2.4).
    let mut bound = bound_head_vars(rule, head);
    for &i in &plan.order {
        let atom = &rule.body[i];
        let ad = &plan.adornments[i];
        for (j, t) in atom.terms.iter().enumerate() {
            if ad.class(j) != ArgClass::D {
                continue;
            }
            match t.as_var() {
                Some(v) if bound.contains(v) => {}
                Some(v) => diags.push(
                    Diagnostic::new(
                        Code::MissingDSupplier,
                        format!(
                            "position {j} of subgoal `{atom}` in `{rule}` is classed `d` \
                             but no earlier supplier binds `{}` under sip `{kind}`",
                            v.name()
                        ),
                    )
                    .with_note(
                        "Def 2.4: a d argument's needed set comes from the head or an \
                         earlier subgoal; without a supplier the goal node never receives \
                         tuple requests and blocks forever",
                    ),
                ),
                None => {} // constants at d positions already reported as MP101
            }
        }
        // MP105: the semijoin key the data plane indexes on is the set of
        // subgoal variables already bound by earlier suppliers. If bindings
        // are flowing (`bound` nonempty) but this subgoal shares none of
        // them, the key column set is empty: no `KeyIndex` can be built and
        // the join kernel falls back to scanning every stored row.
        let atom_vars = atom.vars();
        if !bound.is_empty()
            && !atom_vars.is_empty()
            && !atom_vars.iter().any(|v| bound.contains(v))
        {
            diags.push(
                Diagnostic::new(
                    Code::UnindexedSemijoinKey,
                    format!(
                        "subgoal `{atom}` of `{rule}` shares no bound variable with its \
                         suppliers under sip `{kind}`: its semijoin key is empty",
                    ),
                )
                .with_note(
                    "the index planner builds a KeyIndex per semijoin key column set; an \
                     empty key means an unindexed probe — every stored row is scanned and \
                     the join is a cross product",
                ),
            );
        }
        for j in ad.transmitted_positions() {
            if let Some(v) = atom.terms[j].as_var() {
                bound.insert(v.clone());
            }
        }
    }

    // The strategy graph's arcs must point forward in the order.
    let pos_in_order = |i: usize| plan.order.iter().position(|&k| k == i);
    for e in &plan.edges {
        let ok = match e.from {
            SipSource::Head => true,
            SipSource::Subgoal(s) => match (pos_in_order(s), pos_in_order(e.to)) {
                (Some(a), Some(b)) => a < b,
                _ => false,
            },
        };
        if !ok {
            diags.push(
                Diagnostic::new(
                    Code::MissingDSupplier,
                    format!(
                        "sip edge for `{}` into subgoal {} of `{rule}` comes from subgoal \
                         {:?} which is not earlier in the order {:?}",
                        e.var.name(),
                        e.to,
                        e.from,
                        plan.order
                    ),
                )
                .with_note("Def 2.3: strategy-graph arcs must respect the evaluation order"),
            );
        }
    }

    diags
}

/// The structural role of a node, independent of its payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// An expanded IDB goal node.
    Idb,
    /// An EDB leaf.
    Edb,
    /// A cycle-reference node pointing back at the ancestor it is a
    /// variant of.
    CycleRef {
        /// The ancestor goal node this reference closes back to.
        ancestor: usize,
    },
    /// A rule node.
    Rule,
}

/// A plain-data view of a rule/goal graph's structure: roles, goal
/// labels, and arcs. [`GraphView::of`] extracts it from a real graph;
/// tests fabricate (and corrupt) it directly.
#[derive(Clone, Debug)]
pub struct GraphView {
    /// Per-node role.
    pub roles: Vec<NodeRole>,
    /// Per-node goal label (`None` for rule nodes).
    pub labels: Vec<Option<GoalLabel>>,
    /// All arcs `(from, to, kind)` in answer direction (child → customer
    /// for tree arcs, ancestor → reference for cycle arcs).
    pub arcs: Vec<(usize, usize, ArcKind)>,
}

impl GraphView {
    /// Extract the view from a compiled graph.
    pub fn of(graph: &RuleGoalGraph) -> GraphView {
        let mut roles = Vec::with_capacity(graph.len());
        let mut labels = Vec::with_capacity(graph.len());
        let mut arcs = Vec::new();
        for (id, node) in graph.nodes() {
            match node {
                Node::Goal { label, kind, .. } => {
                    roles.push(match kind {
                        GoalKind::Idb => NodeRole::Idb,
                        GoalKind::Edb => NodeRole::Edb,
                        GoalKind::CycleRef { ancestor } => NodeRole::CycleRef {
                            ancestor: *ancestor,
                        },
                    });
                    labels.push(Some(label.clone()));
                }
                Node::Rule { .. } => {
                    roles.push(NodeRole::Rule);
                    labels.push(None);
                }
            }
            for &(to, kind) in graph.customers(id) {
                arcs.push((id, to, kind));
            }
        }
        GraphView {
            roles,
            labels,
            arcs,
        }
    }

    /// The tree parent of `n` (its unique tree customer), if any.
    fn tree_parent(&self, n: usize) -> Option<usize> {
        self.arcs
            .iter()
            .find(|&&(f, _, k)| f == n && k == ArcKind::Tree)
            .map(|&(_, t, _)| t)
    }

    /// The tree-ancestor chain of `n` (excluding `n`), bounded by node
    /// count so corrupt views cannot loop forever.
    fn ancestors(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = n;
        for _ in 0..self.roles.len() {
            match self.tree_parent(cur) {
                Some(p) => {
                    out.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        out
    }
}

/// Structural lints over a [`GraphView`]: variant closure (`MP103`) and
/// cycle-edge consistency (`MP104`).
pub fn lint_graph_view(view: &GraphView) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = view.roles.len();
    let label = |i: usize| view.labels.get(i).and_then(|l| l.as_ref());

    for (i, role) in view.roles.iter().enumerate() {
        if let NodeRole::CycleRef { ancestor } = *role {
            // MP104: the recorded ancestor must be a goal node, a true
            // tree-ancestor, and connected by exactly one cycle arc.
            if ancestor >= n || label(ancestor).is_none() {
                diags.push(
                    Diagnostic::new(
                        Code::CycleEdgeInconsistent,
                        format!(
                            "cycle reference {i} records non-goal node {ancestor} as its ancestor"
                        ),
                    )
                    .with_note("cycle edges run from an ancestor goal node to its variant (§2.1)"),
                );
                continue;
            }
            if !view.ancestors(i).contains(&ancestor) {
                diags.push(
                    Diagnostic::new(
                        Code::CycleEdgeInconsistent,
                        format!(
                            "cycle reference {i} records node {ancestor} as its ancestor, \
                             but {ancestor} is not on {i}'s tree path to the root"
                        ),
                    )
                    .with_note(
                        "the graph must be a DFS tree plus back edges; a cycle edge to a \
                         non-ancestor would be a cross edge (§2.1, footnote 3)",
                    ),
                );
            }
            let incoming: Vec<usize> = view
                .arcs
                .iter()
                .filter(|&&(_, t, k)| t == i && k == ArcKind::Cycle)
                .map(|&(f, _, _)| f)
                .collect();
            if incoming != vec![ancestor] {
                diags.push(
                    Diagnostic::new(
                        Code::CycleEdgeInconsistent,
                        format!(
                            "cycle reference {i} should have exactly one cycle arc, from its \
                             ancestor {ancestor}, but has {incoming:?}"
                        ),
                    )
                    .with_note("the back edge carries the ancestor's answers to the reference"),
                );
            }
            // MP103: the reference must actually be a variant (Def 2.2:
            // labels equal).
            if label(i) != label(ancestor) {
                diags.push(
                    Diagnostic::new(
                        Code::VariantClosure,
                        format!(
                            "cycle reference {i} ({}) is not a variant of its ancestor {ancestor} ({})",
                            label(i).map_or("?".into(), |l| l.render()),
                            label(ancestor).map_or("?".into(), |l| l.render()),
                        ),
                    )
                    .with_note(
                        "Def 2.2: a goal is closed into a cycle only when its label equals an \
                         ancestor's; sharing answers between non-variants is unsound",
                    ),
                );
            }
        }
    }

    // MP104 (converse): every cycle arc must terminate at a cycle
    // reference recording exactly that source.
    for &(f, t, k) in &view.arcs {
        if k != ArcKind::Cycle {
            continue;
        }
        match view.roles.get(t) {
            Some(NodeRole::CycleRef { ancestor }) if *ancestor == f => {}
            _ => diags.push(
                Diagnostic::new(
                    Code::CycleEdgeInconsistent,
                    format!("cycle arc {f} → {t} does not terminate at a cycle reference for {f}"),
                )
                .with_note("cycle arcs may only connect an ancestor to its own references (§2.1)"),
            ),
        }
    }

    // MP103: an *expanded* IDB goal node whose label repeats a tree
    // ancestor's should have been a cycle reference (Thm 2.1's closure —
    // without it the graph would not have terminated finitely).
    for (i, role) in view.roles.iter().enumerate() {
        if *role != NodeRole::Idb {
            continue;
        }
        let Some(li) = label(i) else { continue };
        for a in view.ancestors(i) {
            if label(a) == Some(li) {
                diags.push(
                    Diagnostic::new(
                        Code::VariantClosure,
                        format!(
                            "goal node {i} ({}) repeats the label of its ancestor {a} but was \
                             expanded instead of closed into a cycle",
                            li.render()
                        ),
                    )
                    .with_note(
                        "Thm 2.1: variant ancestors must become cycle edges, or construction \
                         recurses unboundedly and answers are duplicated",
                    ),
                );
                break;
            }
        }
    }

    diags
}

/// Lint a compiled graph: every rule node's SIP plan plus the structural
/// checks of [`lint_graph_view`].
pub fn lint_graph(graph: &RuleGoalGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (_, node) in graph.nodes() {
        if let Node::Rule {
            rule,
            plan,
            head_label,
            ..
        } = node
        {
            diags.extend(lint_plan(rule, &head_label.adornment(), plan));
        }
    }
    diags.extend(lint_graph_view(&GraphView::of(graph)));
    diags
}

/// `MP106`: warn when the rule/goal graph has more nodes than the
/// machine has hardware threads. Correctness is unaffected — the
/// threaded runtime's worker pool multiplexes node activations onto a
/// fixed set of workers — but node-level parallelism has saturated, so
/// the `--workers` knob (`Engine::with_workers`), not graph size, is
/// what governs concurrency from here. Machine-dependent by nature, so
/// it is *not* part of [`lint_graph`] (a pure artifact check): callers
/// that know the deployment pass the real `available_parallelism`
/// (`Engine::compile`, the `mp-lint` binary), and tests pin the
/// hardware-thread count.
pub fn lint_parallelism(nodes: usize, parallelism: usize) -> Option<Diagnostic> {
    (nodes > parallelism).then(|| {
        Diagnostic::new(
            Code::OversubscribedGraph,
            format!(
                "rule/goal graph has {nodes} nodes but the machine has only \
                 {parallelism} hardware thread{}",
                if parallelism == 1 { "" } else { "s" }
            ),
        )
        .with_note(
            "the worker pool schedules node activations onto available_parallelism \
             workers by default; use --workers N (Engine::with_workers) to size the \
             pool explicitly — adding graph nodes beyond the worker count adds no \
             concurrency",
        )
    })
}

/// `MP107`: warn when a recursive graph runs with an effectively
/// unbounded budget — no logical-message or memory limit and no
/// mailbox bound (credit window). Correctness is unaffected, but a hot
/// cycle can grow mailboxes without limit before the step guard or
/// deadline trips. Like [`lint_parallelism`] this depends on engine
/// configuration, not the artifact, so it is *not* part of
/// [`lint_graph`]: `Engine::compile` passes its own budget fields.
pub fn lint_budget(
    nodes: usize,
    recursive: bool,
    has_resource_budget: bool,
    has_mailbox_bound: bool,
) -> Option<Diagnostic> {
    (recursive && !has_resource_budget && !has_mailbox_bound).then(|| {
        Diagnostic::new(
            Code::UnboundedBudget,
            format!(
                "recursive graph with {nodes} nodes runs without a resource budget \
                 or mailbox bound"
            ),
        )
        .with_note(
            "only the step guard and wall-clock deadline bound this evaluation; set \
             --msg-budget/--mem-budget (Engine::with_budget) to cap logical work, or \
             --mailbox-bound to cap per-node queues via credit-based backpressure",
        )
    })
}

/// `MP108`: warn when `--shards K>1` was requested but no node of this
/// graph can actually be replicated — every partition verdict is
/// `Gather`/`Singleton`/`Broadcast`, or the only `Key` nodes are SCC
/// leaders or free-choice keys that requests cannot route by. Like
/// [`lint_budget`] this depends on engine configuration (the requested
/// shard count), not the artifact alone, so it is *not* part of
/// [`lint_graph`]: `Engine::compile` passes the fan-out vector computed
/// by mp-analyze.
pub fn lint_sharding(shards: usize, any_fan_out: bool) -> Option<Diagnostic> {
    (shards > 1 && !any_fan_out).then(|| {
        Diagnostic::new(
            Code::ShardingIneffective,
            format!(
                "--shards {shards} requested but no temporary relation is \
                 request-keyed; sharding cannot split any node of this program"
            ),
        )
        .with_note(
            "every partition verdict is gather/singleton/broadcast (or the only \
             keyed nodes are SCC leaders), so evaluation is identical to \
             --shards 1 plus routing overhead; see mpq --explain's fan column",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::{atom, Var};
    use mp_rulegoal::sip::SipEdge;
    use mp_rulegoal::SipKind;

    fn ad(s: &str) -> Adornment {
        Adornment::parse(s).unwrap()
    }

    /// tc(X, Y) :- e(X, Z), tc(Z, Y).
    fn tc_rule() -> Rule {
        Rule::new(
            atom!("tc"; var "X", var "Y"),
            vec![atom!("e"; var "X", var "Z"), atom!("tc"; var "Z", var "Y")],
        )
    }

    fn good_plan() -> SipPlan {
        SipPlan {
            kind: SipKind::Greedy,
            order: vec![0, 1],
            adornments: vec![ad("df"), ad("df")],
            edges: vec![SipEdge {
                from: SipSource::Subgoal(0),
                to: 1,
                var: Var::new("Z"),
            }],
            monotone: true,
        }
    }

    #[test]
    fn sound_plan_is_clean() {
        assert!(lint_plan(&tc_rule(), &ad("df"), &good_plan()).is_empty());
    }

    #[test]
    fn missing_supplier_fires_mp102() {
        // Evaluate tc(Z,Y) first: Z^d has no supplier yet.
        let mut plan = good_plan();
        plan.order = vec![1, 0];
        plan.edges.clear();
        let ds = lint_plan(&tc_rule(), &ad("df"), &plan);
        assert!(
            ds.iter().any(|d| d.code == Code::MissingDSupplier),
            "{ds:?}"
        );
    }

    #[test]
    fn unbound_head_supplier_fires_mp102() {
        // Head is all-free: X^d in e(X,Z) has no supplier at all.
        let ds = lint_plan(&tc_rule(), &ad("ff"), &good_plan());
        assert!(
            ds.iter().any(|d| d.code == Code::MissingDSupplier),
            "{ds:?}"
        );
    }

    #[test]
    fn backwards_sip_edge_fires_mp102() {
        let mut plan = good_plan();
        plan.edges = vec![SipEdge {
            from: SipSource::Subgoal(1),
            to: 0,
            var: Var::new("Z"),
        }];
        // Make position classes consistent so only the edge is at fault.
        plan.adornments = vec![ad("df"), ad("ff")];
        let ds = lint_plan(&tc_rule(), &ad("df"), &plan);
        assert!(
            ds.iter().any(|d| d.code == Code::MissingDSupplier),
            "{ds:?}"
        );
    }

    #[test]
    fn disconnected_subgoal_fires_mp105() {
        // p(X, Y) :- e(X), f(Y): f(Y) shares no bound variable with the
        // head or with e, so its semijoin key is empty — cross product.
        let rule = Rule::new(
            atom!("p"; var "X", var "Y"),
            vec![atom!("e"; var "X"), atom!("f"; var "Y")],
        );
        let plan = SipPlan {
            kind: SipKind::Greedy,
            order: vec![0, 1],
            adornments: vec![ad("d"), ad("f")],
            edges: vec![],
            monotone: true,
        };
        let ds = lint_plan(&rule, &ad("df"), &plan);
        assert!(
            ds.iter().any(|d| d.code == Code::UnindexedSemijoinKey),
            "{ds:?}"
        );
        // It is advisory: evaluation still proceeds.
        assert!(
            ds.iter()
                .filter(|d| d.code == Code::UnindexedSemijoinKey)
                .all(|d| !d.is_deny()),
            "{ds:?}"
        );
    }

    #[test]
    fn connected_subgoals_do_not_fire_mp105() {
        // The canonical tc plan: every subgoal shares a bound variable.
        let ds = lint_plan(&tc_rule(), &ad("df"), &good_plan());
        assert!(
            !ds.iter().any(|d| d.code == Code::UnindexedSemijoinKey),
            "{ds:?}"
        );
    }

    #[test]
    fn seed_scan_with_free_head_does_not_fire_mp105() {
        // Head all-free: nothing is bound when the first subgoal runs, so
        // a leading scan is the intended seeding, not a missing index.
        let rule = Rule::new(atom!("p"; var "X"), vec![atom!("e"; var "X")]);
        let plan = SipPlan {
            kind: SipKind::Greedy,
            order: vec![0],
            adornments: vec![ad("f")],
            edges: vec![],
            monotone: true,
        };
        let ds = lint_plan(&rule, &ad("f"), &plan);
        assert!(
            !ds.iter().any(|d| d.code == Code::UnindexedSemijoinKey),
            "{ds:?}"
        );
    }

    #[test]
    fn order_not_a_permutation_fires_mp101() {
        let mut plan = good_plan();
        plan.order = vec![0, 0];
        let ds = lint_plan(&tc_rule(), &ad("df"), &plan);
        assert!(ds.iter().any(|d| d.code == Code::ClassMismatch), "{ds:?}");
    }

    #[test]
    fn constant_not_classed_c_fires_mp101() {
        let rule = Rule::new(atom!("p"; var "X"), vec![atom!("e"; val 3, var "X")]);
        let plan = SipPlan {
            kind: SipKind::Greedy,
            order: vec![0],
            adornments: vec![ad("df")],
            edges: vec![],
            monotone: true,
        };
        let ds = lint_plan(&rule, &ad("f"), &plan);
        assert!(ds.iter().any(|d| d.code == Code::ClassMismatch), "{ds:?}");
    }

    #[test]
    fn leaking_existential_fires_mp101() {
        // Z is shared between both subgoals but classed e in the first.
        let plan = SipPlan {
            kind: SipKind::Greedy,
            order: vec![0, 1],
            adornments: vec![ad("de"), ad("df")],
            edges: vec![],
            monotone: true,
        };
        let ds = lint_plan(&tc_rule(), &ad("df"), &plan);
        assert!(ds.iter().any(|d| d.code == Code::ClassMismatch), "{ds:?}");
    }

    #[test]
    fn adornment_arity_mismatch_fires_mp101() {
        let mut plan = good_plan();
        plan.adornments = vec![ad("d"), ad("df")];
        let ds = lint_plan(&tc_rule(), &ad("df"), &plan);
        assert!(ds.iter().any(|d| d.code == Code::ClassMismatch), "{ds:?}");
    }

    /// A hand-built correct view mirroring the shape the compiler emits
    /// for `tc` (goal 0 ← rule 1 ← {edb 2, cycleref 3}).
    fn tc_view() -> GraphView {
        let tc_label = GoalLabel::new(&atom!("tc"; var "X", var "Y"), &ad("df"));
        let e_label = GoalLabel::new(&atom!("e"; var "X", var "Z"), &ad("df"));
        GraphView {
            roles: vec![
                NodeRole::Idb,
                NodeRole::Rule,
                NodeRole::Edb,
                NodeRole::CycleRef { ancestor: 0 },
            ],
            labels: vec![Some(tc_label.clone()), None, Some(e_label), Some(tc_label)],
            arcs: vec![
                (1, 0, ArcKind::Tree),
                (2, 1, ArcKind::Tree),
                (3, 1, ArcKind::Tree),
                (0, 3, ArcKind::Cycle),
            ],
        }
    }

    #[test]
    fn sound_view_is_clean() {
        assert!(lint_graph_view(&tc_view()).is_empty());
    }

    #[test]
    fn non_variant_cycle_ref_fires_mp103() {
        let mut v = tc_view();
        // Corrupt the reference's label: different adornment ⇒ not a variant.
        v.labels[3] = Some(GoalLabel::new(&atom!("tc"; var "X", var "Y"), &ad("ff")));
        let ds = lint_graph_view(&v);
        assert!(ds.iter().any(|d| d.code == Code::VariantClosure), "{ds:?}");
    }

    #[test]
    fn expanded_variant_fires_mp103() {
        let mut v = tc_view();
        // Pretend the compiler expanded the variant instead of closing it.
        v.roles[3] = NodeRole::Idb;
        v.arcs.retain(|&(_, _, k)| k == ArcKind::Tree);
        let ds = lint_graph_view(&v);
        assert!(ds.iter().any(|d| d.code == Code::VariantClosure), "{ds:?}");
    }

    #[test]
    fn cycle_arc_from_wrong_node_fires_mp104() {
        let mut v = tc_view();
        v.arcs.retain(|&(_, _, k)| k == ArcKind::Tree);
        v.arcs.push((2, 3, ArcKind::Cycle));
        let ds = lint_graph_view(&v);
        assert!(
            ds.iter().any(|d| d.code == Code::CycleEdgeInconsistent),
            "{ds:?}"
        );
    }

    #[test]
    fn missing_cycle_arc_fires_mp104() {
        let mut v = tc_view();
        v.arcs.retain(|&(_, _, k)| k == ArcKind::Tree);
        let ds = lint_graph_view(&v);
        assert!(
            ds.iter().any(|d| d.code == Code::CycleEdgeInconsistent),
            "{ds:?}"
        );
    }

    #[test]
    fn ancestor_not_on_tree_path_fires_mp104() {
        let mut v = tc_view();
        // Point the reference at the EDB leaf's sibling subtree.
        v.roles[3] = NodeRole::CycleRef { ancestor: 2 };
        v.arcs.retain(|&(_, _, k)| k == ArcKind::Tree);
        v.arcs.push((2, 3, ArcKind::Cycle));
        let ds = lint_graph_view(&v);
        assert!(
            ds.iter().any(|d| d.code == Code::CycleEdgeInconsistent),
            "{ds:?}"
        );
    }

    #[test]
    fn oversubscribed_graph_fires_mp106_as_warning() {
        let d = lint_parallelism(9, 8).expect("9 nodes on 8 threads must warn");
        assert_eq!(d.code, Code::OversubscribedGraph);
        assert_eq!(d.severity, crate::Severity::Warn);
        assert!(d.message.contains("9 nodes"), "{}", d.message);
        // The actionable knob is the pool size, not the graph shape.
        assert!(d.note.as_deref().unwrap_or("").contains("--workers"));
    }

    #[test]
    fn fitting_graph_is_silent_under_mp106() {
        assert!(lint_parallelism(8, 8).is_none());
        assert!(lint_parallelism(3, 8).is_none());
    }

    #[test]
    fn unbounded_recursive_budget_fires_mp107_as_warning() {
        let d = lint_budget(5, true, false, false).expect("unbounded recursion must warn");
        assert_eq!(d.code, Code::UnboundedBudget);
        assert_eq!(d.severity, crate::Severity::Warn);
        assert!(d.message.contains("5 nodes"), "{}", d.message);
        assert!(d.note.as_deref().unwrap_or("").contains("--msg-budget"));
    }

    #[test]
    fn ineffective_sharding_fires_mp108_as_warning() {
        let d = lint_sharding(4, false).expect("K>1 with no fan-out must warn");
        assert_eq!(d.code, Code::ShardingIneffective);
        assert_eq!(d.severity, crate::Severity::Warn);
        assert!(d.message.contains("--shards 4"), "{}", d.message);
        // Silent when sharding helps, and always silent at K=1.
        assert!(lint_sharding(4, true).is_none());
        assert!(lint_sharding(1, false).is_none());
    }

    #[test]
    fn bounded_or_acyclic_is_silent_under_mp107() {
        // Acyclic graphs terminate by structure alone.
        assert!(lint_budget(5, false, false, false).is_none());
        // Either a resource budget or a mailbox bound silences the warning.
        assert!(lint_budget(5, true, true, false).is_none());
        assert!(lint_budget(5, true, false, true).is_none());
    }
}
