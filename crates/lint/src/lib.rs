#![warn(missing_docs)]

//! # mp-lint
//!
//! A multi-pass static analyzer that runs **before** evaluation and turns
//! would-be runtime panics or silent wrong answers into structured
//! diagnostics. The paper's guarantees are conditional on static
//! properties, so checking them statically is checking the paper:
//!
//! * **Program lints** (`MP001`–`MP012`, [`program::lint_program`]) check
//!   the §1 well-formedness conditions over the Datalog AST — rule
//!   safety/range restriction, arity consistency, EDB/IDB separation,
//!   reachability from the query, singleton variables, ground facts —
//!   plus negation/aggregate safety (`MP011`/`MP012`). The stratum
//!   inference itself (`MP009`/`MP010`) runs in `mp-analyze`'s
//!   `stratify` pass, which reports through this registry.
//! * **Graph lints** (`MP101`–`MP108`, [`graph::lint_graph`]) check
//!   compiled rule/goal artifacts — argument-class soundness under the
//!   chosen SIP, a supplier for every `d` position (Def 2.4), variant
//!   closure (Thm 2.1), cycle-edge consistency, indexability of every
//!   semijoin key under the data plane's index planner, and graph size
//!   against the machine's hardware parallelism.
//! * **Protocol lints** (`MP201`–`MP204`, [`protocol::lint_protocol`])
//!   check the per-strong-component state the §3.2 termination protocol
//!   relies on — exactly one exit node, BFST parent/child symmetry and
//!   full coverage, leader uniqueness (Thm 3.1's preconditions).
//! * **Analysis diagnostics** (`MP401`–`MP406`) are emitted by the
//!   `mp-analyze` crate's abstract interpreter (sort/type inference,
//!   cardinality planning, partition-key inference); the codes live here
//!   so every tool shares one registry and one `--json` schema.
//!
//! Deny-level diagnostics abort `Engine::compile` with a typed error;
//! warnings are surfaced but do not block. The `mp-lint` binary lints
//! `.dl` files and renders diagnostics against the source text.

pub mod graph;
pub mod program;
pub mod protocol;

use mp_datalog::Span;
use std::fmt;

/// How severe a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: surfaced, but evaluation may proceed.
    Warn,
    /// The property the engine (or the paper) relies on is violated;
    /// compilation must abort.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => f.write_str("warning"),
            Severity::Deny => f.write_str("error"),
        }
    }
}

/// Stable diagnostic codes. Each code maps to the paper condition it
/// enforces (see DESIGN.md, "Static verification layer").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// A rule is unsafe: a head variable is not bound by any positive
    /// body literal (range restriction, §1).
    UnsafeRule,
    /// A predicate is used with two different arities.
    ArityConflict,
    /// A predicate is both EDB and IDB: it has facts (inline or in the
    /// database) *and* occurs in a rule head (§1's PIDB condition).
    EdbIdbOverlap,
    /// The distinguished `goal` predicate occurs in a rule body (§1).
    GoalInBody,
    /// The program has no `goal` rule — nothing to evaluate (§1).
    NoQuery,
    /// An IDB predicate is unreachable from the query and will never be
    /// evaluated.
    UnreachablePredicate,
    /// A variable occurs exactly once in a rule (likely a typo; prefix
    /// with `_` to silence).
    SingletonVariable,
    /// A fact contains a variable.
    NonGroundFact,
    /// A negated subgoal lies on a dependency cycle: the predicate depends
    /// on its own negation, so no stratification exists and the perfect
    /// model is undefined (stratified-negation condition; `mp-stratify`).
    UnstratifiableNegation,
    /// An aggregate rule lies on a dependency cycle: the predicate's
    /// aggregate depends (transitively) on the predicate itself, so the
    /// fold has no well-defined fixpoint (`mp-stratify`).
    AggregateInRecursion,
    /// A negated subgoal uses a variable not bound by any positive
    /// subgoal, or a rule has no positive subgoals at all: the negation
    /// ranges over an infinite complement (safety/range restriction for
    /// negation).
    UnsafeNegation,
    /// An aggregate is ill-formed: its fold variable is unbound by the
    /// positive body, also appears in the grouping key, or the aggregate
    /// predicate has more than one defining rule (ambiguous fold).
    UnsafeAggregate,

    /// An argument-class assignment is inconsistent with the atom or the
    /// SIP plan (§1.2, §2.2).
    ClassMismatch,
    /// A `d`-class argument position has no supplier under the SIP
    /// (Def 2.4): evaluation would wait forever for bindings.
    MissingDSupplier,
    /// Variant closure (Thm 2.1) is violated: a goal node repeats an
    /// ancestor's label without a cycle edge, or a cycle edge connects
    /// non-variants (Def 2.2).
    VariantClosure,
    /// A cycle edge or cycle-reference node is structurally inconsistent
    /// (§2.1: cycle edges run ancestor → variant descendant).
    CycleEdgeInconsistent,
    /// The chosen SIP gives a subgoal an empty semijoin key: it shares no
    /// bound variable with its suppliers, so the data plane cannot build
    /// a `KeyIndex` for the probe and the join kernel degrades to a full
    /// scan (cross product).
    UnindexedSemijoinKey,
    /// The rule/goal graph has more nodes than the machine has hardware
    /// threads. Harmless for correctness — the threaded runtime's worker
    /// pool multiplexes node activations onto a fixed number of workers —
    /// but per-node parallelism has plateaued; tune `--workers`
    /// (`Engine::with_workers`) rather than expecting more nodes to run
    /// concurrently.
    OversubscribedGraph,
    /// The evaluation budget is effectively unbounded for this graph:
    /// no logical-message or memory budget is set and mailboxes are
    /// unbounded (no credit window), so a hot recursive workload can
    /// grow queues without limit. Harmless for correctness; set
    /// `Engine::with_budget` (`mpq --msg-budget`/`--mem-budget`/
    /// `--mailbox-bound`) to bound it.
    UnboundedBudget,
    /// `--shards K>1` was requested but no temporary relation is
    /// request-keyed (every verdict is `Gather`/`Singleton`/`Broadcast`,
    /// or the only `Key` nodes are SCC leaders/free-choice keys):
    /// sharding cannot split any node of this program, so evaluation is
    /// identical to `--shards 1` plus routing overhead.
    ShardingIneffective,

    /// A nontrivial strong component does not have exactly one exit node
    /// (Thm 3.1's unique-feeder precondition).
    ExitNodeCount,
    /// The component's BFST parent/child links are asymmetric.
    BfstAsymmetry,
    /// The component's BFST does not span every member.
    BfstCoverage,
    /// The component's recorded leader is missing, not a member, or not
    /// the exit node (§3.2: the unique feeder is the BFST leader).
    LeaderInconsistent,

    /// A recorded trace violates clock soundness: a Lamport or vector
    /// clock regressed, or a deliver does not dominate its send
    /// (happens-before, trace checker).
    TraceClockRegression,
    /// A per-link logical sequence skipped forward (a message was lost
    /// past the recovery transport) or an ack regressed.
    TraceSeqGap,
    /// An `Answer` was delivered to the engine after `End` (Thm 3.1
    /// safety: the answer stream is complete when `End` arrives).
    TraceAnswerAfterEnd,
    /// A probe-wave reply was delivered for a (wave, epoch) the receiver
    /// never requested (§3.2: stale replies must not be accepted).
    TraceStaleEpoch,
    /// Per-link FIFO was violated: a delivered logical sequence number
    /// went backwards.
    TraceFifoViolation,
    /// A node's temporary relation shrank (§4, Thm 4.1: monotone flow —
    /// relations only grow).
    TraceShrinkingRelation,
    /// A node recovered without a preceding crash.
    TraceOrphanRecover,
    /// A logical message was delivered twice on one link (a duplicate
    /// frame survived transport dedup).
    TraceDuplicateDelivery,
    /// A matched send/deliver pair disagrees on logical item count
    /// (batching must preserve logical counters).
    TraceCountMismatch,
    /// A node sent an `Answer`/`AnswerBatch` after acking a `Cancel`
    /// wave epoch (resource governance: cancelled nodes drain the
    /// protocol but must never produce more answers).
    TraceAnswerAfterCancel,

    /// Two occurrences of a join variable range over type-disjoint value
    /// sorts (one side only integers, the other only symbols): the join
    /// can never match (mp-analyze sort inference).
    TypeClashJoin,
    /// A subgoal can never match: a constant argument lies outside the
    /// column's inferred value sort, or the relation is empty.
    EmptySubgoal,
    /// A rule body is guaranteed empty under the EDB-seeded sort
    /// abstraction — the rule can never fire and is pruned from the
    /// rule/goal graph when analysis pruning is enabled.
    DeadRule,
    /// A link's estimated message volume exceeds the hot-link threshold;
    /// consider a larger `--batch-size` on this program.
    HotLink,
    /// A temporary relation has no hash-partition key consistent with all
    /// of its producing/consuming links: K-way sharding (ROADMAP item 1)
    /// would have to broadcast it to every shard.
    BroadcastRequired,
    /// Goal nodes became unreachable after dead-rule elimination and were
    /// pruned from the rule/goal graph.
    PrunedUnreachable,
}

impl Code {
    /// The stable `MPnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnsafeRule => "MP001",
            Code::ArityConflict => "MP002",
            Code::EdbIdbOverlap => "MP003",
            Code::GoalInBody => "MP004",
            Code::NoQuery => "MP005",
            Code::UnreachablePredicate => "MP006",
            Code::SingletonVariable => "MP007",
            Code::NonGroundFact => "MP008",
            Code::UnstratifiableNegation => "MP009",
            Code::AggregateInRecursion => "MP010",
            Code::UnsafeNegation => "MP011",
            Code::UnsafeAggregate => "MP012",
            Code::ClassMismatch => "MP101",
            Code::MissingDSupplier => "MP102",
            Code::VariantClosure => "MP103",
            Code::CycleEdgeInconsistent => "MP104",
            Code::UnindexedSemijoinKey => "MP105",
            Code::OversubscribedGraph => "MP106",
            Code::UnboundedBudget => "MP107",
            Code::ShardingIneffective => "MP108",
            Code::ExitNodeCount => "MP201",
            Code::BfstAsymmetry => "MP202",
            Code::BfstCoverage => "MP203",
            Code::LeaderInconsistent => "MP204",
            Code::TraceClockRegression => "MP301",
            Code::TraceSeqGap => "MP302",
            Code::TraceAnswerAfterEnd => "MP303",
            Code::TraceStaleEpoch => "MP304",
            Code::TraceFifoViolation => "MP305",
            Code::TraceShrinkingRelation => "MP306",
            Code::TraceOrphanRecover => "MP307",
            Code::TraceDuplicateDelivery => "MP308",
            Code::TraceCountMismatch => "MP309",
            Code::TraceAnswerAfterCancel => "MP310",
            Code::TypeClashJoin => "MP401",
            Code::EmptySubgoal => "MP402",
            Code::DeadRule => "MP403",
            Code::HotLink => "MP404",
            Code::BroadcastRequired => "MP405",
            Code::PrunedUnreachable => "MP406",
        }
    }

    /// The default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            // The MP4xx analysis family is advisory by design: the
            // abstraction over-approximates, so a "dead" rule is truly
            // dead (safe to prune) but none of these block evaluation.
            Code::UnreachablePredicate
            | Code::SingletonVariable
            | Code::UnindexedSemijoinKey
            | Code::OversubscribedGraph
            | Code::UnboundedBudget
            | Code::ShardingIneffective
            | Code::TypeClashJoin
            | Code::EmptySubgoal
            | Code::DeadRule
            | Code::HotLink
            | Code::BroadcastRequired
            | Code::PrunedUnreachable => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// Source position of the offending clause, when known.
    pub span: Option<Span>,
    /// What is wrong.
    pub message: String,
    /// Why it matters / which paper condition it violates.
    pub note: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic with the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span: None,
            message: message.into(),
            note: None,
        }
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Attach an explanatory note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// True for deny-level diagnostics.
    pub fn is_deny(&self) -> bool {
        self.severity == Severity::Deny
    }

    /// Render against source text: a `file:line:col` header, the source
    /// line, a caret marker, and the note.
    pub fn render(&self, filename: &str, source: &str) -> String {
        let mut out = String::new();
        match self.span {
            Some(s) => out.push_str(&format!(
                "{}[{}]: {} ({}:{})\n",
                self.severity, self.code, self.message, filename, s
            )),
            None => out.push_str(&format!(
                "{}[{}]: {} ({})\n",
                self.severity, self.code, self.message, filename
            )),
        }
        if let Some(s) = self.span {
            if let Some(line) = source.lines().nth(s.line.saturating_sub(1)) {
                out.push_str(&format!("  {:>4} | {}\n", s.line, line));
                out.push_str(&format!(
                    "       | {}^\n",
                    " ".repeat(s.col.saturating_sub(1))
                ));
            }
        }
        if let Some(n) = &self.note {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Render as one JSON object with the stable machine-readable schema
    /// used by `mp-lint --json` and `mp-check --json`:
    ///
    /// ```json
    /// {"code": "MP001", "severity": "error", "message": "...",
    ///  "file": "prog.dl", "line": 2, "col": 14, "note": "..."}
    /// ```
    ///
    /// `line`/`col` are `null` when the diagnostic has no span; `note` is
    /// `null` when absent. Keys always appear, in this order, so CI can
    /// assert on codes without scraping human-readable text. Hand-rolled
    /// (no serde in this workspace).
    pub fn to_json(&self, filename: &str) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let (line, col) = match self.span {
            Some(s) => (s.line.to_string(), s.col.to_string()),
            None => ("null".to_string(), "null".to_string()),
        };
        let note = match &self.note {
            Some(n) => format!("\"{}\"", esc(n)),
            None => "null".to_string(),
        };
        format!(
            "{{\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", \
             \"file\": \"{}\", \"line\": {}, \"col\": {}, \"note\": {}}}",
            self.code,
            self.severity,
            esc(&self.message),
            esc(filename),
            line,
            col,
            note
        )
    }
}

/// Render a slice of diagnostics as a JSON array, one object per
/// diagnostic (see [`Diagnostic::to_json`]).
pub fn diagnostics_to_json(diags: &[Diagnostic], filename: &str) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&d.to_json(filename));
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(s) = self.span {
            write!(f, " at {s}")?;
        }
        Ok(())
    }
}

/// Sort diagnostics for stable output: by (code, location), then message
/// and severity. Every printing path (mp-lint, mp-check, mp-analyze,
/// `Engine::compile`) sorts with this one function so golden tests and
/// `--json` diffs are order-stable across runs and tools. Codes are
/// numbered so that within each family the deny-level conditions come
/// first; severity is only a final tiebreak.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.code
            .cmp(&b.code)
            .then(a.span.cmp(&b.span))
            .then(a.message.cmp(&b.message))
            .then(b.severity.cmp(&a.severity))
    });
}

/// Run every pass that applies before graph construction plus the graph
/// and protocol passes on the built artifact. The one-stop entry used by
/// `Engine::compile`.
pub fn lint_all(
    program: &mp_datalog::Program,
    db: Option<&mp_datalog::Database>,
    graph: Option<&mp_rulegoal::RuleGoalGraph>,
) -> Vec<Diagnostic> {
    let mut diags = program::lint_program(program, db, None);
    if let Some(g) = graph {
        diags.extend(graph::lint_graph(g));
        diags.extend(protocol::lint_protocol(&protocol::ProtocolView::of(g)));
    }
    sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::UnsafeRule,
            Code::ArityConflict,
            Code::EdbIdbOverlap,
            Code::GoalInBody,
            Code::NoQuery,
            Code::UnreachablePredicate,
            Code::SingletonVariable,
            Code::NonGroundFact,
            Code::UnstratifiableNegation,
            Code::AggregateInRecursion,
            Code::UnsafeNegation,
            Code::UnsafeAggregate,
            Code::ClassMismatch,
            Code::MissingDSupplier,
            Code::VariantClosure,
            Code::CycleEdgeInconsistent,
            Code::UnindexedSemijoinKey,
            Code::OversubscribedGraph,
            Code::UnboundedBudget,
            Code::ShardingIneffective,
            Code::ExitNodeCount,
            Code::BfstAsymmetry,
            Code::BfstCoverage,
            Code::LeaderInconsistent,
            Code::TraceClockRegression,
            Code::TraceSeqGap,
            Code::TraceAnswerAfterEnd,
            Code::TraceStaleEpoch,
            Code::TraceFifoViolation,
            Code::TraceShrinkingRelation,
            Code::TraceOrphanRecover,
            Code::TraceDuplicateDelivery,
            Code::TraceCountMismatch,
            Code::TraceAnswerAfterCancel,
            Code::TypeClashJoin,
            Code::EmptySubgoal,
            Code::DeadRule,
            Code::HotLink,
            Code::BroadcastRequired,
            Code::PrunedUnreachable,
        ];
        let strs: std::collections::BTreeSet<&str> = all.iter().map(|c| c.as_str()).collect();
        assert_eq!(strs.len(), all.len());
        assert!(strs.iter().all(|s| s.starts_with("MP")));
    }

    #[test]
    fn render_includes_source_line_and_caret() {
        let d = Diagnostic::new(Code::UnsafeRule, "head variable `Y` is not bound")
            .with_span(Some(Span::new(2, 14)))
            .with_note("range restriction, §1");
        let src = "p(X) :- e(X).\nbad(X, Y) :- e(X).\n";
        let r = d.render("test.dl", src);
        assert!(r.contains("error[MP001]"), "{r}");
        assert!(r.contains("test.dl:2:14"), "{r}");
        assert!(r.contains("bad(X, Y) :- e(X)."), "{r}");
        assert!(r.contains("note: range restriction"), "{r}");
    }

    #[test]
    fn sorting_puts_denies_first() {
        let mut v = vec![
            Diagnostic::new(Code::SingletonVariable, "w"),
            Diagnostic::new(Code::UnsafeRule, "e"),
        ];
        sort_diagnostics(&mut v);
        assert_eq!(v[0].code, Code::UnsafeRule);
    }

    /// Regression test for deterministic output ordering: diagnostics
    /// sort by (code, location) regardless of insertion order or
    /// severity, so golden files and `--json` diffs are order-stable.
    #[test]
    fn sorting_is_by_code_then_location() {
        let build = |perm: &[usize]| {
            let pool = [
                Diagnostic::new(Code::SingletonVariable, "w").with_span(Some(Span::new(9, 1))),
                Diagnostic::new(Code::UnsafeRule, "e").with_span(Some(Span::new(5, 2))),
                Diagnostic::new(Code::UnsafeRule, "e").with_span(Some(Span::new(2, 7))),
                Diagnostic::new(Code::BroadcastRequired, "b"),
                Diagnostic::new(Code::ExitNodeCount, "x"),
                Diagnostic::new(Code::DeadRule, "d").with_span(Some(Span::new(3, 1))),
            ];
            perm.iter().map(|&i| pool[i].clone()).collect::<Vec<_>>()
        };
        let mut a = build(&[0, 1, 2, 3, 4, 5]);
        let mut b = build(&[5, 3, 1, 4, 0, 2]);
        sort_diagnostics(&mut a);
        sort_diagnostics(&mut b);
        assert_eq!(a, b, "order must not depend on insertion order");
        let codes: Vec<&str> = a.iter().map(|d| d.code.as_str()).collect();
        // Strict (code, then location) order — a warning with a lower code
        // (MP007) prints before a deny with a higher code (MP201).
        assert_eq!(
            codes,
            ["MP001", "MP001", "MP007", "MP201", "MP403", "MP405"]
        );
        // Within one code, spans order the output (2:7 before 5:2).
        assert_eq!(a[0].span, Some(Span::new(2, 7)));
        assert_eq!(a[1].span, Some(Span::new(5, 2)));
    }

    /// Golden test for the `--json` schema: key set, key order, and value
    /// shapes are a stable contract — CI asserts on them.
    #[test]
    fn json_schema_is_golden() {
        let d = Diagnostic::new(Code::UnsafeRule, "head variable `Y` is not bound")
            .with_span(Some(Span::new(2, 14)))
            .with_note("range restriction, §1");
        assert_eq!(
            d.to_json("test.dl"),
            "{\"code\": \"MP001\", \"severity\": \"error\", \
             \"message\": \"head variable `Y` is not bound\", \
             \"file\": \"test.dl\", \"line\": 2, \"col\": 14, \
             \"note\": \"range restriction, §1\"}"
        );
        let bare = Diagnostic::new(Code::SingletonVariable, "variable `X` used once");
        assert_eq!(
            bare.to_json("a.dl"),
            "{\"code\": \"MP007\", \"severity\": \"warning\", \
             \"message\": \"variable `X` used once\", \
             \"file\": \"a.dl\", \"line\": null, \"col\": null, \"note\": null}"
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic::new(Code::UnsafeRule, "quote \" backslash \\ newline \n tab \t");
        let j = d.to_json("x.dl");
        assert!(
            j.contains("quote \\\" backslash \\\\ newline \\n tab \\t"),
            "{j}"
        );
    }

    #[test]
    fn json_array_shape() {
        let v = vec![
            Diagnostic::new(Code::UnsafeRule, "a"),
            Diagnostic::new(Code::NoQuery, "b"),
        ];
        let j = diagnostics_to_json(&v, "f.dl");
        assert!(j.starts_with("[\n"), "{j}");
        assert!(j.ends_with("]\n"), "{j}");
        assert_eq!(j.matches("\"code\"").count(), 2);
        assert!(diagnostics_to_json(&[], "f.dl").contains("[\n]"));
    }
}
