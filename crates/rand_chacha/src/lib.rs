#![warn(missing_docs)]

//! # rand_chacha (vendored stand-in)
//!
//! Offline replacement for the `rand_chacha` crate providing
//! [`ChaCha8Rng`]: a genuine ChaCha stream cipher core (8 rounds) driven
//! through the workspace `rand` traits. Output differs from the upstream
//! crate's byte-for-byte, but every consumer in this workspace only needs
//! *deterministic, well-mixed* streams per seed, which this provides.

use rand::{RngCore, SeedableRng, SplitMix64};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher state: 4 constant words, 8 key words, block counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Build from a 256-bit key (eight little-endian words).
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&key);
        // counter + nonce start at zero
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // double round: 4 column + 4 diagonal quarter rounds
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key, as rand_core does.
        let mut mix = SplitMix64::new(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = mix.next_u64();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_key_block_mixes() {
        // Sanity: the keystream is not degenerate for the all-zero key.
        let mut rng = ChaCha8Rng::from_key([0; 8]);
        let words: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(words.iter().any(|&w| w != 0));
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        assert!(distinct.len() > 12, "keystream words look repetitive");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..500 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
        }
    }
}
