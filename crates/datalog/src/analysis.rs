//! Predicate-level dependency analysis.
//!
//! The paper's §1.1 survey distinguishes methods by what recursion they
//! handle: Henschen–Naqvi is limited to *linear* recursion ("the head of
//! any rule is recursively related to at most one subgoal in the same
//! rule"), while the message-passing framework "handles nonlinear
//! recursion, in which a goal depends recursively on two or more of its
//! subgoals in the same rule" (§1.2). This module computes the predicate
//! dependency graph, its strongly connected components, and per-rule
//! linearity, so evaluators and benches can classify programs the same
//! way the paper does.

use crate::{Predicate, Program, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Result of analysing a program's predicate dependencies.
#[derive(Clone, Debug)]
pub struct DependencyAnalysis {
    /// Every predicate mentioned in the program (heads and bodies).
    pub predicates: Vec<Predicate>,
    /// `depends[p]` = predicates appearing in bodies of rules with head `p`.
    pub depends: BTreeMap<Predicate, BTreeSet<Predicate>>,
    /// Strongly connected components of the dependency graph, in reverse
    /// topological order (callees before callers).
    pub sccs: Vec<Vec<Predicate>>,
    /// Predicates that are recursive (in a nontrivial SCC, or self-loop).
    pub recursive: BTreeSet<Predicate>,
}

impl DependencyAnalysis {
    /// Analyse a program.
    pub fn of(program: &Program) -> Self {
        let mut depends: BTreeMap<Predicate, BTreeSet<Predicate>> = BTreeMap::new();
        let mut preds: BTreeSet<Predicate> = BTreeSet::new();
        for r in &program.rules {
            preds.insert(r.head.pred.clone());
            let entry = depends.entry(r.head.pred.clone()).or_default();
            // Negated subgoals are dependencies too: relevance and SCC
            // structure must see them (stratification adds polarity labels
            // on its own graph in `mp-analyze`).
            for b in r.body.iter().chain(r.neg.iter()) {
                preds.insert(b.pred.clone());
                entry.insert(b.pred.clone());
            }
        }
        for f in &program.facts {
            preds.insert(f.pred.clone());
        }
        let predicates: Vec<Predicate> = preds.into_iter().collect();
        let sccs = tarjan_sccs(&predicates, &depends);
        let mut recursive = BTreeSet::new();
        for scc in &sccs {
            let self_loop =
                scc.len() == 1 && depends.get(&scc[0]).is_some_and(|d| d.contains(&scc[0]));
            if scc.len() > 1 || self_loop {
                recursive.extend(scc.iter().cloned());
            }
        }
        DependencyAnalysis {
            predicates,
            depends,
            sccs,
            recursive,
        }
    }

    /// True if `p` and `q` are mutually recursive (same nontrivial SCC, or
    /// equal and recursive).
    pub fn mutually_recursive(&self, p: &Predicate, q: &Predicate) -> bool {
        if p == q {
            return self.recursive.contains(p);
        }
        self.sccs
            .iter()
            .any(|scc| scc.contains(p) && scc.contains(q))
    }

    /// A rule is *linear* if at most one body atom's predicate is mutually
    /// recursive with the head (§1.1 on Henschen–Naqvi).
    pub fn rule_is_linear(&self, rule: &Rule) -> bool {
        let recursive_subgoals = rule
            .body
            .iter()
            .filter(|b| self.mutually_recursive(&rule.head.pred, &b.pred))
            .count();
        recursive_subgoals <= 1
    }

    /// A program is linear if all its rules are.
    pub fn program_is_linear(&self, program: &Program) -> bool {
        program.rules.iter().all(|r| self.rule_is_linear(r))
    }

    /// Predicates reachable from `goal` in the dependency graph —
    /// the McKay–Shapiro-style relevance set (§1.1): the predicates whose
    /// relations could contribute to the query at all, ignoring bindings.
    pub fn relevant_to_goal(&self) -> BTreeSet<Predicate> {
        let goal = Program::goal_pred();
        let mut seen = BTreeSet::new();
        let mut stack = vec![goal];
        while let Some(p) = stack.pop() {
            if !seen.insert(p.clone()) {
                continue;
            }
            if let Some(deps) = self.depends.get(&p) {
                for q in deps {
                    if !seen.contains(q) {
                        stack.push(q.clone());
                    }
                }
            }
        }
        seen
    }
}

/// Tarjan's strongly-connected-components algorithm over the predicate
/// graph, iterative to keep deep programs off the call stack. Components
/// are emitted callees-first (reverse topological order).
fn tarjan_sccs(
    nodes: &[Predicate],
    edges: &BTreeMap<Predicate, BTreeSet<Predicate>>,
) -> Vec<Vec<Predicate>> {
    let index_of: BTreeMap<&Predicate, usize> =
        nodes.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let succ: Vec<Vec<usize>> = nodes
        .iter()
        .map(|p| {
            edges
                .get(p)
                .map(|s| s.iter().filter_map(|q| index_of.get(q).copied()).collect())
                .unwrap_or_default()
        })
        .collect();

    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<Predicate>> = Vec::new();

    // Explicit DFS state machine: (node, next-successor-position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pi)) = work.last_mut() {
            if *pi == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*pi) {
                *pi += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(nodes[w].clone());
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyse(src: &str) -> (Program, DependencyAnalysis) {
        let p = parse_program(src).unwrap();
        let a = DependencyAnalysis::of(&p);
        (p, a)
    }

    #[test]
    fn linear_tc_is_linear_and_recursive() {
        let (p, a) = analyse(
            "path(X,Y) :- edge(X,Y).
             path(X,Z) :- path(X,Y), edge(Y,Z).
             ?- path(1,Z).",
        );
        let path = Predicate::new("path");
        assert!(a.recursive.contains(&path));
        assert!(!a.recursive.contains(&Predicate::new("edge")));
        assert!(a.program_is_linear(&p));
    }

    #[test]
    fn nonlinear_tc_detected() {
        let (p, a) = analyse(
            "path(X,Y) :- edge(X,Y).
             path(X,Z) :- path(X,Y), path(Y,Z).
             ?- path(1,Z).",
        );
        assert!(!a.program_is_linear(&p));
        let nonlinear = p.rules.iter().filter(|r| !a.rule_is_linear(r)).count();
        assert_eq!(nonlinear, 1);
    }

    #[test]
    fn mutual_recursion_in_one_scc() {
        let (_, a) = analyse(
            "even(X) :- zero(X).
             even(X) :- succ(Y,X), odd(Y).
             odd(X) :- succ(Y,X), even(X2), eq(X2,Y).
             ?- even(4).",
        );
        // even/odd wrong on purpose logically; structurally they are
        // mutually recursive.
        let even = Predicate::new("even");
        let odd = Predicate::new("odd");
        assert!(a.mutually_recursive(&even, &odd));
        assert!(a.recursive.contains(&even) && a.recursive.contains(&odd));
    }

    #[test]
    fn sccs_in_reverse_topological_order() {
        let (_, a) = analyse(
            "a(X) :- b(X).
             b(X) :- c(X).
             c(X) :- e(X).
             ?- a(1).",
        );
        let pos = |name: &str| {
            a.sccs
                .iter()
                .position(|s| s.contains(&Predicate::new(name)))
                .unwrap()
        };
        assert!(pos("e") < pos("c"));
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
        assert!(pos("a") < pos("goal"));
    }

    #[test]
    fn relevance_excludes_unreachable() {
        let (_, a) = analyse(
            "p(X) :- e(X).
             junk(X) :- j(X).
             ?- p(1).",
        );
        let rel = a.relevant_to_goal();
        assert!(rel.contains(&Predicate::new("p")));
        assert!(rel.contains(&Predicate::new("e")));
        assert!(!rel.contains(&Predicate::new("junk")));
        assert!(!rel.contains(&Predicate::new("j")));
    }

    #[test]
    fn self_loop_is_recursive_component() {
        let (_, a) = analyse("p(X) :- p(X). ?- p(1).");
        assert!(a.recursive.contains(&Predicate::new("p")));
        // goal is not recursive.
        assert!(!a.recursive.contains(&Predicate::new("goal")));
    }

    #[test]
    fn nonrecursive_program_has_no_recursive_preds() {
        let (_, a) = analyse("p(X,Y) :- e(X,Y). q(X) :- p(X,X). ?- q(1).");
        assert!(a.recursive.is_empty());
    }

    #[test]
    fn three_predicate_cycle_is_one_component() {
        let (p, a) = analyse(
            "a(X, Y) :- e(X, Y).
             a(X, Z) :- e(X, Y), b(Y, Z).
             b(X, Z) :- f(X, Y), c(Y, Z).
             c(X, Z) :- g(X, Y), a(Y, Z).
             ?- a(0, Z).",
        );
        let (pa, pb, pc) = (
            Predicate::new("a"),
            Predicate::new("b"),
            Predicate::new("c"),
        );
        let scc = a
            .sccs
            .iter()
            .find(|s| s.contains(&pa))
            .expect("a is in some component");
        assert!(scc.contains(&pb) && scc.contains(&pc));
        assert_eq!(scc.len(), 3);
        assert!(a.mutually_recursive(&pa, &pb));
        assert!(a.mutually_recursive(&pb, &pc));
        assert!(a.mutually_recursive(&pa, &pc));
        // Each recursive rule reaches the cycle through exactly one
        // subgoal, so the program is still linear.
        assert!(a.program_is_linear(&p));
        // EDB predicates stay outside the component.
        for name in ["e", "f", "g"] {
            assert!(!a.recursive.contains(&Predicate::new(name)));
        }
    }

    #[test]
    fn nonlinearity_through_mutual_recursion() {
        // The second rule for `a` reaches the a/b component through TWO
        // subgoals — and neither mentions `a` itself. Linearity must be
        // judged by mutual recursion with the head, not by name equality.
        let (p, a) = analyse(
            "a(X, Y) :- e(X, Y).
             a(X, Z) :- b(X, Y), b(Y, Z).
             b(X, Y) :- a(X, Y).
             ?- a(0, Z).",
        );
        assert!(a.mutually_recursive(&Predicate::new("a"), &Predicate::new("b")));
        assert!(!a.program_is_linear(&p));
        let nonlinear: Vec<_> = p.rules.iter().filter(|r| !a.rule_is_linear(r)).collect();
        assert_eq!(nonlinear.len(), 1);
        assert_eq!(nonlinear[0].head.pred, Predicate::new("a"));
    }

    #[test]
    fn self_loop_beside_larger_component() {
        // A self-recursive predicate feeding a two-predicate cycle: two
        // distinct recursive components, emitted callees-first.
        let (_, a) = analyse(
            "s(X, Y) :- e(X, Y).
             s(X, Z) :- s(X, Y), e(Y, Z).
             p(X, Y) :- s(X, Y).
             p(X, Z) :- q(X, Z).
             q(X, Z) :- p(X, Y), e(Y, Z).
             ?- p(0, Z).",
        );
        let s = Predicate::new("s");
        let (pp, pq) = (Predicate::new("p"), Predicate::new("q"));
        assert!(a.recursive.contains(&s));
        assert!(a.mutually_recursive(&pp, &pq));
        assert!(!a.mutually_recursive(&s, &pp));
        let pos = |pred: &Predicate| a.sccs.iter().position(|c| c.contains(pred)).unwrap();
        assert!(pos(&s) < pos(&pp), "callee component first");
        assert_eq!(pos(&pp), pos(&pq));
    }

    #[test]
    fn negated_subgoals_are_dependencies() {
        let (_, a) = analyse(
            "moved(X) :- move(X, Y).
             stuck(X) :- pos(X), !moved(X).
             ?- stuck(X).",
        );
        let rel = a.relevant_to_goal();
        assert!(rel.contains(&Predicate::new("moved")));
        assert!(rel.contains(&Predicate::new("move")));
        assert!(a
            .depends
            .get(&Predicate::new("stuck"))
            .is_some_and(|d| d.contains(&Predicate::new("moved"))));
        // Negation-through-recursion still forms a cycle structurally.
        let (_, a) = analyse("win(X) :- move(X, Y), !win(Y). ?- win(1).");
        assert!(a.recursive.contains(&Predicate::new("win")));
    }

    #[test]
    fn self_loop_subgoal_counts_toward_linearity() {
        // Two occurrences of the head's own predicate → nonlinear, even
        // though the component is a singleton self-loop.
        let (p, a) = analyse(
            "t(X, Y) :- e(X, Y).
             t(X, Z) :- t(X, Y), t(Y, Z).
             ?- t(0, Z).",
        );
        assert!(a.recursive.contains(&Predicate::new("t")));
        assert!(!a.program_is_linear(&p));
    }
}
