//! AST for function-free Horn clauses, extended with stratified negation
//! (`!subgoal`) and head aggregates (`count/sum/min/max<Var>`).

use mp_storage::Value;
use std::fmt;
use std::sync::Arc;

pub use mp_storage::AggFunc;

/// A predicate symbol. Predicates are identified by name; arity is checked
/// separately during validation (one arity per name).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Predicate(pub Arc<str>);

impl Predicate {
    /// Create a predicate from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Predicate(Arc::from(name.as_ref()))
    }

    /// The predicate's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Predicate {
    fn from(s: &str) -> Self {
        Predicate::new(s)
    }
}

/// A logical variable, identified by name within a rule.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub Arc<str>);

impl Var {
    /// Create a variable from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: a variable or a constant. The system is function-free (§1), so
/// there are no compound terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Var::new(name))
    }

    /// Shorthand for a constant term.
    pub fn val(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// True for variable terms.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An atomic formula: a predicate applied to terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Predicate,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Create an atom.
    pub fn new(pred: impl Into<Predicate>, terms: Vec<Term>) -> Self {
        Atom {
            pred: pred.into(),
            terms,
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Variables occurring in the atom, in order of first occurrence,
    /// deduplicated.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// True if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// Convert a ground atom to a tuple of its constants.
    pub fn to_tuple(&self) -> Option<mp_storage::Tuple> {
        self.terms
            .iter()
            .map(|t| t.as_const().cloned())
            .collect::<Option<Vec<_>>>()
            .map(mp_storage::Tuple::new)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A head aggregate: one head position holds `func<Var>` instead of a
/// plain term. The remaining head positions are the grouping key; the
/// aggregate folds the distinct bindings of `var` per group (set
/// semantics, like the rest of the data plane).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// The fold function.
    pub func: AggFunc,
    /// The aggregated body variable.
    pub var: Var,
    /// Which head position carries the aggregate output.
    pub position: usize,
}

impl fmt::Debug for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<{}>", self.func.name(), self.var)
    }
}

/// A Horn clause: `head :- body`, extended with negated subgoals and an
/// optional head aggregate. An empty rule (no subgoals at all) makes the
/// rule a fact (which must then be ground).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The positive literal (the rule's head, §1). When the rule
    /// aggregates, the aggregate position holds `Term::Var(agg.var)` so
    /// arity/range-restriction machinery sees an ordinary head variable.
    pub head: Atom,
    /// The positive subgoals (the rule's body literals, §1).
    pub body: Vec<Atom>,
    /// Negated subgoals (`!p(..)`): satisfied when no matching tuple
    /// exists. Every variable must be bound by a positive subgoal.
    pub neg: Vec<Atom>,
    /// Head aggregate, when present.
    pub agg: Option<AggSpec>,
}

impl Rule {
    /// Create a rule (positive subgoals only).
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Rule {
            head,
            body,
            neg: Vec::new(),
            agg: None,
        }
    }

    /// Create a fact (empty body).
    pub fn fact(head: Atom) -> Self {
        Rule {
            head,
            body: Vec::new(),
            neg: Vec::new(),
            agg: None,
        }
    }

    /// Attach negated subgoals (builder form).
    pub fn with_neg(mut self, neg: Vec<Atom>) -> Self {
        self.neg = neg;
        self
    }

    /// Attach a head aggregate (builder form).
    pub fn with_agg(mut self, agg: AggSpec) -> Self {
        self.agg = Some(agg);
        self
    }

    /// True if the rule has no subgoals of any polarity and no aggregate.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.neg.is_empty() && self.agg.is_none()
    }

    /// All variables of the rule (head first, then positive body, then
    /// negated subgoals), in order of first occurrence, deduplicated.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for atom in std::iter::once(&self.head)
            .chain(self.body.iter())
            .chain(self.neg.iter())
        {
            for v in atom.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Check range restriction: every head variable occurs in the
    /// positive body. Returns the first offending variable, if any.
    /// (Negated-subgoal binding is checked separately — MP011.)
    pub fn unsafe_var(&self) -> Option<Var> {
        let body_vars: Vec<Var> = self.body.iter().flat_map(|a| a.vars()).collect();
        self.head
            .vars()
            .into_iter()
            .find(|v| !body_vars.contains(v))
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            match &self.agg {
                None => write!(f, "{}", self.head),
                Some(agg) => {
                    write!(f, "{}(", self.head.pred)?;
                    for (i, t) in self.head.terms.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        if i == agg.position {
                            write!(f, "{agg:?}")?;
                        } else {
                            write!(f, "{t}")?;
                        }
                    }
                    write!(f, ")")
                }
            }
        };
        if self.is_fact() {
            head(f)?;
            return write!(f, ".");
        }
        head(f)?;
        write!(f, " :- ")?;
        let mut first = true;
        for a in &self.body {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for a in &self.neg {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "!{a}")?;
        }
        write!(f, ".")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Build an atom tersely: `atom!(p(var "X", val 3))` is unwieldy; instead
/// use the parser in tests, or `Atom::new` directly. This macro covers the
/// common positional form used across the workspace's unit tests:
/// `atom!("p"; var "X", val 1)`.
#[macro_export]
macro_rules! atom {
    ($p:expr $(; $($kind:ident $v:expr),*)?) => {
        $crate::Atom::new($p, vec![$($($crate::atom!(@term $kind $v)),*)?])
    };
    (@term var $v:expr) => { $crate::Term::var($v) };
    (@term val $v:expr) => { $crate::Term::val($v) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_vars_dedup_in_order() {
        let a = Atom::new(
            "p",
            vec![Term::var("X"), Term::val(1), Term::var("Y"), Term::var("X")],
        );
        assert_eq!(a.vars(), vec![Var::new("X"), Var::new("Y")]);
        assert!(!a.is_ground());
    }

    #[test]
    fn ground_atom_to_tuple() {
        let a = Atom::new("p", vec![Term::val(1), Term::val("a")]);
        assert!(a.is_ground());
        assert_eq!(a.to_tuple(), Some(mp_storage::tuple![1, "a"]));
        let b = Atom::new("p", vec![Term::var("X")]);
        assert_eq!(b.to_tuple(), None);
    }

    #[test]
    fn rule_vars_and_safety() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var("X"), Term::var("Z")]),
            vec![
                Atom::new("a", vec![Term::var("X"), Term::var("Y")]),
                Atom::new("b", vec![Term::var("Y"), Term::var("Z")]),
            ],
        );
        assert_eq!(r.vars(), vec![Var::new("X"), Var::new("Z"), Var::new("Y")]);
        assert_eq!(r.unsafe_var(), None);

        let bad = Rule::new(
            Atom::new("p", vec![Term::var("X"), Term::var("W")]),
            vec![Atom::new("a", vec![Term::var("X")])],
        );
        assert_eq!(bad.unsafe_var(), Some(Var::new("W")));
    }

    #[test]
    fn display_forms() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![Atom::new("e", vec![Term::var("X"), Term::val(3)])],
        );
        assert_eq!(format!("{r}"), "p(X) :- e(X, 3).");
        let f = Rule::fact(Atom::new("e", vec![Term::val(1), Term::val(2)]));
        assert_eq!(format!("{f}"), "e(1, 2).");
    }

    #[test]
    fn atom_macro() {
        let a = atom!("p"; var "X", val 3);
        assert_eq!(a, Atom::new("p", vec![Term::var("X"), Term::val(3)]));
        let n = atom!("nullary");
        assert_eq!(n.arity(), 0);
    }
}
