//! Substitutions, most general unifiers, renaming, and variant testing.
//!
//! Rule/goal graph construction (§2.1) creates rule nodes holding "a copy
//! of the rule that began with all new variables, then had the most
//! general unifier (mgu) applied", and stops expansion "whenever an IDB
//! subgoal is a variant of one of its ancestors". This module supplies
//! exactly those operations for the function-free term language.

use crate::{Atom, Rule, Term, Var};
use std::collections::HashMap;

/// A substitution: a finite map from variables to terms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<Var, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Bind a variable, resolving the term through the current bindings.
    fn bind(&mut self, v: Var, t: Term) {
        let t = self.apply_term(&t);
        // Normalize existing bindings that mention `v`.
        let resolved: Vec<(Var, Term)> = self
            .map
            .iter()
            .filter_map(|(k, old)| match old {
                Term::Var(w) if *w == v => Some((k.clone(), t.clone())),
                _ => None,
            })
            .collect();
        for (k, nt) in resolved {
            self.map.insert(k, nt);
        }
        self.map.insert(v, t);
    }

    /// Look up a variable's binding.
    pub fn get(&self, v: &Var) -> Option<&Term> {
        self.map.get(v)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply to a term (following chains).
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Const(_) => t.clone(),
            Term::Var(v) => match self.map.get(v) {
                None => t.clone(),
                Some(Term::Const(c)) => Term::Const(*c),
                Some(Term::Var(w)) if w == v => t.clone(),
                Some(next @ Term::Var(_)) => self.apply_term(&next.clone()),
            },
        }
    }

    /// Apply to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred.clone(),
            terms: a.terms.iter().map(|t| self.apply_term(t)).collect(),
        }
    }

    /// Apply to a rule (all polarities, and the aggregate's fold variable
    /// when the rule has one).
    pub fn apply_rule(&self, r: &Rule) -> Rule {
        let agg = r.agg.as_ref().map(|a| {
            let var = match self.apply_term(&Term::Var(a.var.clone())) {
                Term::Var(v) => v,
                // An aggregate variable bound to a constant has no
                // meaningful fold; keep the original name so the rule
                // stays well-formed and safety checks can reject it.
                Term::Const(_) => a.var.clone(),
            };
            crate::AggSpec {
                func: a.func,
                var,
                position: a.position,
            }
        });
        Rule {
            head: self.apply_atom(&r.head),
            body: r.body.iter().map(|a| self.apply_atom(a)).collect(),
            neg: r.neg.iter().map(|a| self.apply_atom(a)).collect(),
            agg,
        }
    }
}

/// Compute the most general unifier of two atoms, if one exists.
///
/// Function-free unification: no occurs-check is needed because terms are
/// flat (a variable can only be bound to a constant or another variable).
pub fn mgu(a: &Atom, b: &Atom) -> Option<Subst> {
    if a.pred != b.pred || a.arity() != b.arity() {
        return None;
    }
    let mut s = Subst::new();
    for (ta, tb) in a.terms.iter().zip(b.terms.iter()) {
        let ta = s.apply_term(ta);
        let tb = s.apply_term(tb);
        match (ta, tb) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return None;
                }
            }
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                if Term::Var(v.clone()) != t {
                    s.bind(v, t);
                }
            }
        }
    }
    Some(s)
}

/// Rename a rule so that all its variables are fresh: each variable `X`
/// becomes `X~<n>` for a caller-supplied counter. Returns the renamed rule.
pub fn rename_apart(rule: &Rule, counter: &mut u64) -> Rule {
    let n = *counter;
    *counter += 1;
    let mut s = Subst::new();
    for v in rule.vars() {
        s.bind(v.clone(), Term::var(format!("{}~{}", v.name(), n)));
    }
    s.apply_rule(rule)
}

/// Test whether two atoms are variants: identical up to a consistent
/// renaming of variables (a bijection between their variables).
///
/// Repeated-variable patterns matter — `p(X, X, Z)` and `p(V, V, V)` are
/// *not* variants (Thm 2.1's proof calls this out) — and constants must
/// match exactly.
pub fn variants(a: &Atom, b: &Atom) -> bool {
    if a.pred != b.pred || a.arity() != b.arity() {
        return false;
    }
    let mut fwd: HashMap<&Var, &Var> = HashMap::new();
    let mut bwd: HashMap<&Var, &Var> = HashMap::new();
    for (ta, tb) in a.terms.iter().zip(b.terms.iter()) {
        match (ta, tb) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return false;
                }
            }
            (Term::Var(x), Term::Var(y)) => {
                if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;

    #[test]
    fn mgu_constants_must_match() {
        let a = atom!("p"; val 1, var "X");
        let b = atom!("p"; val 1, val 2);
        let s = mgu(&a, &b).unwrap();
        assert_eq!(s.apply_atom(&a), atom!("p"; val 1, val 2));
        let c = atom!("p"; val 9, var "X");
        assert!(mgu(&c, &b).is_none());
    }

    #[test]
    fn mgu_different_predicates_fail() {
        assert!(mgu(&atom!("p"; var "X"), &atom!("q"; var "X")).is_none());
        assert!(mgu(&atom!("p"; var "X"), &atom!("p"; var "X", var "Y")).is_none());
    }

    #[test]
    fn mgu_var_to_var_chains() {
        // p(X, X) with p(Y, 3) must bind both X and Y to 3.
        let a = atom!("p"; var "X", var "X");
        let b = atom!("p"; var "Y", val 3);
        let s = mgu(&a, &b).unwrap();
        assert_eq!(s.apply_atom(&a), atom!("p"; val 3, val 3));
        assert_eq!(s.apply_atom(&b), atom!("p"; val 3, val 3));
    }

    #[test]
    fn mgu_repeated_vars_conflicting_constants_fail() {
        let a = atom!("p"; var "X", var "X");
        let b = atom!("p"; val 1, val 2);
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn mgu_is_most_general() {
        // p(X, Y) with p(U, V): all four stay variables, consistently.
        let a = atom!("p"; var "X", var "Y");
        let b = atom!("p"; var "U", var "V");
        let s = mgu(&a, &b).unwrap();
        let ra = s.apply_atom(&a);
        let rb = s.apply_atom(&b);
        assert_eq!(ra, rb);
        assert!(ra.terms.iter().all(Term::is_var));
    }

    #[test]
    fn rename_apart_freshens() {
        let r = Rule::new(
            atom!("p"; var "X", var "Y"),
            vec![atom!("e"; var "X", var "Y")],
        );
        let mut c = 0;
        let r1 = rename_apart(&r, &mut c);
        let r2 = rename_apart(&r, &mut c);
        assert_eq!(c, 2);
        let v1 = r1.vars();
        let v2 = r2.vars();
        assert!(v1.iter().all(|v| !v2.contains(v)));
        // Structure is preserved.
        assert!(variants(&r1.head, &r2.head));
    }

    #[test]
    fn variants_bijection_required() {
        assert!(variants(
            &atom!("p"; var "X", var "Y"),
            &atom!("p"; var "A", var "B")
        ));
        // Repeated variable patterns must match (Thm 2.1).
        assert!(!variants(
            &atom!("p"; var "X", var "X", var "Z"),
            &atom!("p"; var "V", var "V", var "V")
        ));
        assert!(variants(
            &atom!("p"; var "X", var "X", var "Z"),
            &atom!("p"; var "V", var "V", var "W")
        ));
        // Constants must match positionally.
        assert!(!variants(
            &atom!("p"; val 1, var "X"),
            &atom!("p"; var "Y", var "X")
        ));
        assert!(variants(
            &atom!("p"; val 1, var "X"),
            &atom!("p"; val 1, var "Q")
        ));
    }

    #[test]
    fn rename_apart_covers_neg_and_agg() {
        use crate::parser::parse_rule;
        let r =
            parse_rule("rcount(X, count<Y>) :- reach(X, Y), !blocked(X, Z), near(X, Z).").unwrap();
        let mut c = 7;
        let r1 = rename_apart(&r, &mut c);
        // Negated subgoals are renamed consistently with the positives.
        assert_eq!(r1.neg[0], crate::atom!("blocked"; var "X~7", var "Z~7"));
        // The aggregate's fold variable follows the head rename.
        let agg = r1.agg.as_ref().unwrap();
        assert_eq!(agg.var, Var::new("Y~7"));
        assert_eq!(r1.head.terms[agg.position], Term::var("Y~7"));
    }

    #[test]
    fn subst_apply_follows_chains() {
        let mut s = Subst::new();
        s.bind(Var::new("X"), Term::var("Y"));
        s.bind(Var::new("Y"), Term::val(5));
        assert_eq!(s.apply_term(&Term::var("X")), Term::val(5));
    }
}
