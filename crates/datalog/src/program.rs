//! Programs: the IDB (PIDB ∪ query rules) plus §1 well-formedness checks.

use crate::{Atom, Database, DatalogError, Predicate, Rule, GOAL};
use std::collections::BTreeMap;

/// An intentional database: the union of the permanent IDB and the query
/// rules (§1). Facts encountered in source text are kept separately so
/// they can be loaded into a [`Database`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Proper rules (nonempty body).
    pub rules: Vec<Rule>,
    /// Ground facts parsed alongside the rules.
    pub facts: Vec<Atom>,
}

impl Program {
    /// Build a program from rules, separating out facts.
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut prog = Program::default();
        for r in rules {
            if r.is_fact() {
                prog.facts.push(r.head);
            } else {
                prog.rules.push(r);
            }
        }
        prog
    }

    /// The goal predicate.
    pub fn goal_pred() -> Predicate {
        Predicate::new(GOAL)
    }

    /// Rules whose head is `goal` (the query, §1).
    pub fn query_rules(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.iter().filter(|r| r.head.pred.name() == GOAL)
    }

    /// Rules whose head is not `goal` (the PIDB, §1).
    pub fn pidb_rules(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.iter().filter(|r| r.head.pred.name() != GOAL)
    }

    /// All rules defining `pred` (by name and arity).
    pub fn rules_for(&self, pred: &Predicate, arity: usize) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.head.pred == *pred && r.head.arity() == arity)
            .collect()
    }

    /// Predicates appearing in rule heads (the IDB predicates), in name
    /// order with their arities.
    pub fn idb_predicates(&self) -> BTreeMap<Predicate, usize> {
        let mut out = BTreeMap::new();
        for r in &self.rules {
            out.entry(r.head.pred.clone())
                .or_insert_with(|| r.head.arity());
        }
        out
    }

    /// Load this program's inline facts into a database.
    pub fn load_facts(&self, db: &mut Database) -> Result<(), DatalogError> {
        db.bulk_insert_atoms(&self.facts)?;
        Ok(())
    }

    /// Validate the program against the §1 conditions relative to `db`:
    ///
    /// 1. every rule is range-restricted (safe);
    /// 2. no EDB predicate occurs positively (in a head) in the IDB;
    /// 3. `goal` occurs in no rule body;
    /// 4. at least one `goal` rule exists;
    /// 5. every predicate has a single arity across the program and EDB;
    /// 6. facts are ground (enforced structurally by [`Database`]).
    pub fn validate(&self, db: &Database) -> Result<(), DatalogError> {
        let mut arities: BTreeMap<Predicate, usize> = BTreeMap::new();
        for (p, r) in db.iter() {
            arities.insert(p.clone(), r.arity());
        }
        let mut check_arity = |a: &Atom| -> Result<(), DatalogError> {
            match arities.get(&a.pred) {
                Some(&n) if n != a.arity() => Err(DatalogError::ArityConflict {
                    pred: a.pred.name().to_string(),
                    a: n,
                    b: a.arity(),
                }),
                Some(_) => Ok(()),
                None => {
                    arities.insert(a.pred.clone(), a.arity());
                    Ok(())
                }
            }
        };

        let mut has_query = false;
        for r in &self.rules {
            check_arity(&r.head)?;
            for b in r.body.iter().chain(r.neg.iter()) {
                check_arity(b)?;
                if b.pred.name() == GOAL {
                    return Err(DatalogError::GoalInBody);
                }
            }
            if let Some(v) = r.unsafe_var() {
                return Err(DatalogError::UnsafeRule {
                    rule: r.to_string(),
                    var: v.name().to_string(),
                });
            }
            if db.contains_pred(&r.head.pred) {
                return Err(DatalogError::EdbPredicateInHead {
                    pred: r.head.pred.name().to_string(),
                });
            }
            if r.head.pred.name() == GOAL {
                has_query = true;
            }
        }
        for f in &self.facts {
            check_arity(f)?;
            if !f.is_ground() {
                return Err(DatalogError::NonGroundFact {
                    atom: f.to_string(),
                });
            }
        }
        if !has_query {
            return Err(DatalogError::NoQuery);
        }
        Ok(())
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for fact in &self.facts {
            writeln!(f, "{fact}.")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, Term};
    use mp_storage::tuple;

    fn tc_program() -> Program {
        Program::new(vec![
            Rule::new(atom!("goal"; var "Z"), vec![atom!("path"; val 1, var "Z")]),
            Rule::new(
                atom!("path"; var "X", var "Y"),
                vec![atom!("edge"; var "X", var "Y")],
            ),
            Rule::new(
                atom!("path"; var "X", var "Z"),
                vec![
                    atom!("path"; var "X", var "Y"),
                    atom!("edge"; var "Y", var "Z"),
                ],
            ),
        ])
    }

    fn edb() -> Database {
        let mut db = Database::new();
        db.insert("edge", tuple![1, 2]).unwrap();
        db
    }

    #[test]
    fn valid_program_passes() {
        tc_program().validate(&edb()).unwrap();
    }

    #[test]
    fn query_and_pidb_split() {
        let p = tc_program();
        assert_eq!(p.query_rules().count(), 1);
        assert_eq!(p.pidb_rules().count(), 2);
        assert_eq!(p.rules_for(&Predicate::new("path"), 2).len(), 2);
        assert_eq!(p.rules_for(&Predicate::new("path"), 3).len(), 0);
    }

    #[test]
    fn rejects_edb_head() {
        let mut p = tc_program();
        p.rules.push(Rule::new(
            atom!("edge"; var "X", var "X"),
            vec![atom!("path"; var "X", var "X")],
        ));
        assert!(matches!(
            p.validate(&edb()),
            Err(DatalogError::EdbPredicateInHead { .. })
        ));
    }

    #[test]
    fn rejects_goal_in_body() {
        let mut p = tc_program();
        p.rules
            .push(Rule::new(atom!("q"; var "X"), vec![atom!("goal"; var "X")]));
        assert_eq!(p.validate(&edb()), Err(DatalogError::GoalInBody));
    }

    #[test]
    fn rejects_unsafe_rule() {
        let mut p = tc_program();
        p.rules.push(Rule::new(
            atom!("q"; var "X", var "W"),
            vec![atom!("path"; var "X", var "X")],
        ));
        assert!(matches!(
            p.validate(&edb()),
            Err(DatalogError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn negated_subgoals_are_validated_too() {
        // Arity conflicts and goal-in-body apply to negated subgoals.
        let mut p = tc_program();
        p.rules.push(
            Rule::new(atom!("q"; var "X"), vec![atom!("path"; var "X", var "X")])
                .with_neg(vec![atom!("path"; var "X")]),
        );
        assert!(matches!(
            p.validate(&edb()),
            Err(DatalogError::ArityConflict { .. })
        ));

        let mut p = tc_program();
        p.rules.push(
            Rule::new(atom!("q"; var "X"), vec![atom!("path"; var "X", var "X")])
                .with_neg(vec![atom!("goal"; var "X")]),
        );
        assert_eq!(p.validate(&edb()), Err(DatalogError::GoalInBody));
    }

    #[test]
    fn rejects_missing_query() {
        let p = Program::new(vec![Rule::new(
            atom!("p"; var "X"),
            vec![atom!("e"; var "X")],
        )]);
        assert_eq!(p.validate(&Database::new()), Err(DatalogError::NoQuery));
    }

    #[test]
    fn rejects_arity_conflict() {
        let mut p = tc_program();
        p.rules.push(Rule::new(
            atom!("q"; var "X"),
            vec![atom!("path"; var "X", var "X", var "X")],
        ));
        assert!(matches!(
            p.validate(&edb()),
            Err(DatalogError::ArityConflict { .. })
        ));
    }

    #[test]
    fn facts_are_separated_and_loadable() {
        let p = Program::new(vec![
            Rule::fact(Atom::new("edge", vec![Term::val(1), Term::val(2)])),
            Rule::new(
                atom!("goal"; var "X"),
                vec![atom!("edge"; var "X", var "X")],
            ),
        ]);
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.rules.len(), 1);
        let mut db = Database::new();
        p.load_facts(&mut db).unwrap();
        assert_eq!(db.fact_count(), 1);
    }
}
