//! The extensional database (EDB): named, fixed-arity relations of ground
//! facts, "viewed as a conventional relational database" (§1).

use crate::{Atom, DatalogError, Predicate};
use mp_storage::{Relation, Tuple};
use std::collections::BTreeMap;

/// The EDB: a map from predicate name to relation.
///
/// Iteration over predicates is in name order (BTreeMap), keeping
/// everything downstream deterministic.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: BTreeMap<Predicate, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Declare a relation with the given arity (idempotent; errors on
    /// conflicting arity).
    pub fn declare(
        &mut self,
        pred: impl Into<Predicate>,
        arity: usize,
    ) -> Result<(), DatalogError> {
        let pred = pred.into();
        match self.relations.get(&pred) {
            Some(r) if r.arity() != arity => Err(DatalogError::ArityConflict {
                pred: pred.name().to_string(),
                a: r.arity(),
                b: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.relations.insert(pred, Relation::new(arity));
                Ok(())
            }
        }
    }

    /// Insert a fact tuple, declaring the relation if needed.
    /// Returns whether the tuple was new.
    pub fn insert(
        &mut self,
        pred: impl Into<Predicate>,
        tuple: Tuple,
    ) -> Result<bool, DatalogError> {
        let pred = pred.into();
        self.declare(pred.clone(), tuple.arity())?;
        let rel = self.relations.get_mut(&pred).expect("just declared");
        rel.insert(tuple).map_err(|e| match e {
            mp_storage::StorageError::ArityMismatch { expected, got } => {
                DatalogError::ArityConflict {
                    pred: pred.name().to_string(),
                    a: expected,
                    b: got,
                }
            }
            _ => unreachable!("insert only raises arity errors"),
        })
    }

    /// Insert a ground atom as a fact.
    pub fn insert_atom(&mut self, atom: &Atom) -> Result<bool, DatalogError> {
        let tuple = atom.to_tuple().ok_or_else(|| DatalogError::NonGroundFact {
            atom: atom.to_string(),
        })?;
        self.insert(atom.pred.clone(), tuple)
    }

    /// Bulk-load ground atoms, pre-sizing the process-wide symbol
    /// interner for the load. Returns how many facts were new.
    ///
    /// Symbols in atoms that came through the parser are interned at
    /// parse time, so for those the reservation is a no-op; programmatic
    /// loads that mint string values while building atoms get one
    /// pre-sized table instead of repeated rehashes mid-load
    /// (over-estimating is harmless — see
    /// [`mp_storage::reserve_symbols`]).
    pub fn bulk_insert_atoms<'a>(
        &mut self,
        atoms: impl IntoIterator<Item = &'a Atom>,
    ) -> Result<usize, DatalogError> {
        let atoms: Vec<&Atom> = atoms.into_iter().collect();
        let sym_terms: usize = atoms
            .iter()
            .map(|a| {
                a.terms
                    .iter()
                    .filter(|t| t.as_const().is_some_and(|v| v.as_str().is_some()))
                    .count()
            })
            .sum();
        mp_storage::reserve_symbols(sym_terms);
        let mut new = 0;
        for a in atoms {
            if self.insert_atom(a)? {
                new += 1;
            }
        }
        Ok(new)
    }

    /// The relation for a predicate, if present.
    pub fn relation(&self, pred: &Predicate) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// True if the predicate is an EDB predicate of this database.
    pub fn contains_pred(&self, pred: &Predicate) -> bool {
        self.relations.contains_key(pred)
    }

    /// Iterate (predicate, relation) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Predicate, &Relation)> + '_ {
        self.relations.iter()
    }

    /// All EDB predicate names, in order.
    pub fn predicates(&self) -> impl Iterator<Item = &Predicate> + '_ {
        self.relations.keys()
    }

    /// Total number of facts across all relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Term;
    use mp_storage::tuple;

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        assert!(db.insert("edge", tuple![1, 2]).unwrap());
        assert!(!db.insert("edge", tuple![1, 2]).unwrap());
        assert!(db.insert("edge", tuple![2, 3]).unwrap());
        let rel = db.relation(&Predicate::new("edge")).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(db.fact_count(), 2);
        assert!(db.contains_pred(&Predicate::new("edge")));
        assert!(!db.contains_pred(&Predicate::new("nope")));
    }

    #[test]
    fn arity_conflicts_rejected() {
        let mut db = Database::new();
        db.insert("p", tuple![1, 2]).unwrap();
        assert!(matches!(
            db.insert("p", tuple![1]),
            Err(DatalogError::ArityConflict { .. })
        ));
        assert!(db.declare("p", 2).is_ok());
        assert!(db.declare("p", 3).is_err());
    }

    #[test]
    fn bulk_insert_counts_new_facts_only() {
        let mut db = Database::new();
        let facts = vec![
            Atom::new("likes", vec![Term::val("ann"), Term::val("bo")]),
            Atom::new("likes", vec![Term::val("bo"), Term::val("cy")]),
            Atom::new("likes", vec![Term::val("ann"), Term::val("bo")]),
        ];
        assert_eq!(db.bulk_insert_atoms(&facts).unwrap(), 2);
        assert_eq!(db.fact_count(), 2);
        // Symbols from the load resolve through the interner.
        assert!(mp_storage::symbol_count() >= 3);
    }

    #[test]
    fn insert_atom_requires_ground() {
        let mut db = Database::new();
        let ok = Atom::new("p", vec![Term::val(1)]);
        assert!(db.insert_atom(&ok).unwrap());
        let bad = Atom::new("p", vec![Term::var("X")]);
        assert!(matches!(
            db.insert_atom(&bad),
            Err(DatalogError::NonGroundFact { .. })
        ));
    }
}
