//! EDB statistics: cardinalities and per-column distinct counts.
//!
//! §1.2: "The basic set can be extended in order to pass optimization
//! information, offering the possibility of taking advantage of
//! statistics on the EDB and using various heuristics." These statistics
//! feed the cost-based sideways-information-passing strategy in
//! `mp-rulegoal` and the §4.3 cost model's calibrated variant.

use crate::{Database, Predicate};
use std::collections::{BTreeMap, HashSet};

/// Statistics for one relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationStats {
    /// Row count.
    pub rows: usize,
    /// Distinct values per column.
    pub distinct: Vec<usize>,
    /// For binary relations: the largest number of rows sharing one
    /// column-0 value (the max out-degree when the relation is read as a
    /// graph edge set). `None` for other arities.
    pub max_out_degree: Option<usize>,
    /// For binary relations: the largest number of rows sharing one
    /// column-1 value (max in-degree). `None` for other arities.
    pub max_in_degree: Option<usize>,
}

impl RelationStats {
    /// Estimated rows matching an equality selection on `bound_cols`,
    /// under the uniformity assumption: each bound column divides the
    /// relation by its distinct count.
    pub fn selected_rows(&self, bound_cols: &[usize]) -> f64 {
        let mut est = self.rows as f64;
        for &c in bound_cols {
            let d = self.distinct.get(c).copied().unwrap_or(1).max(1);
            est /= d as f64;
        }
        est
    }
}

/// Statistics for a whole database.
#[derive(Clone, Debug, Default)]
pub struct DbStats {
    per_relation: BTreeMap<Predicate, RelationStats>,
}

impl DbStats {
    /// Collect statistics with one pass per relation.
    pub fn of(db: &Database) -> DbStats {
        let mut per_relation = BTreeMap::new();
        for (pred, rel) in db.iter() {
            let arity = rel.arity();
            let mut seen: Vec<HashSet<&mp_storage::Value>> = vec![HashSet::new(); arity];
            for t in rel.iter() {
                for (c, s) in seen.iter_mut().enumerate() {
                    s.insert(&t[c]);
                }
            }
            // Degree statistics only make sense for edge-shaped (binary)
            // relations; they bound the fan-out of one join step and feed
            // the mp-analyze message-volume estimator.
            let (max_out_degree, max_in_degree) = if arity == 2 {
                let mut out: BTreeMap<&mp_storage::Value, usize> = BTreeMap::new();
                let mut inn: BTreeMap<&mp_storage::Value, usize> = BTreeMap::new();
                for t in rel.iter() {
                    *out.entry(&t[0]).or_insert(0) += 1;
                    *inn.entry(&t[1]).or_insert(0) += 1;
                }
                (
                    Some(out.values().copied().max().unwrap_or(0)),
                    Some(inn.values().copied().max().unwrap_or(0)),
                )
            } else {
                (None, None)
            };
            per_relation.insert(
                pred.clone(),
                RelationStats {
                    rows: rel.len(),
                    distinct: seen.iter().map(HashSet::len).collect(),
                    max_out_degree,
                    max_in_degree,
                },
            );
        }
        DbStats { per_relation }
    }

    /// Statistics for one predicate, if it is an EDB relation.
    pub fn relation(&self, pred: &Predicate) -> Option<&RelationStats> {
        self.per_relation.get(pred)
    }

    /// Number of relations covered.
    pub fn len(&self) -> usize {
        self.per_relation.len()
    }

    /// True when no relations are covered.
    pub fn is_empty(&self) -> bool {
        self.per_relation.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_storage::tuple;

    #[test]
    fn collects_rows_and_distincts() {
        let mut db = Database::new();
        for (a, b) in [(1, 10), (1, 11), (2, 10), (3, 12)] {
            db.insert("e", tuple![a, b]).unwrap();
        }
        let stats = DbStats::of(&db);
        let rs = stats.relation(&Predicate::new("e")).unwrap();
        assert_eq!(rs.rows, 4);
        assert_eq!(rs.distinct, vec![3, 3]);
        assert!(stats.relation(&Predicate::new("nope")).is_none());
        assert_eq!(stats.len(), 1);
    }

    #[test]
    fn binary_relations_get_degree_bounds() {
        let mut db = Database::new();
        // Node 1 has out-degree 3; node 10 has in-degree 2.
        for (a, b) in [(1, 10), (1, 11), (1, 12), (2, 10), (3, 12)] {
            db.insert("e", tuple![a, b]).unwrap();
        }
        db.insert("u", tuple![7]).unwrap();
        db.insert("t", tuple![1, 2, 3]).unwrap();
        let stats = DbStats::of(&db);
        let e = stats.relation(&Predicate::new("e")).unwrap();
        assert_eq!(e.max_out_degree, Some(3));
        assert_eq!(e.max_in_degree, Some(2));
        // Non-binary relations carry no degree bounds.
        let u = stats.relation(&Predicate::new("u")).unwrap();
        assert_eq!((u.max_out_degree, u.max_in_degree), (None, None));
        let t = stats.relation(&Predicate::new("t")).unwrap();
        assert_eq!((t.max_out_degree, t.max_in_degree), (None, None));
    }

    #[test]
    fn selection_estimates_divide_by_distincts() {
        let rs = RelationStats {
            rows: 100,
            distinct: vec![10, 50],
            max_out_degree: Some(10),
            max_in_degree: Some(2),
        };
        assert_eq!(rs.selected_rows(&[]), 100.0);
        assert_eq!(rs.selected_rows(&[0]), 10.0);
        assert_eq!(rs.selected_rows(&[1]), 2.0);
        assert_eq!(rs.selected_rows(&[0, 1]), 0.2);
    }

    #[test]
    fn empty_database() {
        let stats = DbStats::of(&Database::new());
        assert!(stats.is_empty());
    }
}
