//! Source positions for parsed clauses.
//!
//! [`Program`](crate::Program) stays a pure AST — compared structurally in
//! tests and built programmatically by workloads — so positions live in a
//! side table ([`SourceMap`]) produced by
//! [`parser::parse_program_with_spans`](crate::parser::parse_program_with_spans)
//! and consumed by diagnostics tooling (the `mp-lint` crate).

/// A 1-based source position: where a clause begins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl Span {
    /// Build a span.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Clause positions for one parsed program, aligned by index with
/// `Program::rules` and `Program::facts` respectively.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SourceMap {
    /// `rule_spans[i]` is where `program.rules[i]` begins.
    pub rule_spans: Vec<Span>,
    /// `fact_spans[i]` is where `program.facts[i]` begins.
    pub fact_spans: Vec<Span>,
}

impl SourceMap {
    /// Span of rule `i`, if tracked.
    pub fn rule(&self, i: usize) -> Option<Span> {
        self.rule_spans.get(i).copied()
    }

    /// Span of fact `i`, if tracked.
    pub fn fact(&self, i: usize) -> Option<Span> {
        self.fact_spans.get(i).copied()
    }
}
