#![warn(missing_docs)]

//! # mp-datalog
//!
//! Function-free Horn clause (Datalog) representation and analysis, per §1
//! of Van Gelder, "A Message Passing Framework for Logical Query
//! Evaluation" (SIGMOD 1986).
//!
//! The logical system consists of:
//!
//! * an **EDB** of ground atomic facts (here, a [`Database`] of
//!   `mp-storage` relations),
//! * a **PIDB** of Horn rules containing no positive occurrence of an EDB
//!   predicate and no occurrence of the distinguished predicate `goal`,
//! * a **query**: rules whose head is `goal`, which appears positively
//!   nowhere else.
//!
//! This crate provides the AST ([`Term`], [`Atom`], [`Rule`], [`Program`]),
//! a Prolog-style text [`parser`], substitution/unification/variant
//! machinery ([`unify`]), the paper's §1 well-formedness checks
//! ([`Program::validate`]), and predicate-level dependency analysis
//! ([`analysis`]: recursion, linearity, relevance).

pub mod analysis;
mod ast;
mod database;
mod dbstats;
pub mod parser;
mod program;
mod span;
pub mod unify;

pub use ast::{AggFunc, AggSpec, Atom, Predicate, Rule, Term, Var};
pub use database::Database;
pub use dbstats::{DbStats, RelationStats};
pub use program::Program;
pub use span::{SourceMap, Span};

/// The distinguished query predicate name (§1 of the paper).
pub const GOAL: &str = "goal";

/// Errors arising while parsing, building, or validating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Parse error with position and message.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A rule's head variable does not occur in its body (unsafe rule).
    UnsafeRule {
        /// Offending rule, rendered.
        rule: String,
        /// The variable that is not range-restricted.
        var: String,
    },
    /// An EDB predicate occurs in a rule head (violates the §1 PIDB
    /// condition that the IDB contains no positive EDB occurrence).
    EdbPredicateInHead {
        /// The predicate name.
        pred: String,
    },
    /// The `goal` predicate occurs in a rule body (violates §1).
    GoalInBody,
    /// The program defines no `goal` rule, so there is no query.
    NoQuery,
    /// A predicate is used with inconsistent arities.
    ArityConflict {
        /// The predicate name.
        pred: String,
        /// One observed arity.
        a: usize,
        /// A conflicting observed arity.
        b: usize,
    },
    /// A fact contains a variable.
    NonGroundFact {
        /// Rendered atom.
        atom: String,
    },
    /// The program admits no stratification: a negated or aggregate
    /// dependency occurs inside a recursive cycle, so no perfect model
    /// exists.
    Unstratifiable {
        /// A predicate on the offending cycle.
        pred: String,
    },
}

impl std::fmt::Display for DatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatalogError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            DatalogError::UnsafeRule { rule, var } => {
                write!(f, "unsafe rule (head variable {var} not in body): {rule}")
            }
            DatalogError::EdbPredicateInHead { pred } => {
                write!(f, "EDB predicate {pred} occurs in a rule head")
            }
            DatalogError::GoalInBody => write!(f, "`goal` may not occur in a rule body"),
            DatalogError::NoQuery => write!(f, "program has no `goal` rule"),
            DatalogError::ArityConflict { pred, a, b } => {
                write!(f, "predicate {pred} used with arities {a} and {b}")
            }
            DatalogError::NonGroundFact { atom } => {
                write!(f, "fact contains a variable: {atom}")
            }
            DatalogError::Unstratifiable { pred } => {
                write!(f, "program is not stratifiable (cycle through {pred})")
            }
        }
    }
}

impl std::error::Error for DatalogError {}
