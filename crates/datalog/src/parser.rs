//! A hand-written recursive-descent parser for Prolog-style Datalog text.
//!
//! Grammar (whitespace and `%`-to-end-of-line comments allowed anywhere):
//!
//! ```text
//! program   := clause*
//! clause    := head ( (":-" | "<-") literal ("," literal)* )? "."
//!            | "?-" literal ("," literal)* "."
//! head      := ident ( "(" (term | AGG) ("," (term | AGG))* ")" )?
//! literal   := "!"? atom
//! atom      := ident ( "(" term ("," term)* ")" )?
//! AGG       := ("count" | "sum" | "min" | "max") "<" VARIABLE ">"
//! term      := VARIABLE | ident | INTEGER | STRING
//! VARIABLE  := [A-Z_][A-Za-z0-9_]*
//! ident     := [a-z][A-Za-z0-9_]*          (lower-case: constant or predicate)
//! INTEGER   := -?[0-9]+
//! STRING    := '"' ... '"'
//! ```
//!
//! A `?- q1, ..., qk.` query clause is desugared into the paper's §1 form:
//! a rule `goal(V1, ..., Vn) :- q1, ..., qk.` where `V1..Vn` are the
//! distinct variables of the *positive* query atoms in order of first
//! occurrence (negated subgoals only filter, so their variables are
//! bound elsewhere or the clause is unsafe — MP011).
//!
//! `!` marks a negated subgoal and is only legal in bodies; an aggregate
//! term `func<Var>` is only legal in a rule head, at most once per head,
//! and requires a body to aggregate over. All violations are reported as
//! typed [`DatalogError::Parse`] errors carrying line/column spans.

use crate::{AggFunc, AggSpec, Atom, DatalogError, Program, Rule, SourceMap, Span, Term, GOAL};
use mp_storage::Value;

/// Parse a program from source text.
pub fn parse_program(src: &str) -> Result<Program, DatalogError> {
    Ok(Parser::new(src).program()?.0)
}

/// Parse a program and record where each clause begins, for rendering
/// diagnostics against the source text.
pub fn parse_program_with_spans(src: &str) -> Result<(Program, SourceMap), DatalogError> {
    Parser::new(src).program()
}

/// Parse a single atom (useful in tests and tools).
pub fn parse_atom(src: &str) -> Result<Atom, DatalogError> {
    let mut p = Parser::new(src);
    let a = p.atom()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after atom"));
    }
    Ok(a)
}

/// Parse a single rule or fact terminated by `.`.
pub fn parse_rule(src: &str) -> Result<Rule, DatalogError> {
    let mut p = Parser::new(src);
    let r = p.clause()?.ok_or_else(|| p.err("expected a clause"))?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after clause"));
    }
    Ok(r)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            line: self.line,
            col: self.pos - self.line_start + 1,
            msg: msg.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token.as_bytes()) {
            for _ in 0..token.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), DatalogError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                self.bump();
            }
            _ => return None,
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn integer(&mut self) -> Option<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let digits_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == digits_start {
            self.pos = start;
            return None;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
    }

    fn string(&mut self) -> Result<Option<String>, DatalogError> {
        self.skip_ws();
        if self.peek() != Some(b'"') {
            return Ok(None);
        }
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(Some(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(c) => out.push(c as char),
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    fn term(&mut self) -> Result<Term, DatalogError> {
        self.skip_ws();
        if let Some(i) = self.integer() {
            return Ok(Term::val(i));
        }
        if let Some(s) = self.string()? {
            return Ok(Term::val(Value::str(s)));
        }
        let start_pos = self.pos;
        match self.ident() {
            Some(name) => {
                let first = name.as_bytes()[0];
                if first.is_ascii_uppercase() || first == b'_' {
                    Ok(Term::var(name))
                } else {
                    // Lower-case identifier in term position: a symbolic
                    // constant.
                    Ok(Term::val(Value::str(name)))
                }
            }
            None => {
                self.pos = start_pos;
                Err(self.err("expected a term"))
            }
        }
    }

    fn atom(&mut self) -> Result<Atom, DatalogError> {
        self.skip_ws();
        let name = self
            .ident()
            .ok_or_else(|| self.err("expected predicate name"))?;
        if name.as_bytes()[0].is_ascii_uppercase() {
            return Err(self.err("predicate names must start lower-case"));
        }
        let mut terms = Vec::new();
        if self.eat("(") {
            loop {
                terms.push(self.term()?);
                if self.eat(",") {
                    continue;
                }
                self.expect(")")?;
                break;
            }
        }
        Ok(Atom::new(name.as_str(), terms))
    }

    /// Parse a rule head: an atom whose argument positions may also hold a
    /// single aggregate term `func<Var>`.
    fn head_atom(&mut self) -> Result<(Atom, Option<AggSpec>), DatalogError> {
        self.skip_ws();
        let name = self
            .ident()
            .ok_or_else(|| self.err("expected predicate name"))?;
        if name.as_bytes()[0].is_ascii_uppercase() {
            return Err(self.err("predicate names must start lower-case"));
        }
        let mut terms = Vec::new();
        let mut agg: Option<AggSpec> = None;
        if self.eat("(") {
            loop {
                if let Some(spec) = self.agg_term(terms.len())? {
                    if agg.is_some() {
                        return Err(self.err("at most one aggregate term per rule head"));
                    }
                    terms.push(Term::Var(spec.var.clone()));
                    agg = Some(spec);
                } else {
                    terms.push(self.term()?);
                }
                if self.eat(",") {
                    continue;
                }
                self.expect(")")?;
                break;
            }
        }
        Ok((Atom::new(name.as_str(), terms), agg))
    }

    /// Try to parse an aggregate head term `count/sum/min/max<Var>` at the
    /// given head position. Backtracks (returning `None`) when the next
    /// token is not an aggregate function name followed by `<`, so plain
    /// constants named `count` etc. keep parsing as before.
    fn agg_term(&mut self, position: usize) -> Result<Option<AggSpec>, DatalogError> {
        self.skip_ws();
        let start = (self.pos, self.line, self.line_start);
        let Some(name) = self.ident() else {
            return Ok(None);
        };
        let func = match AggFunc::parse(&name) {
            Some(f) if self.eat("<") => f,
            _ => {
                (self.pos, self.line, self.line_start) = start;
                return Ok(None);
            }
        };
        let var = self
            .ident()
            .ok_or_else(|| self.err(format!("expected a variable inside `{name}<...>`")))?;
        if !(var.as_bytes()[0].is_ascii_uppercase() || var.as_bytes()[0] == b'_') {
            return Err(self.err(format!(
                "aggregate `{name}<{var}>` must name a variable (upper-case)"
            )));
        }
        self.expect(">")?;
        Ok(Some(AggSpec {
            func,
            var: crate::Var::new(var),
            position,
        }))
    }

    /// Parse a body: positive subgoals and `!`-prefixed negated subgoals,
    /// each kept in source order within its polarity.
    fn body(&mut self) -> Result<(Vec<Atom>, Vec<Atom>), DatalogError> {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        loop {
            if self.eat("!") {
                neg.push(self.atom()?);
            } else {
                pos.push(self.atom()?);
            }
            if !self.eat(",") {
                break;
            }
        }
        Ok((pos, neg))
    }

    /// Parse one clause; `None` at end of input.
    fn clause(&mut self) -> Result<Option<Rule>, DatalogError> {
        self.skip_ws();
        if self.at_end() {
            return Ok(None);
        }
        if self.eat("?-") {
            let (body, neg) = self.body()?;
            self.expect(".")?;
            // Desugar: goal(V1..Vn) :- body, over distinct positive-body
            // variables in order of first occurrence. Negated subgoals
            // filter; they never introduce head variables.
            let mut vars = Vec::new();
            for a in &body {
                for v in a.vars() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
            }
            let head = Atom::new(GOAL, vars.into_iter().map(Term::Var).collect());
            return Ok(Some(Rule::new(head, body).with_neg(neg)));
        }
        let (head, agg) = self.head_atom()?;
        if self.eat(":-") || self.eat("<-") {
            let (body, neg) = self.body()?;
            self.expect(".")?;
            let mut rule = Rule::new(head, body).with_neg(neg);
            if let Some(spec) = agg {
                rule = rule.with_agg(spec);
            }
            Ok(Some(rule))
        } else {
            self.expect(".")?;
            if agg.is_some() {
                return Err(self.err("an aggregate head requires a rule body"));
            }
            Ok(Some(Rule::fact(head)))
        }
    }

    /// Position of the next non-whitespace byte.
    fn here(&mut self) -> Span {
        self.skip_ws();
        Span::new(self.line, self.pos - self.line_start + 1)
    }

    fn program(&mut self) -> Result<(Program, SourceMap), DatalogError> {
        let mut prog = Program::default();
        let mut map = SourceMap::default();
        loop {
            let span = self.here();
            let Some(r) = self.clause()? else { break };
            // Mirror `Program::new`'s rule/fact split, keeping the side
            // table aligned with it.
            if r.is_fact() {
                prog.facts.push(r.head);
                map.fact_spans.push(span);
            } else {
                prog.rules.push(r);
                map.rule_spans.push(span);
            }
        }
        Ok((prog, map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, Var};

    #[test]
    fn parses_facts_rules_and_query() {
        let p = parse_program(
            r#"
            % the paper's P1, with an EDB sample
            r(1, 2).
            r(2, 3).
            p(X, Y) :- r(X, Y).
            p(X, Y) :- p(X, V), q(V, W), p(W, Y).
            ?- p(1, Z).
            "#,
        )
        .unwrap();
        assert_eq!(p.facts.len(), 2);
        assert_eq!(p.rules.len(), 3);
        let q: Vec<_> = p.query_rules().collect();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].head, atom!("goal"; var "Z"));
        assert_eq!(q[0].body[0], atom!("p"; val 1, var "Z"));
    }

    #[test]
    fn query_head_vars_in_first_occurrence_order() {
        let p = parse_program("?- a(Y, X), b(X, Z).").unwrap();
        let q = p.query_rules().next().unwrap();
        assert_eq!(
            q.head.vars(),
            vec![Var::new("Y"), Var::new("X"), Var::new("Z")]
        );
    }

    #[test]
    fn term_kinds() {
        let a = parse_atom(r#"p(X, _anon, foo, -12, "hi there")"#).unwrap();
        assert_eq!(a.terms[0], Term::var("X"));
        assert_eq!(a.terms[1], Term::var("_anon"));
        assert_eq!(a.terms[2], Term::val(Value::str("foo")));
        assert_eq!(a.terms[3], Term::val(-12));
        assert_eq!(a.terms[4], Term::val(Value::str("hi there")));
    }

    #[test]
    fn nullary_atoms() {
        let p = parse_program("yes. win :- yes. ?- win.").unwrap();
        assert_eq!(p.facts[0].arity(), 0);
        assert_eq!(p.rules[0].head, atom!("win"));
    }

    #[test]
    fn alternative_arrow() {
        let r = parse_rule("p(X) <- e(X).").unwrap();
        assert_eq!(r.body.len(), 1);
    }

    #[test]
    fn string_escapes() {
        let a = parse_atom(r#"p("a\nb\"c")"#).unwrap();
        assert_eq!(a.terms[0], Term::val(Value::str("a\nb\"c")));
    }

    #[test]
    fn error_positions() {
        let e = parse_program("p(X :- q(X).").unwrap_err();
        match e {
            DatalogError::Parse { line, col, .. } => {
                assert_eq!(line, 1);
                assert!(col > 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_uppercase_predicate() {
        assert!(parse_program("Pred(x).").is_err());
    }

    #[test]
    fn comments_anywhere() {
        let p = parse_program("p(1). % trailing\n% full line\nq(2).").unwrap();
        assert_eq!(p.facts.len(), 2);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_atom(r#"p("oops)"#).is_err());
    }

    #[test]
    fn round_trip_display_parse() {
        let src = "p(X, Z) :- a(X, Y), b(Y, Z).";
        let r = parse_rule(src).unwrap();
        let r2 = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn parses_negated_subgoals() {
        let r = parse_rule("win(X) :- move(X, Y), !win(Y).").unwrap();
        assert_eq!(r.body, vec![atom!("move"; var "X", var "Y")]);
        assert_eq!(r.neg, vec![atom!("win"; var "Y")]);
        assert!(!r.is_fact());
        // A body of only negated subgoals still parses (safety is MP011's
        // job, not the parser's) and is not a fact.
        let r = parse_rule("odd(X) :- !even(X).").unwrap();
        assert!(r.body.is_empty());
        assert_eq!(r.neg.len(), 1);
        assert!(!r.is_fact());
    }

    #[test]
    fn parses_aggregate_heads() {
        let r = parse_rule("total(D, sum<S>) :- pay(D, E, S).").unwrap();
        let agg = r.agg.as_ref().unwrap();
        assert_eq!(agg.func, crate::AggFunc::Sum);
        assert_eq!(agg.var, Var::new("S"));
        assert_eq!(agg.position, 1);
        // The aggregate position holds the variable as an ordinary term.
        assert_eq!(r.head, atom!("total"; var "D", var "S"));
        for func in ["count", "min", "max"] {
            let r = parse_rule(&format!("a({func}<X>) :- e(X).")).unwrap();
            assert_eq!(r.agg.as_ref().unwrap().func.name(), func);
        }
    }

    #[test]
    fn aggregate_name_without_bracket_is_a_constant() {
        let r = parse_rule("p(count) :- e(count).").unwrap();
        assert!(r.agg.is_none());
        assert_eq!(r.head.terms[0], Term::val(Value::str("count")));
    }

    #[test]
    fn neg_and_agg_round_trip_display_parse() {
        for src in [
            "win(X) :- move(X, Y), !win(Y).",
            "total(D, sum<S>) :- pay(D, E, S).",
            "rcount(X, count<Y>) :- reach(X, Y), !blocked(X).",
        ] {
            let r = parse_rule(src).unwrap();
            let r2 = parse_rule(&r.to_string()).unwrap();
            assert_eq!(r, r2, "round-tripping {src}");
        }
    }

    #[test]
    fn query_head_vars_ignore_negated_subgoals() {
        let p = parse_program("?- p(X), !q(X, Y).").unwrap();
        let q = p.query_rules().next().unwrap();
        assert_eq!(q.head.vars(), vec![Var::new("X")]);
        assert_eq!(q.neg, vec![atom!("q"; var "X", var "Y")]);
    }

    #[test]
    fn aggregate_misuse_is_a_typed_parse_error() {
        for src in [
            "total(sum<S>).",                  // fact head
            "p(sum<S>, count<T>) :- e(S, T).", // two aggregates
            "p(sum<s>) :- e(X).",              // lower-case "variable"
            "p(sum<>) :- e(X).",               // missing variable
            "p(sum<S) :- e(S).",               // missing close
            "p(X) :- q(sum<S>).",              // aggregate in body
        ] {
            match parse_program(src) {
                Err(DatalogError::Parse { line, col, .. }) => {
                    assert!(line >= 1 && col >= 1, "span for {src}");
                }
                other => panic!("expected parse error for {src:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn bang_outside_body_is_an_error() {
        assert!(parse_program("!p(1).").is_err());
        assert!(parse_program("?- !!p(X).").is_err());
    }
}
