#![warn(missing_docs)]

//! # rand (vendored stand-in)
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *minimal* slice of the `rand` 0.8 API it
//! actually uses: [`RngCore`], the [`Rng`] extension trait
//! (`gen_range`/`gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Generators live in sibling crates
//! (see `rand_chacha`). Distributions are sampled by widening to `u128`
//! multiply-shift (Lemire reduction), which is uniform for every range
//! the workspace draws from.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` via Lemire's multiply-shift reduction with
/// rejection, exactly uniform for all `n > 0`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (n as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for full-width 64-bit ranges.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        // 53 random bits → uniform f64 in [0,1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// SplitMix64: the seeding PRNG (also usable directly in tests).
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..2000 {
            let a: usize = rng.gen_range(0..10);
            assert!(a < 10);
            let b: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: u8 = rng.gen_range(3..4);
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
