#![warn(missing_docs)]

//! # proptest (vendored stand-in)
//!
//! Offline replacement for the `proptest` crate covering the surface this
//! workspace's property tests use: the [`proptest!`] macro with a
//! `#![proptest_config(...)]` header, integer-range / tuple strategies,
//! `prop::collection::vec`, `prop::sample::subsequence`, and the
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Cases are generated from
//! a fixed deterministic seed; there is **no shrinking** — a failing case
//! panics with the generated inputs printed, which is enough to reproduce
//! (the seed is constant, so reruns hit the same cases).

use std::fmt;

pub use rand::{Rng, RngCore, SeedableRng, SplitMix64};

/// A source of random values for one generated test case.
pub type TestRng = SplitMix64;

/// Something that can generate values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// An inclusive size range for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Strategy producing `Vec`s of `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.min..=self.size.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::seq::SliceRandom;
        use rand::Rng;

        /// Strategy producing order-preserving subsequences of `items`
        /// whose length falls in `size`.
        pub fn subsequence<T: Clone + std::fmt::Debug>(
            items: Vec<T>,
            size: impl Into<SizeRange>,
        ) -> SubsequenceStrategy<T> {
            let size = size.into();
            assert!(
                size.max <= items.len(),
                "subsequence size exceeds source length"
            );
            SubsequenceStrategy { items, size }
        }

        /// See [`subsequence`].
        pub struct SubsequenceStrategy<T> {
            items: Vec<T>,
            size: SizeRange,
        }

        impl<T: Clone + std::fmt::Debug> Strategy for SubsequenceStrategy<T> {
            type Value = Vec<T>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.min..=self.size.max);
                let mut picks: Vec<usize> = (0..self.items.len()).collect();
                picks.shuffle(rng);
                picks.truncate(len);
                picks.sort_unstable();
                picks.into_iter().map(|i| self.items[i].clone()).collect()
            }
        }
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-case failure plumbing.
pub mod test_runner {
    use std::fmt;

    /// Why a generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed assertion or rejected case.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use super::test_runner::TestCaseError;
    pub use super::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Declare property tests. Mirrors upstream's grammar for the subset:
/// an optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies via `in`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic seed: same cases every run.
                let mut rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                    0x9E37_79B9_7F4A_7C15,
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            concat!(
                                "proptest case {} of {} failed: {}\ninputs:",
                                $("\n  ", stringify!($arg), " = {:?}",)+
                            ),
                            case + 1, config.cases, err, $($arg),+
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Assert inside a proptest body; failure aborts only the current case
/// runner (by returning an error which the harness turns into a panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(
            v in prop::collection::vec((0u8..4, 0u8..4), 2..9),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "bad len {}", v.len());
            for &(a, b) in &v {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn subsequence_preserves_order(
            s in prop::sample::subsequence(vec![0usize, 1, 2, 3], 2),
        ) {
            prop_assert_eq!(s.len(), 2);
            prop_assert!(s[0] < s[1]);
        }

        #[test]
        fn early_return_ok_is_supported(x in 0u64..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u8..3) {
                prop_assert!(x > 100, "x={} is small", x);
            }
        }
        always_fails();
    }
}
