#![warn(missing_docs)]

//! # crossbeam-channel (vendored stand-in)
//!
//! Offline replacement for the `crossbeam-channel` crate covering the
//! surface this workspace uses: [`unbounded`] MPMC channels with
//! [`Sender::send`], [`Receiver::recv`], [`Receiver::recv_timeout`], and
//! [`Receiver::is_empty`]. Built on `Mutex<VecDeque>` + `Condvar` — not
//! lock-free like the real crate, but semantically equivalent, and the
//! engine's message volumes are far below where that matters.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    /// Live `Sender` clones; 0 with an empty queue means disconnected.
    senders: usize,
    /// Live `Receiver` clones; 0 means sends fail.
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Append a message to the channel.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().unwrap();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.items.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.ready.wait(state).unwrap();
        }
    }

    /// Block until a message arrives, every sender disconnects, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.queue.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
            if res.timed_out() && state.items.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// True when no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.lock().unwrap().items.is_empty()
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().items.len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(!rx.is_empty());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.is_empty());
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let handle = thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
