//! Generalized magic sets + semi-naive: the batch analogue of the
//! paper's sideways information passing. The transformation reuses the
//! same adornment and SIP machinery as the rule/goal graph (a deliberate
//! design: the paper's class-`d` restriction and the magic predicates
//! restrict evaluation to the same "relevant, or at least potentially
//! relevant, portions of intermediate relations").

use crate::common::EvalStats;
use crate::seminaive::evaluate_stratified;
use crate::{EvalResult, Evaluator};
use mp_datalog::{Atom, Database, DatalogError, Predicate, Program, Rule, Term};
use mp_rulegoal::{Adornment, ArgClass, SipKind};
use mp_storage::Relation;
use std::collections::{HashSet, VecDeque};

/// The magic-sets evaluator.
#[derive(Clone, Copy, Debug)]
pub struct MagicSets {
    /// SIP strategy used to adorn rules (greedy by default, mirroring
    /// the engine's default).
    pub sip: SipKind,
}

impl Default for MagicSets {
    fn default() -> Self {
        MagicSets {
            sip: SipKind::Greedy,
        }
    }
}

/// Canonicalize an adornment to bound/free: `c`/`d` → `D`, `e`/`f` → `F`.
fn canon(ad: &Adornment) -> Adornment {
    Adornment(
        ad.0.iter()
            .map(|c| {
                if c.is_bound() {
                    ArgClass::D
                } else {
                    ArgClass::F
                }
            })
            .collect(),
    )
}

fn bf_string(ad: &Adornment) -> String {
    ad.0.iter()
        .map(|c| if c.is_bound() { 'b' } else { 'f' })
        .collect()
}

fn adorned_pred(p: &Predicate, ad: &Adornment) -> Predicate {
    Predicate::new(format!("{}#{}", p.name(), bf_string(ad)))
}

fn magic_pred(p: &Predicate, ad: &Adornment) -> Predicate {
    Predicate::new(format!("m_{}#{}", p.name(), bf_string(ad)))
}

/// Terms at the bound positions of an atom under an adornment — but when
/// an adornment position holds a constant the binding is static, so the
/// magic argument is that constant.
fn bound_terms(atom: &Atom, ad: &Adornment) -> Vec<Term> {
    ad.0.iter()
        .enumerate()
        .filter(|(_, c)| c.is_bound())
        .map(|(i, _)| atom.terms[i].clone())
        .collect()
}

impl MagicSets {
    /// Produce the transformed rule set and the adorned goal predicate.
    pub fn transform(&self, program: &Program, db: &Database) -> (Vec<Rule>, Predicate) {
        let idb = program.idb_predicates();
        let is_idb = |p: &Predicate| idb.contains_key(p) && !db.contains_pred(p);

        let goal = Program::goal_pred();
        let goal_arity = program
            .query_rules()
            .next()
            .map(|r| r.head.arity())
            .unwrap_or(0);
        let goal_ad = Adornment(vec![ArgClass::F; goal_arity]);

        let mut out: Vec<Rule> = Vec::new();
        // Seed: the goal's magic predicate holds the (empty) binding.
        out.push(Rule::fact(Atom::new(
            magic_pred(&goal, &goal_ad),
            Vec::new(),
        )));

        let mut seen: HashSet<(Predicate, String)> = HashSet::new();
        let mut worklist: VecDeque<(Predicate, Adornment)> = VecDeque::new();
        seen.insert((goal.clone(), bf_string(&goal_ad)));
        worklist.push_back((goal, goal_ad));

        while let Some((p, ad)) = worklist.pop_front() {
            for rule in program.rules.iter().filter(|r| r.head.pred == p) {
                let plan = mp_rulegoal::sip::plan(rule, &ad, self.sip);
                let mut new_body =
                    vec![Atom::new(magic_pred(&p, &ad), bound_terms(&rule.head, &ad))];
                for &i in &plan.order {
                    let sub = &rule.body[i];
                    if is_idb(&sub.pred) {
                        let adq = canon(&plan.adornments[i]);
                        // Magic rule: the bindings this subgoal will be
                        // asked with.
                        out.push(Rule::new(
                            Atom::new(magic_pred(&sub.pred, &adq), bound_terms(sub, &adq)),
                            new_body.clone(),
                        ));
                        if seen.insert((sub.pred.clone(), bf_string(&adq))) {
                            worklist.push_back((sub.pred.clone(), adq.clone()));
                        }
                        new_body.push(Atom::new(adorned_pred(&sub.pred, &adq), sub.terms.clone()));
                    } else {
                        new_body.push(sub.clone());
                    }
                }
                out.push(Rule::new(
                    Atom::new(adorned_pred(&p, &ad), rule.head.terms.clone()),
                    new_body,
                ));
            }
        }
        let goal_ad = Adornment(vec![ArgClass::F; goal_arity]);
        (out, adorned_pred(&Program::goal_pred(), &goal_ad))
    }
}

impl Evaluator for MagicSets {
    fn name(&self) -> &'static str {
        "magic"
    }

    fn evaluate(&self, program: &Program, db: &Database) -> Result<EvalResult, DatalogError> {
        let mut db = db.clone();
        program.load_facts(&mut db)?;
        program.validate(&db)?;
        let (rules, adorned_goal) = self.transform(program, &db);
        // The transformed program carries its own seed fact.
        let (facts, rules): (Vec<Rule>, Vec<Rule>) = rules.into_iter().partition(Rule::is_fact);
        for f in &facts {
            db.insert_atom(&f.head)?;
        }
        let mut stats = EvalStats::default();
        let store = evaluate_stratified(&rules, &db, &mut stats);
        stats.stored_tuples = store.total_tuples();

        let goal_arity = program
            .query_rules()
            .next()
            .map(|r| r.head.arity())
            .unwrap_or(0);
        let mut answers = Relation::new(goal_arity);
        if let Some(rel) = store.get(&adorned_goal) {
            for t in rel.iter() {
                answers.insert(t.clone()).expect("goal arity");
            }
        }
        Ok(EvalResult { answers, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::tuple;

    #[test]
    fn transform_produces_magic_and_modified_rules() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(0, Z).",
        )
        .unwrap();
        let db = {
            let mut db = Database::new();
            db.insert("edge", tuple![0, 1]).unwrap();
            db
        };
        let (rules, adorned_goal) = MagicSets::default().transform(&program, &db);
        assert_eq!(adorned_goal.name(), "goal#f");
        let heads: Vec<String> = rules
            .iter()
            .map(|r| r.head.pred.name().to_string())
            .collect();
        assert!(heads.iter().any(|h| h == "m_goal#f"));
        assert!(heads.iter().any(|h| h == "m_path#bf"));
        assert!(heads.iter().any(|h| h == "path#bf"));
        assert!(heads.iter().any(|h| h == "goal#f"));
        // The recursive rule generates a magic rule whose body includes
        // the magic of the head: m_path#bf(X) :- m_path#bf(X) [+ ...].
        let magic_rules = rules
            .iter()
            .filter(|r| r.head.pred.name() == "m_path#bf" && !r.is_fact())
            .count();
        assert!(magic_rules >= 2);
    }

    #[test]
    fn point_query_restricts_computation() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(95, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..100 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let magic = MagicSets::default().evaluate(&program, &db).unwrap();
        assert_eq!(
            magic.answers.sorted_rows(),
            (96..=100).map(|i| tuple![i]).collect::<Vec<_>>()
        );
        // Only the suffix from 95 was computed: 5 path tuples (+ magic
        // seeds + edges) rather than ~5000.
        assert!(
            magic.stats.stored_tuples < 200,
            "stored {}",
            magic.stats.stored_tuples
        );
    }

    #[test]
    fn bound_bound_query() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(0, 7).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..10 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let magic = MagicSets::default().evaluate(&program, &db).unwrap();
        assert_eq!(magic.answers.len(), 1);
        assert_eq!(magic.answers.rows()[0], mp_storage::Tuple::unit());
    }

    #[test]
    fn sip_choice_affects_transform_but_not_answers() {
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
             ?- sg(\"a\", Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("up", tuple!["a", "m1"]).unwrap();
        db.insert("flat", tuple!["m1", "m2"]).unwrap();
        db.insert("down", tuple!["m2", "c"]).unwrap();
        let greedy = MagicSets {
            sip: SipKind::Greedy,
        }
        .evaluate(&program, &db)
        .unwrap();
        let ltr = MagicSets {
            sip: SipKind::LeftToRight,
        }
        .evaluate(&program, &db)
        .unwrap();
        assert_eq!(greedy.answers, ltr.answers);
    }
}
