//! The stratified perfect-model oracle: iterated monotone fixpoints over
//! an independently inferred stratification.
//!
//! This evaluator exists to *check* the engine's staged pipeline, so it
//! deliberately shares nothing with `mp-analyze`: strata are inferred
//! here by a direct Kleene iteration over the rules, negation is applied
//! as a membership test against sealed lower strata, and aggregates are
//! folded once per stratum from the fully materialized body extension.
//! Any disagreement between this evaluator and the engine on a
//! stratifiable program is a bug in one of them.
//!
//! It is exported separately from [`crate::all_baselines`]: the five
//! paper baselines model §1.1's comparison space for positive programs,
//! while the perfect model is the semantics reference for programs with
//! `!` and aggregates.

use crate::common::{eval_rule, prepare_rule_indexes, EvalStats, RelStore};
use crate::{EvalResult, Evaluator};
use mp_datalog::{Atom, Database, DatalogError, Predicate, Program, Rule, Term, Var};
use mp_storage::{ops, Relation, Tuple};
use std::collections::BTreeMap;

/// Bottom-up evaluation of the perfect (stratified) model: strata run in
/// order, each to a monotone fixpoint, with negated subgoals reading the
/// sealed result of lower strata and aggregate heads folded once their
/// bodies are complete.
pub struct PerfectModel;

/// Assign each IDB predicate a stratum by Kleene iteration:
///
/// * a positive, non-aggregate dependency requires `stratum(head) >=
///   stratum(dep)`,
/// * a negated dependency — or any dependency of an aggregate rule —
///   requires `stratum(head) >= stratum(dep) + 1`.
///
/// EDB (and undefined) predicates sit at stratum 0. A stratifiable
/// program needs no stratum above the number of IDB predicates; a value
/// escaping that cap means the `+1` edges lie on a cycle, and the
/// program has no perfect model.
fn infer_strata(program: &Program) -> Result<BTreeMap<Predicate, usize>, DatalogError> {
    let mut stratum: BTreeMap<Predicate, usize> = BTreeMap::new();
    for r in &program.rules {
        stratum.entry(r.head.pred.clone()).or_insert(0);
    }
    let cap = stratum.len();
    loop {
        let mut changed = false;
        for r in &program.rules {
            let mut s = 0usize;
            for b in &r.body {
                let dep = stratum.get(&b.pred).copied().unwrap_or(0);
                s = s.max(if r.agg.is_some() { dep + 1 } else { dep });
            }
            for n in &r.neg {
                s = s.max(stratum.get(&n.pred).copied().unwrap_or(0) + 1);
            }
            let cur = stratum.get_mut(&r.head.pred).expect("seeded above");
            if s > *cur {
                *cur = s;
                changed = true;
            }
        }
        if let Some((p, _)) = stratum.iter().find(|(_, s)| **s > cap) {
            return Err(DatalogError::Unstratifiable {
                pred: p.to_string(),
            });
        }
        if !changed {
            return Ok(stratum);
        }
    }
}

/// Fold one aggregate rule from its fully materialized body extension
/// and insert the resulting head tuples.
///
/// The body is evaluated as an ordinary (aggregate-free) rule whose head
/// exposes the distinct head variables in first-occurrence order; the
/// fold then groups on every exposed column except the aggregated one.
/// This mirrors the grouping the MP012 safety check licenses.
fn materialize_aggregate(r: &Rule, store: &mut RelStore, stats: &mut EvalStats) {
    let agg = r.agg.as_ref().expect("caller filters on agg rules");
    let mut head_vars: Vec<Var> = Vec::new();
    for t in &r.head.terms {
        if let Term::Var(v) = t {
            if !head_vars.contains(v) {
                head_vars.push(v.clone());
            }
        }
    }
    let mut body_rule = r.clone();
    body_rule.agg = None;
    body_rule.head = Atom::new(
        "agg$body",
        head_vars.iter().cloned().map(Term::Var).collect(),
    );
    let rows = eval_rule(&body_rule, store, None, stats);
    let rel = Relation::from_tuples(head_vars.len(), rows)
        .expect("synthesized body head has a fixed arity");

    let agg_idx = head_vars
        .iter()
        .position(|v| v == &agg.var)
        .expect("MP012: the fold variable occurs in the head");
    let group: Vec<usize> = (0..head_vars.len()).filter(|&i| i != agg_idx).collect();
    let group_vars: Vec<&Var> = group.iter().map(|&i| &head_vars[i]).collect();
    let folded = ops::aggregate(&rel, &group, agg_idx, agg.func)
        .expect("oracle workloads aggregate integers within range");

    // Rebuild full-arity head tuples: grouped columns come back in
    // `group` order, the fold value rides in the final column.
    for row in folded.iter() {
        let t: Tuple = r
            .head
            .terms
            .iter()
            .map(|term| match term {
                Term::Const(c) => *c,
                Term::Var(v) if v == &agg.var => row[group.len()],
                Term::Var(v) => {
                    let i = group_vars
                        .iter()
                        .position(|g| *g == v)
                        .expect("head variable is grouped");
                    row[i]
                }
            })
            .collect();
        if store.insert(&r.head.pred, t) {
            stats.derived_tuples += 1;
        }
    }
}

impl Evaluator for PerfectModel {
    fn name(&self) -> &'static str {
        "perfect"
    }

    fn evaluate(&self, program: &Program, db: &Database) -> Result<EvalResult, DatalogError> {
        let mut db = db.clone();
        program.load_facts(&mut db)?;
        program.validate(&db)?;
        let strata = infer_strata(program)?;
        let top = strata.values().copied().max().unwrap_or(0);

        let mut store = RelStore::from_database(&db);
        prepare_rule_indexes(&mut store, &program.rules);
        let mut stats = EvalStats::default();

        for s in 0..=top {
            // Aggregate heads first: their bodies live strictly below
            // this stratum (the `+1` lift), so they are already sealed.
            for r in &program.rules {
                if r.agg.is_some() && strata[&r.head.pred] == s {
                    materialize_aggregate(r, &mut store, &mut stats);
                }
            }
            // Monotone fixpoint over the stratum's remaining rules;
            // negated subgoals read sealed lower strata only.
            let rules: Vec<&Rule> = program
                .rules
                .iter()
                .filter(|r| r.agg.is_none() && strata[&r.head.pred] == s)
                .collect();
            loop {
                stats.iterations += 1;
                let mut new_any = false;
                for r in &rules {
                    for t in eval_rule(r, &store, None, &mut stats) {
                        if store.insert(&r.head.pred, t) {
                            new_any = true;
                        }
                    }
                }
                if !new_any {
                    break;
                }
            }
        }

        stats.stored_tuples = store.total_tuples();
        Ok(EvalResult {
            answers: store.goal_relation(program),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::tuple;

    fn eval(src: &str, edb: &[(&str, Tuple)]) -> Result<Vec<Tuple>, DatalogError> {
        let program = parse_program(src).unwrap();
        let mut db = Database::new();
        for (p, t) in edb {
            db.insert(*p, t.clone()).unwrap();
        }
        PerfectModel
            .evaluate(&program, &db)
            .map(|r| r.answers.sorted_rows())
    }

    #[test]
    fn positive_programs_match_naive() {
        let src = "path(X, Y) :- edge(X, Y).
                   path(X, Z) :- path(X, Y), edge(Y, Z).
                   ?- path(0, Z).";
        let edb: Vec<(&str, Tuple)> = vec![("edge", tuple![0, 1]), ("edge", tuple![1, 2])];
        assert_eq!(eval(src, &edb).unwrap(), vec![tuple![1], tuple![2]]);
    }

    #[test]
    fn win_move_stratified_fragment() {
        // The stratifiable fragment of win-move: a position with no
        // outgoing move is lost, and a position that can move to a lost
        // position is won.
        let src = "moved(X) :- move(X, Y).
                   lose(X) :- pos(X), !moved(X).
                   win(X) :- move(X, Y), lose(Y).
                   ?- win(X).";
        // Chain 0 -> 1 -> 2 -> 3: only the sink 3 is lost, so 2 wins.
        let edb: Vec<(&str, Tuple)> = vec![
            ("pos", tuple![0]),
            ("pos", tuple![1]),
            ("pos", tuple![2]),
            ("pos", tuple![3]),
            ("move", tuple![0, 1]),
            ("move", tuple![1, 2]),
            ("move", tuple![2, 3]),
        ];
        assert_eq!(eval(src, &edb).unwrap(), vec![tuple![2]]);
    }

    #[test]
    fn negation_on_sealed_stratum() {
        // unreached(X) = node(X) minus the transitive closure from 0.
        let src = "reach(X) :- edge(0, X).
                   reach(Y) :- reach(X), edge(X, Y).
                   unreached(X) :- node(X), !reach(X).
                   ?- unreached(X).";
        let edb: Vec<(&str, Tuple)> = vec![
            ("node", tuple![0]),
            ("node", tuple![1]),
            ("node", tuple![2]),
            ("node", tuple![3]),
            ("edge", tuple![0, 1]),
            ("edge", tuple![1, 2]),
        ];
        assert_eq!(eval(src, &edb).unwrap(), vec![tuple![0], tuple![3]]);
    }

    #[test]
    fn aggregate_after_recursion() {
        // Count reachable nodes per source over a transitive closure.
        let src = "reach(S, Y) :- edge(S, Y), src(S).
                   reach(S, Z) :- reach(S, Y), edge(Y, Z).
                   rcount(S, count<Y>) :- reach(S, Y).
                   ?- rcount(S, N).";
        let edb: Vec<(&str, Tuple)> = vec![
            ("src", tuple![0]),
            ("src", tuple![2]),
            ("edge", tuple![0, 1]),
            ("edge", tuple![1, 2]),
            ("edge", tuple![2, 3]),
        ];
        assert_eq!(eval(src, &edb).unwrap(), vec![tuple![0, 3], tuple![2, 1]]);
    }

    #[test]
    fn sum_aggregate_groups_correctly() {
        let src = "tot(C, sum<A>) :- owns(C, A).
                   big(C) :- tot(C, S), thresh(T), !small(C, S, T).
                   small(C, S, T) :- tot(C, S), thresh(T), less(S, T).
                   ?- big(C).";
        // less is an EDB comparison table for this tiny domain.
        let mut edb: Vec<(&str, Tuple)> = vec![
            ("owns", tuple![1, 30]),
            ("owns", tuple![1, 40]),
            ("owns", tuple![2, 20]),
            ("thresh", tuple![50]),
        ];
        for s in [20i64, 50, 70] {
            for t in [20i64, 50, 70] {
                if s < t {
                    edb.push(("less", tuple![s, t]));
                }
            }
        }
        assert_eq!(eval(src, &edb).unwrap(), vec![tuple![1]]);
    }

    #[test]
    fn negation_in_recursion_is_rejected() {
        let src = "p(X) :- node(X), !q(X).
                   q(X) :- node(X), !p(X).
                   ?- p(X).";
        assert!(matches!(
            eval(src, &[("node", tuple![1])]),
            Err(DatalogError::Unstratifiable { .. })
        ));
    }

    #[test]
    fn aggregate_in_recursion_is_rejected() {
        let src = "p(X, Y) :- e(X, Y).
                   p(X, sum<Y>) :- p(X, Y).
                   ?- p(X, Y).";
        assert!(matches!(
            eval(src, &[("e", tuple![1, 2])]),
            Err(DatalogError::Unstratifiable { .. })
        ));
    }

    #[test]
    fn unbound_negated_variable_derives_nothing() {
        // Programs that reach the evaluator unchecked (the engine's lint
        // gate would deny this as MP011) must still not misbehave: an
        // unbound negated variable simply derives nothing.
        let program = parse_program(
            "p(X) :- node(X), !q(X, Z).
             ?- p(X).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("node", tuple![1]).unwrap();
        db.insert("q", tuple![1, 5]).unwrap();
        let r = PerfectModel.evaluate(&program, &db).unwrap();
        assert!(r.answers.is_empty());
    }
}
