//! Relevance-restricted semi-naive: compute only predicates reachable
//! from `goal`, each in full — the McKay–Shapiro comparison point of
//! §1.1: "intermediate relations that are needed tend to be entirely
//! computed, even if only a small part is actually useful for answering
//! the query". The contrast with sideways information passing (class-`d`
//! restriction) is what experiments E1 and E6 measure.

use crate::common::EvalStats;
use crate::seminaive::evaluate_stratified;
use crate::{EvalResult, Evaluator};
use mp_datalog::analysis::DependencyAnalysis;
use mp_datalog::{Database, DatalogError, Program, Rule};

/// The relevance-restricted evaluator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Relevant;

impl Evaluator for Relevant {
    fn name(&self) -> &'static str {
        "relevant"
    }

    fn evaluate(&self, program: &Program, db: &Database) -> Result<EvalResult, DatalogError> {
        let mut db = db.clone();
        program.load_facts(&mut db)?;
        program.validate(&db)?;
        let analysis = DependencyAnalysis::of(program);
        let relevant = analysis.relevant_to_goal();
        let rules: Vec<Rule> = program
            .rules
            .iter()
            .filter(|r| relevant.contains(&r.head.pred))
            .cloned()
            .collect();
        let mut stats = EvalStats::default();
        let store = evaluate_stratified(&rules, &db, &mut stats);
        stats.stored_tuples = store.total_tuples();
        Ok(EvalResult {
            answers: store.goal_relation(program),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::tuple;

    #[test]
    fn skips_unreachable_predicates() {
        let program = parse_program(
            "p(X) :- e(X).
             junk(X, Y) :- big(X, Y), big(Y, X).
             ?- p(Z).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert("e", tuple![1]).unwrap();
        for i in 0..50 {
            db.insert("big", tuple![i, i]).unwrap();
        }
        let rel = Relevant.evaluate(&program, &db).unwrap();
        let semi = crate::SemiNaive.evaluate(&program, &db).unwrap();
        assert_eq!(rel.answers, semi.answers);
        // `junk` was never computed.
        assert!(rel.stats.stored_tuples < semi.stats.stored_tuples);
    }

    #[test]
    fn still_computes_whole_relevant_relations() {
        // Unlike magic sets, relevance does not use the query constant:
        // the full path relation is materialized.
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(9, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..10 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let r = Relevant.evaluate(&program, &db).unwrap();
        assert_eq!(r.answers.rows(), &[tuple![10]]);
        // 55 path tuples + 10 edges + 1 goal.
        assert_eq!(r.stats.stored_tuples, 55 + 10 + 1);
    }
}
