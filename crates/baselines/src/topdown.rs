//! A memoizing top-down evaluator (QSQR/tabling style) with Prolog's
//! left-to-right subgoal order.
//!
//! Calls are canonicalized (predicate + constant pattern + repeated-
//! variable pattern) and memoized; recursive re-entry into an active call
//! consumes the answers derived so far; an outer loop re-runs the query
//! until the memo reaches a fixpoint. This gives exactly the §1.2 claim
//! the paper makes for its own method — "the method is certain to
//! terminate, avoiding the well-known 'left recursion' problems of
//! strictly top-down methods" — as a baseline for comparing *work*, not
//! termination.

use crate::common::{EvalStats, RelStore};
use crate::{EvalResult, Evaluator};
use mp_datalog::unify::{mgu, rename_apart};
use mp_datalog::{Atom, Database, DatalogError, Predicate, Program, Term, Var};
use mp_storage::{Relation, Tuple, Value};
use std::collections::{HashMap, HashSet};

/// The memoizing top-down evaluator.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopDown;

/// A canonicalized call pattern: constants stay, variables are numbered
/// by first occurrence (so variant calls share one memo entry).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CallKey {
    pred: Predicate,
    args: Vec<CallArg>,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum CallArg {
    Const(Value),
    Var(u16),
}

fn canon(atom: &Atom) -> CallKey {
    let mut groups: HashMap<&Var, u16> = HashMap::new();
    let args = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => CallArg::Const(*c),
            Term::Var(v) => {
                let next = groups.len() as u16;
                CallArg::Var(*groups.entry(v).or_insert(next))
            }
        })
        .collect();
    CallKey {
        pred: atom.pred.clone(),
        args,
    }
}

struct Solver<'a> {
    program: &'a Program,
    store: RelStore,
    idb: HashSet<Predicate>,
    memo: HashMap<CallKey, Relation>,
    active: HashSet<CallKey>,
    evaluated_round: HashMap<CallKey, u64>,
    round: u64,
    changed: bool,
    rename_counter: u64,
    stats: EvalStats,
}

impl<'a> Solver<'a> {
    /// Answers (full-arity ground tuples) for a call, evaluating its
    /// rules unless the call is active or already evaluated this round.
    fn solve(&mut self, atom: &Atom) -> Relation {
        let key = canon(atom);
        self.memo
            .entry(key.clone())
            .or_insert_with(|| Relation::new(atom.arity()));
        let fresh_this_round = self.evaluated_round.get(&key) != Some(&self.round);
        if self.active.contains(&key) || !fresh_this_round {
            return self.memo[&key].clone();
        }
        self.active.insert(key.clone());
        self.evaluated_round.insert(key.clone(), self.round);

        let rules: Vec<_> = self
            .program
            .rules
            .iter()
            .filter(|r| r.head.pred == atom.pred && r.head.arity() == atom.arity())
            .cloned()
            .collect();
        for rule in rules {
            self.stats.rule_applications += 1;
            let fresh = rename_apart(&rule, &mut self.rename_counter);
            let Some(sigma) = mgu(&fresh.head, atom) else {
                continue;
            };
            let inst = sigma.apply_rule(&fresh);
            let mut env: HashMap<Var, Value> = HashMap::new();
            let mut derived: Vec<Tuple> = Vec::new();
            self.eval_body(&inst, 0, &mut env, &mut derived);
            for t in derived {
                let entry = self.memo.get_mut(&key).expect("inserted above");
                if entry.insert(t).expect("head arity") {
                    self.changed = true;
                }
            }
        }
        self.active.remove(&key);
        self.memo[&key].clone()
    }

    fn eval_body(
        &mut self,
        rule: &mp_datalog::Rule,
        idx: usize,
        env: &mut HashMap<Var, Value>,
        out: &mut Vec<Tuple>,
    ) {
        if idx == rule.body.len() {
            let head: Option<Tuple> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Some(*c),
                    Term::Var(v) => env.get(v).cloned(),
                })
                .collect();
            if let Some(t) = head {
                self.stats.derived_tuples += 1;
                out.push(t);
            }
            return;
        }
        let atom = &rule.body[idx];
        // Ground the atom as far as the environment allows.
        let grounded = Atom {
            pred: atom.pred.clone(),
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match env.get(v) {
                        Some(c) => Term::Const(*c),
                        None => t.clone(),
                    },
                    Term::Const(_) => t.clone(),
                })
                .collect(),
        };

        self.stats.join_probes += 1;
        let candidates: Vec<Tuple> = if self.idb.contains(&atom.pred) {
            // Recursive descent with memoization, then filter on the
            // grounded pattern.
            let answers = self.solve(&grounded);
            answers
                .iter()
                .filter(|t| matches_pattern(t, &grounded))
                .cloned()
                .collect()
        } else {
            let bound: Vec<usize> = grounded
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.is_var())
                .map(|(i, _)| i)
                .collect();
            let key: Tuple = bound
                .iter()
                .map(|&i| grounded.terms[i].as_const().copied().expect("bound"))
                .collect();
            match self.store.get(&atom.pred) {
                Some(rel) => rel
                    .lookup(&bound, &key)
                    .into_iter()
                    .filter(|t| matches_pattern(t, &grounded))
                    .cloned()
                    .collect(),
                None => Vec::new(),
            }
        };

        for t in candidates {
            let mut added: Vec<Var> = Vec::new();
            let mut ok = true;
            for (i, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if &t[i] != c {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match env.get(v) {
                        Some(existing) => {
                            if existing != &t[i] {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            env.insert(v.clone(), t[i]);
                            added.push(v.clone());
                        }
                    },
                }
            }
            if ok {
                self.eval_body(rule, idx + 1, env, out);
            }
            for v in added {
                env.remove(&v);
            }
        }
    }
}

/// Does a ground tuple match the grounded atom's constants and repeated
/// variables?
fn matches_pattern(t: &Tuple, atom: &Atom) -> bool {
    let mut bound: HashMap<&Var, &Value> = HashMap::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(c) => {
                if &t[i] != c {
                    return false;
                }
            }
            Term::Var(v) => match bound.get(v) {
                Some(&existing) => {
                    if existing != &t[i] {
                        return false;
                    }
                }
                None => {
                    bound.insert(v, &t[i]);
                }
            },
        }
    }
    true
}

impl Evaluator for TopDown {
    fn name(&self) -> &'static str {
        "top-down"
    }

    fn evaluate(&self, program: &Program, db: &Database) -> Result<EvalResult, DatalogError> {
        let mut db = db.clone();
        program.load_facts(&mut db)?;
        program.validate(&db)?;
        let goal_arity = program
            .query_rules()
            .next()
            .map(|r| r.head.arity())
            .unwrap_or(0);
        let goal_atom = Atom::new(
            Program::goal_pred(),
            (0..goal_arity)
                .map(|i| Term::var(format!("Q{i}")))
                .collect(),
        );
        let mut solver = Solver {
            program,
            store: RelStore::from_database(&db),
            idb: program.idb_predicates().keys().cloned().collect(),
            memo: HashMap::new(),
            active: HashSet::new(),
            evaluated_round: HashMap::new(),
            round: 0,
            changed: false,
            rename_counter: 0,
            stats: EvalStats::default(),
        };
        // Prepare EDB indexes on every column set the rules can bind —
        // conservative: single full scan fallback is acceptable for the
        // baseline; hot sets get built lazily by IndexedRelation::lookup's
        // scan path. (Indexes prepared for left-to-right bound columns.)
        crate::common::prepare_rule_indexes(&mut solver.store, &program.rules);

        let answers = loop {
            solver.round += 1;
            solver.stats.iterations += 1;
            solver.changed = false;
            let a = solver.solve(&goal_atom);
            if !solver.changed {
                break a;
            }
        };
        solver.stats.stored_tuples = solver.memo.values().map(|r| r.len() as u64).sum::<u64>();
        Ok(EvalResult {
            answers,
            stats: solver.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::{parse_atom, parse_program};
    use mp_storage::tuple;

    #[test]
    fn canon_merges_variants() {
        assert_eq!(
            canon(&parse_atom("p(X, Y, X)").unwrap()),
            canon(&parse_atom("p(A, B, A)").unwrap())
        );
        assert_ne!(
            canon(&parse_atom("p(X, Y, X)").unwrap()),
            canon(&parse_atom("p(A, A, A)").unwrap())
        );
        assert_ne!(
            canon(&parse_atom("p(1, Y)").unwrap()),
            canon(&parse_atom("p(2, Y)").unwrap())
        );
    }

    #[test]
    fn binding_restricts_exploration() {
        // Point query explores only the reachable suffix.
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- edge(X, Y), path(Y, Z).
             ?- path(40, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..50 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let r = TopDown.evaluate(&program, &db).unwrap();
        assert_eq!(r.answers.len(), 10);
        // Memo holds calls path(40,Z), path(41,Z).. — ~11 keys worth of
        // answers: 10+9+...+1 = 55 tuples, far below the full 1275.
        assert!(r.stats.stored_tuples <= 100, "{}", r.stats.stored_tuples);
    }

    #[test]
    fn left_recursive_ordering_terminates() {
        let program = parse_program(
            "path(X, Z) :- path(X, Y), edge(Y, Z).
             path(X, Y) :- edge(X, Y).
             ?- path(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..8 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let r = TopDown.evaluate(&program, &db).unwrap();
        assert_eq!(r.answers.len(), 8);
        assert!(r.stats.iterations >= 2, "fixpoint needs multiple rounds");
    }

    #[test]
    fn repeated_vars_in_calls() {
        let program = parse_program(
            "e(1, 1). e(1, 2). e(2, 2).
             diag(X) :- e(X, X).
             ?- diag(X).",
        )
        .unwrap();
        let mut db = Database::new();
        let program2 = program.clone();
        program2.load_facts(&mut db).unwrap();
        let r = TopDown.evaluate(&program, &Database::new()).unwrap();
        assert_eq!(r.answers.sorted_rows(), vec![tuple![1], tuple![2]]);
    }
}
