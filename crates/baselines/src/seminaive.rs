//! Semi-naive bottom-up evaluation with delta relations, stratified by
//! predicate strong components (callees first), so each component is
//! saturated exactly once.

use crate::common::{eval_rule, prepare_rule_indexes, EvalStats, RelStore};
use crate::{EvalResult, Evaluator};
use mp_datalog::analysis::DependencyAnalysis;
use mp_datalog::{Database, DatalogError, Predicate, Program, Rule};
use mp_storage::Relation;
use std::collections::{BTreeMap, BTreeSet};

/// The semi-naive evaluator.
#[derive(Clone, Copy, Debug, Default)]
pub struct SemiNaive;

impl Evaluator for SemiNaive {
    fn name(&self) -> &'static str {
        "semi-naive"
    }

    fn evaluate(&self, program: &Program, db: &Database) -> Result<EvalResult, DatalogError> {
        let mut db = db.clone();
        program.load_facts(&mut db)?;
        program.validate(&db)?;
        let mut stats = EvalStats::default();
        let store = evaluate_stratified(&program.rules, &db, &mut stats);
        stats.stored_tuples = store.total_tuples();
        Ok(EvalResult {
            answers: store.goal_relation(program),
            stats,
        })
    }
}

/// Run stratified semi-naive over `rules`, returning the saturated store.
/// Shared with the relevance-restricted and magic-set evaluators.
pub fn evaluate_stratified(rules: &[Rule], db: &Database, stats: &mut EvalStats) -> RelStore {
    let program_view = Program {
        rules: rules.to_vec(),
        facts: Vec::new(),
    };
    let analysis = DependencyAnalysis::of(&program_view);
    let mut store = RelStore::from_database(db);
    prepare_rule_indexes(&mut store, rules);
    for rule in rules {
        store.declare(&rule.head.pred, rule.head.arity());
    }

    // Group rules by the SCC of their head; process SCCs callees-first
    // (DependencyAnalysis emits them in reverse topological order).
    let scc_of: BTreeMap<&Predicate, usize> = analysis
        .sccs
        .iter()
        .enumerate()
        .flat_map(|(i, scc)| scc.iter().map(move |p| (p, i)))
        .collect();

    for (scc_idx, scc) in analysis.sccs.iter().enumerate() {
        let scc_preds: BTreeSet<&Predicate> = scc.iter().collect();
        let stratum_rules: Vec<&Rule> = rules
            .iter()
            .filter(|r| scc_of.get(&r.head.pred) == Some(&scc_idx))
            .collect();
        if stratum_rules.is_empty() {
            continue;
        }

        // Pass 1: apply every rule once against the full store (this
        // covers exit rules and seeds the deltas).
        stats.iterations += 1;
        let mut delta: BTreeMap<Predicate, Relation> = BTreeMap::new();
        for rule in &stratum_rules {
            for t in eval_rule(rule, &store, None, stats) {
                if store.insert(&rule.head.pred, t.clone()) {
                    delta
                        .entry(rule.head.pred.clone())
                        .or_insert_with(|| Relation::new(t.arity()))
                        .insert(t)
                        .expect("delta arity");
                }
            }
        }

        // Iterate: recursive rules re-applied with one recursive body
        // atom constrained to the delta.
        loop {
            if delta.values().all(Relation::is_empty) {
                break;
            }
            stats.iterations += 1;
            let mut next_delta: BTreeMap<Predicate, Relation> = BTreeMap::new();
            for rule in &stratum_rules {
                for (i, atom) in rule.body.iter().enumerate() {
                    if !scc_preds.contains(&atom.pred) {
                        continue;
                    }
                    let Some(d) = delta.get(&atom.pred) else {
                        continue;
                    };
                    if d.is_empty() {
                        continue;
                    }
                    for t in eval_rule(rule, &store, Some((i, d)), stats) {
                        if store.insert(&rule.head.pred, t.clone()) {
                            next_delta
                                .entry(rule.head.pred.clone())
                                .or_insert_with(|| Relation::new(t.arity()))
                                .insert(t)
                                .expect("delta arity");
                        }
                    }
                }
            }
            delta = next_delta;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::tuple;

    #[test]
    fn matches_naive_with_fewer_derivations() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..30 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let semi = SemiNaive.evaluate(&program, &db).unwrap();
        let naive = crate::Naive.evaluate(&program, &db).unwrap();
        assert_eq!(semi.answers, naive.answers);
        assert!(
            semi.stats.derived_tuples < naive.stats.derived_tuples,
            "semi-naive {} vs naive {}",
            semi.stats.derived_tuples,
            naive.stats.derived_tuples
        );
    }

    #[test]
    fn mutual_recursion_stratum() {
        let program = parse_program(
            "odd(X, Y) :- edge(X, Y).
             odd(X, Y) :- edge(X, U), even(U, Y).
             even(X, Y) :- edge(X, U), odd(U, Y).
             ?- even(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..6 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let r = SemiNaive.evaluate(&program, &db).unwrap();
        assert_eq!(
            r.answers.sorted_rows(),
            vec![tuple![2], tuple![4], tuple![6]]
        );
    }

    #[test]
    fn nonlinear_rule_delta_on_both_atoms() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), path(Y, Z).
             ?- path(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..16 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let r = SemiNaive.evaluate(&program, &db).unwrap();
        assert_eq!(r.answers.len(), 16);
    }
}
