#![warn(missing_docs)]

//! # mp-baselines
//!
//! Baseline Datalog evaluators for the comparisons §1.1 of the paper
//! frames qualitatively:
//!
//! * [`Naive`] — brute-force bottom-up: "reasoning forward until the
//!   minimum model is derived".
//! * [`SemiNaive`] — bottom-up with delta relations (the standard least-
//!   fixed-point evaluation of [VEK76, AU79], stratified by predicate
//!   strong components).
//! * [`Relevant`] — semi-naive restricted to predicates reachable from
//!   `goal`: the McKay–Shapiro-style method in which "intermediate
//!   relations that are needed tend to be entirely computed, even if
//!   only a small part is actually useful".
//! * [`MagicSets`] — the generalized magic-sets transformation followed
//!   by semi-naive: the later batch analogue of the paper's sideways
//!   information passing, built on the same adornment machinery.
//! * [`TopDown`] — a memoizing top-down (QSQR/tabling-style) evaluator
//!   with Prolog's left-to-right strategy, iterated to fixpoint; unlike
//!   raw Prolog it terminates on left recursion.
//!
//! Every evaluator implements [`Evaluator`] and returns the `goal`
//! relation plus comparable work counters, so benches can report the
//! observables the paper argues about (tuples computed, join work,
//! iterations) across methods.
//!
//! Separately from the five baselines, [`PerfectModel`] evaluates
//! stratified programs with negation and aggregates by iterated
//! fixpoints over independently inferred strata. It is the semantics
//! oracle the engine's staged pipeline is tested against, and is *not*
//! part of [`all_baselines`] (the positive-program comparison space).

mod common;
mod magic;
mod naive;
mod perfect;
mod relevant;
mod seminaive;
mod topdown;

pub use common::{EvalStats, RelStore};
pub use magic::MagicSets;
pub use naive::Naive;
pub use perfect::PerfectModel;
pub use relevant::Relevant;
pub use seminaive::SemiNaive;
pub use topdown::TopDown;

use mp_datalog::{Database, DatalogError, Program};
use mp_storage::Relation;

/// Result of a baseline evaluation.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// The `goal` relation.
    pub answers: Relation,
    /// Work counters.
    pub stats: EvalStats,
}

/// A complete query evaluator.
pub trait Evaluator {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Evaluate the program's query over the EDB.
    fn evaluate(&self, program: &Program, db: &Database) -> Result<EvalResult, DatalogError>;
}

/// All baselines, boxed, for sweeps.
pub fn all_baselines() -> Vec<Box<dyn Evaluator>> {
    vec![
        Box::new(Naive),
        Box::new(SemiNaive),
        Box::new(Relevant),
        Box::new(MagicSets::default()),
        Box::new(TopDown),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::{tuple, Tuple};

    fn eval_all(src: &str, edb: &[(&str, Tuple)]) -> Vec<(String, Vec<Tuple>)> {
        let program = parse_program(src).unwrap();
        let mut db = Database::new();
        program.load_facts(&mut db).unwrap();
        for (p, t) in edb {
            db.insert(*p, t.clone()).unwrap();
        }
        all_baselines()
            .iter()
            .map(|e| {
                let r = e
                    .evaluate(&program, &db)
                    .unwrap_or_else(|err| panic!("{} failed: {err}", e.name()));
                (e.name().to_string(), r.answers.sorted_rows())
            })
            .collect()
    }

    fn assert_all(src: &str, edb: &[(&str, Tuple)], expect: Vec<Tuple>) {
        for (name, rows) in eval_all(src, edb) {
            assert_eq!(rows, expect, "evaluator {name} disagrees");
        }
    }

    #[test]
    fn nonrecursive_join_all() {
        assert_all(
            "gp(X, Z) :- par(X, Y), par(Y, Z).
             ?- gp(1, Z).",
            &[
                ("par", tuple![1, 2]),
                ("par", tuple![2, 3]),
                ("par", tuple![2, 4]),
                ("par", tuple![9, 9]),
            ],
            vec![tuple![3], tuple![4]],
        );
    }

    #[test]
    fn linear_tc_all() {
        let edb: Vec<(&str, Tuple)> = vec![
            ("edge", tuple![0, 1]),
            ("edge", tuple![1, 2]),
            ("edge", tuple![2, 3]),
        ];
        assert_all(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(0, Z).",
            &edb,
            vec![tuple![1], tuple![2], tuple![3]],
        );
    }

    #[test]
    fn nonlinear_tc_with_cycle_all() {
        let edb: Vec<(&str, Tuple)> = vec![
            ("edge", tuple![0, 1]),
            ("edge", tuple![1, 2]),
            ("edge", tuple![2, 0]),
            ("edge", tuple![2, 3]),
        ];
        assert_all(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), path(Y, Z).
             ?- path(0, Z).",
            &edb,
            vec![tuple![0], tuple![1], tuple![2], tuple![3]],
        );
    }

    #[test]
    fn same_generation_all() {
        let edb: Vec<(&str, Tuple)> = vec![
            ("up", tuple!["a", "m1"]),
            ("up", tuple!["b", "m2"]),
            ("flat", tuple!["m1", "m2"]),
            ("down", tuple!["m2", "c"]),
            ("down", tuple!["m1", "d"]),
        ];
        assert_all(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
             ?- sg(\"a\", Y).",
            &edb,
            vec![tuple!["c"]],
        );
    }

    #[test]
    fn left_recursion_terminates_everywhere() {
        // A raw Prolog interpreter would loop on this ordering.
        assert_all(
            "path(X, Z) :- path(X, Y), edge(Y, Z).
             path(X, Y) :- edge(X, Y).
             ?- path(0, Z).",
            &[("edge", tuple![0, 1]), ("edge", tuple![1, 2])],
            vec![tuple![1], tuple![2]],
        );
    }

    #[test]
    fn stats_are_populated() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..20 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        for e in all_baselines() {
            let r = e.evaluate(&program, &db).unwrap();
            assert!(r.stats.derived_tuples > 0, "{}", e.name());
            assert!(r.stats.iterations >= 1, "{}", e.name());
        }
        // Relevance and magic should store no more than naive.
        let naive = Naive.evaluate(&program, &db).unwrap();
        let magic = MagicSets::default().evaluate(&program, &db).unwrap();
        assert!(magic.stats.stored_tuples <= naive.stats.stored_tuples * 2);
    }

    #[test]
    fn magic_beats_naive_on_point_queries() {
        // Chain of 60; query from one end: naive computes O(n^2) path
        // tuples, magic only the slice from node 30.
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(30, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..60 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let naive = Naive.evaluate(&program, &db).unwrap();
        let magic = MagicSets::default().evaluate(&program, &db).unwrap();
        assert_eq!(naive.answers, magic.answers);
        assert!(
            magic.stats.stored_tuples * 2 < naive.stats.stored_tuples,
            "magic {} vs naive {}",
            magic.stats.stored_tuples,
            naive.stats.stored_tuples
        );
    }
}
