//! Shared machinery: the relation store and the indexed rule-body
//! evaluator used by every bottom-up baseline.

use mp_datalog::{Atom, Database, Predicate, Program, Rule, Term, Var};
use mp_storage::{IndexedRelation, Relation, Tuple, Value};
use std::collections::{BTreeMap, HashMap};

/// Work counters comparable across evaluators (and loosely with the
/// engine's [`mp_engine` stats]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations (passes / waves / outer loops).
    pub iterations: u64,
    /// Head tuples produced by rule applications (before dedup).
    pub derived_tuples: u64,
    /// Distinct tuples stored across all relations (IDB + auxiliary).
    pub stored_tuples: u64,
    /// Index probe operations during body evaluation.
    pub join_probes: u64,
    /// Rule applications attempted.
    pub rule_applications: u64,
}

/// A store of named relations (EDB + IDB + auxiliary).
#[derive(Clone, Debug, Default)]
pub struct RelStore {
    rels: BTreeMap<Predicate, IndexedRelation>,
}

impl RelStore {
    /// Initialize from an EDB.
    pub fn from_database(db: &Database) -> RelStore {
        let mut store = RelStore::default();
        for (p, r) in db.iter() {
            let mut ir = IndexedRelation::new(r.arity());
            for t in r.iter() {
                ir.insert(t.clone()).expect("EDB arity");
            }
            store.rels.insert(p.clone(), ir);
        }
        store
    }

    /// Ensure a relation exists with the given arity.
    pub fn declare(&mut self, pred: &Predicate, arity: usize) {
        self.rels
            .entry(pred.clone())
            .or_insert_with(|| IndexedRelation::new(arity));
    }

    /// The relation for a predicate (empty 0-ary placeholder if absent).
    pub fn get(&self, pred: &Predicate) -> Option<&IndexedRelation> {
        self.rels.get(pred)
    }

    /// Insert a tuple, declaring on first use. Returns true if new.
    pub fn insert(&mut self, pred: &Predicate, t: Tuple) -> bool {
        let rel = self
            .rels
            .entry(pred.clone())
            .or_insert_with(|| IndexedRelation::new(t.arity()));
        rel.insert(t).expect("arity consistent within a program")
    }

    /// Prepare an index on `cols` of `pred`'s relation.
    pub fn ensure_index(&mut self, pred: &Predicate, cols: &[usize]) {
        if let Some(rel) = self.rels.get_mut(pred) {
            rel.ensure_index(cols).expect("columns in range");
        }
    }

    /// Total stored tuples.
    pub fn total_tuples(&self) -> u64 {
        self.rels.values().map(|r| r.len() as u64).sum()
    }

    /// Extract the goal relation (empty if never derived).
    pub fn goal_relation(&self, program: &Program) -> Relation {
        let goal = Program::goal_pred();
        let arity = program
            .query_rules()
            .next()
            .map(|r| r.head.arity())
            .unwrap_or(0);
        match self.rels.get(&goal) {
            Some(r) => {
                let mut out = Relation::new(arity);
                for t in r.iter() {
                    out.insert(t.clone()).expect("goal arity");
                }
                out
            }
            None => Relation::new(arity),
        }
    }
}

/// For each rule, the statically-known bound column sets of each body
/// atom under left-to-right evaluation — used to prepare indexes once.
pub fn prepare_rule_indexes(store: &mut RelStore, rules: &[Rule]) {
    for rule in rules {
        let mut bound: Vec<Var> = Vec::new();
        for atom in &rule.body {
            let cols = bound_columns(atom, &bound);
            store.ensure_index(&atom.pred, &cols);
            for v in atom.vars() {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
        }
    }
}

/// Columns of `atom` holding constants or already-bound variables.
fn bound_columns(atom: &Atom, bound: &[Var]) -> Vec<usize> {
    atom.terms
        .iter()
        .enumerate()
        .filter(|(_, t)| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        })
        .map(|(i, _)| i)
        .collect()
}

/// Evaluate one rule against the store, optionally constraining one body
/// atom (by index) to a delta relation. Produces the derived head tuples
/// (possibly with duplicates; the caller inserts and dedups).
pub fn eval_rule(
    rule: &Rule,
    store: &RelStore,
    delta: Option<(usize, &Relation)>,
    stats: &mut EvalStats,
) -> Vec<Tuple> {
    stats.rule_applications += 1;
    let mut out = Vec::new();
    let mut env: HashMap<Var, Value> = HashMap::new();
    eval_body(rule, 0, store, delta, &mut env, &mut out, stats);
    out
}

fn eval_body(
    rule: &Rule,
    idx: usize,
    store: &RelStore,
    delta: Option<(usize, &Relation)>,
    env: &mut HashMap<Var, Value>,
    out: &mut Vec<Tuple>,
    stats: &mut EvalStats,
) {
    if idx == rule.body.len() {
        // Stratified negation: the binding survives only if every negated
        // subgoal misses the store. Strata run bottom-up, so the negated
        // relations are already sealed here. A negated variable left
        // unbound by the positive subgoals violates range restriction
        // (MP011); such a rule derives nothing.
        for neg in &rule.neg {
            let ground: Option<Tuple> = neg
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Some(*c),
                    Term::Var(v) => env.get(v).cloned(),
                })
                .collect();
            match ground {
                Some(t) => {
                    stats.join_probes += 1;
                    if store.get(&neg.pred).is_some_and(|rel| rel.contains(&t)) {
                        return;
                    }
                }
                None => return,
            }
        }
        let head: Option<Tuple> = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Var(v) => env.get(v).cloned(),
            })
            .collect();
        if let Some(t) = head {
            stats.derived_tuples += 1;
            out.push(t);
        }
        return;
    }
    let atom = &rule.body[idx];

    // Candidate tuples: from the delta override or the store (indexed on
    // the bound columns when possible).
    let bound_cols: Vec<usize> = atom
        .terms
        .iter()
        .enumerate()
        .filter(|(_, t)| match t {
            Term::Const(_) => true,
            Term::Var(v) => env.contains_key(v),
        })
        .map(|(i, _)| i)
        .collect();
    let key: Tuple = bound_cols
        .iter()
        .map(|&i| match &atom.terms[i] {
            Term::Const(c) => *c,
            Term::Var(v) => env[v],
        })
        .collect();

    stats.join_probes += 1;
    let candidates: Vec<&Tuple> = match delta {
        Some((d, rel)) if d == idx => rel
            .iter()
            .filter(|t| t.matches_on(&bound_cols, &key))
            .collect(),
        _ => match store.get(&atom.pred) {
            Some(rel) => rel.lookup(&bound_cols, &key),
            None => Vec::new(),
        },
    };

    'tuples: for t in candidates {
        // Bind the free positions, checking repeated variables.
        let mut added: Vec<Var> = Vec::new();
        for (i, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if &t[i] != c {
                        for v in added.drain(..) {
                            env.remove(&v);
                        }
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match env.get(v) {
                    Some(existing) => {
                        if existing != &t[i] {
                            for v in added.drain(..) {
                                env.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    None => {
                        env.insert(v.clone(), t[i]);
                        added.push(v.clone());
                    }
                },
            }
        }
        eval_body(rule, idx + 1, store, delta, env, out, stats);
        for v in added {
            env.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::{parse_program, parse_rule};
    use mp_storage::tuple;

    fn store_with(edges: &[(i64, i64)]) -> RelStore {
        let mut db = Database::new();
        for &(a, b) in edges {
            db.insert("edge", tuple![a, b]).unwrap();
        }
        RelStore::from_database(&db)
    }

    #[test]
    fn eval_rule_joins() {
        let store = store_with(&[(1, 2), (2, 3), (2, 4)]);
        let rule = parse_rule("two(X, Z) :- edge(X, Y), edge(Y, Z).").unwrap();
        let mut stats = EvalStats::default();
        let mut out = eval_rule(&rule, &store, None, &mut stats);
        out.sort();
        assert_eq!(out, vec![tuple![1, 3], tuple![1, 4]]);
        assert!(stats.join_probes > 0);
    }

    #[test]
    fn eval_rule_with_constants_and_repeats() {
        let store = store_with(&[(1, 1), (1, 2), (2, 2)]);
        let rule = parse_rule("loop(X) :- edge(X, X).").unwrap();
        let mut stats = EvalStats::default();
        let mut out = eval_rule(&rule, &store, None, &mut stats);
        out.sort();
        assert_eq!(out, vec![tuple![1], tuple![2]]);

        let rule2 = parse_rule("from1(Y) :- edge(1, Y).").unwrap();
        let mut out2 = eval_rule(&rule2, &store, None, &mut stats);
        out2.sort();
        assert_eq!(out2, vec![tuple![1], tuple![2]]);
    }

    #[test]
    fn delta_constrains_one_atom() {
        let store = store_with(&[(1, 2), (2, 3)]);
        let rule = parse_rule("two(X, Z) :- edge(X, Y), edge(Y, Z).").unwrap();
        let delta = Relation::from_tuples(2, vec![tuple![2, 3]]).unwrap();
        let mut stats = EvalStats::default();
        // Constrain the FIRST atom to the delta: only X=2 applies, and
        // edge(3, ·) is empty.
        let out = eval_rule(&rule, &store, Some((0, &delta)), &mut stats);
        assert!(out.is_empty());
        // Constrain the SECOND: Y=2 → (1, 3).
        let out2 = eval_rule(&rule, &store, Some((1, &delta)), &mut stats);
        assert_eq!(out2, vec![tuple![1, 3]]);
    }

    #[test]
    fn goal_relation_extraction() {
        let program = parse_program("?- edge(1, Z).").unwrap();
        let mut store = store_with(&[]);
        store.insert(&Predicate::new("goal"), tuple![5]);
        let g = store.goal_relation(&program);
        assert_eq!(g.rows(), &[tuple![5]]);
    }
}
