//! Brute-force bottom-up evaluation: apply every rule to the full current
//! relations until nothing changes (§1.1's "reasoning forward until the
//! minimum model is derived").

use crate::common::{eval_rule, prepare_rule_indexes, EvalStats, RelStore};
use crate::{EvalResult, Evaluator};
use mp_datalog::{Database, DatalogError, Program};

/// The naive evaluator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Naive;

impl Evaluator for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn evaluate(&self, program: &Program, db: &Database) -> Result<EvalResult, DatalogError> {
        let mut db = db.clone();
        program.load_facts(&mut db)?;
        program.validate(&db)?;
        let mut store = RelStore::from_database(&db);
        prepare_rule_indexes(&mut store, &program.rules);
        let mut stats = EvalStats::default();

        loop {
            stats.iterations += 1;
            let mut changed = false;
            for rule in &program.rules {
                let derived = eval_rule(rule, &store, None, &mut stats);
                for t in derived {
                    if store.insert(&rule.head.pred, t) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        stats.stored_tuples = store.total_tuples();
        Ok(EvalResult {
            answers: store.goal_relation(program),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::tuple;

    #[test]
    fn computes_whole_minimum_model() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..5 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let r = Naive.evaluate(&program, &db).unwrap();
        assert_eq!(r.answers.len(), 5);
        // Naive materializes ALL paths: 5+4+3+2+1 = 15, plus 5 edges,
        // plus 5 goal tuples.
        assert_eq!(r.stats.stored_tuples, 15 + 5 + 5);
        // Naive re-derives everything each pass: derived >> stored.
        assert!(r.stats.derived_tuples > 15);
    }

    #[test]
    fn empty_program_body_facts_only() {
        let program = parse_program("?- e(1, X).").unwrap();
        let mut db = Database::new();
        db.insert("e", tuple![1, 7]).unwrap();
        db.insert("e", tuple![2, 8]).unwrap();
        let r = Naive.evaluate(&program, &db).unwrap();
        assert_eq!(r.answers.rows(), &[tuple![7]]);
    }
}
