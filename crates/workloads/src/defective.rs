//! Deliberately defective programs for exercising `mp-lint`.
//!
//! Each fixture is a small, named Datalog source that violates exactly
//! the conditions behind one (occasionally several) lint codes, plus the
//! codes a linter is expected to raise on it. The golden tests in
//! `tests/lint_golden.rs` run `mp-lint` over every fixture and assert
//! the expected codes fire — and that the canonical programs in
//! [`crate::programs`] stay completely clean.

/// A named defective program and the lint codes it must trigger.
#[derive(Clone, Copy, Debug)]
pub struct DefectiveProgram {
    /// Stable fixture name (used in test failure messages).
    pub name: &'static str,
    /// The program source.
    pub source: &'static str,
    /// Lint codes (e.g. `"MP001"`) that must appear in the diagnostics.
    pub expect: &'static [&'static str],
}

/// Every defective fixture. Together they cover all program-level lint
/// codes (`MP001`–`MP008`).
pub fn all() -> &'static [DefectiveProgram] {
    &[
        DefectiveProgram {
            name: "unsafe_head_var",
            source: "p(X, Y) :- e(X).\n?- p(1, Z).",
            expect: &["MP001"],
        },
        DefectiveProgram {
            name: "unsafe_var_free_body",
            // X never occurs in the body at all.
            source: "p(X) :- e(1, 2).\n?- p(Z).",
            expect: &["MP001"],
        },
        DefectiveProgram {
            name: "arity_conflict_across_rules",
            source: "p(X) :- e(X).\nq(X) :- p(X, X).\n?- q(1).",
            expect: &["MP002"],
        },
        DefectiveProgram {
            name: "arity_conflict_self_join",
            source: "p(X) :- e(X), e(X, X).\n?- p(1).",
            expect: &["MP002"],
        },
        DefectiveProgram {
            name: "edb_idb_overlap",
            source: "e(1, 2).\ne(X, Y) :- f(X, Y).\n?- e(1, Z).",
            expect: &["MP003"],
        },
        DefectiveProgram {
            name: "goal_in_body",
            source: "p(X) :- goal(X).\n?- p(1).",
            expect: &["MP004"],
        },
        DefectiveProgram {
            name: "missing_query",
            source: "p(X) :- e(X).",
            expect: &["MP005"],
        },
        DefectiveProgram {
            name: "unreachable_cluster",
            // junk/j form a cluster disconnected from the query.
            source: "p(X) :- e(X).\njunk(X) :- j(X), junk(X).\n?- p(1).",
            expect: &["MP006"],
        },
        DefectiveProgram {
            name: "singleton_variable",
            source: "p(X) :- e(X, Unused).\n?- p(1).",
            expect: &["MP007"],
        },
        DefectiveProgram {
            name: "non_ground_fact",
            source: "e(1, X).\np(A, B) :- e(A, B).\n?- p(1, Z).",
            expect: &["MP008"],
        },
        DefectiveProgram {
            name: "unsafe_and_unreachable",
            // Two independent defects in one program.
            source: "p(X, Y) :- e(X).\nloner(X) :- n(X).\n?- p(1, Z).",
            expect: &["MP001", "MP006"],
        },
        DefectiveProgram {
            name: "kitchen_sink",
            // Overlap + singleton + non-ground fact at once.
            source: "e(1, W).\ne(X, Y) :- f(X, Y).\np(A) :- e(A, Stray).\n?- p(1).",
            expect: &["MP003", "MP007", "MP008"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;

    #[test]
    fn fixtures_parse_and_are_distinctly_named() {
        let mut names = std::collections::BTreeSet::new();
        for f in all() {
            parse_program(f.source)
                .unwrap_or_else(|e| panic!("fixture {} must parse: {e}", f.name));
            assert!(names.insert(f.name), "duplicate fixture name {}", f.name);
            assert!(!f.expect.is_empty(), "{} expects no codes", f.name);
        }
        assert!(all().len() >= 10, "need at least ten defective fixtures");
    }
}
