//! Canonical programs.

use mp_datalog::parser::parse_program;
use mp_datalog::Program;

fn parse(src: &str) -> Program {
    parse_program(src).expect("canonical program parses")
}

/// The paper's P1 (Example 2.1): nonlinear recursion through `q`, with
/// query `p(start, Z)`.
pub fn p1(start: i64) -> Program {
    parse(&format!(
        "p(X, Y) :- p(X, V), q(V, W), p(W, Y).
         p(X, Y) :- r(X, Y).
         ?- p({start}, Z)."
    ))
}

/// Left-linear transitive closure from a constant.
pub fn tc_linear(start: i64) -> Program {
    parse(&format!(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         ?- path({start}, Z)."
    ))
}

/// Right-linear transitive closure (binding flows into the recursive
/// call's first argument — the favourable shape for top-down methods).
pub fn tc_right_linear(start: i64) -> Program {
    parse(&format!(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- edge(X, Y), path(Y, Z).
         ?- path({start}, Z)."
    ))
}

/// Nonlinear ("divide-and-conquer") transitive closure — the recursion
/// class Henschen–Naqvi cannot compile (§1.1) and the framework handles
/// (§1.2).
pub fn tc_nonlinear(start: i64) -> Program {
    parse(&format!(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), path(Y, Z).
         ?- path({start}, Z)."
    ))
}

/// Same-generation (nonlinear in structure, the classic sideways-
/// information-passing showcase) from a leaf node.
pub fn same_generation(subject: i64) -> Program {
    parse(&format!(
        "sg(X, Y) :- flat(X, Y).
         sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
         ?- sg({subject}, Y)."
    ))
}

/// Ancestor over `parent`, from a constant.
pub fn ancestor(person: i64) -> Program {
    parse(&format!(
        "anc(X, Y) :- parent(X, Y).
         anc(X, Z) :- parent(X, Y), anc(Y, Z).
         ?- anc({person}, Z)."
    ))
}

/// Transitive bill-of-materials: all components (direct or indirect) of
/// an assembly.
pub fn bom_components(assembly: i64) -> Program {
    parse(&format!(
        "component(A, C) :- uses(A, C).
         component(A, C) :- uses(A, M), component(M, C).
         ?- component({assembly}, C)."
    ))
}

/// Example 4.1's R1 as a complete query program (monotone chain).
pub fn r1_query(x: i64) -> Program {
    parse(&format!(
        "p(X, Z) :- a(X, Y), b(Y, U), c(U, Z).
         ?- p({x}, Z)."
    ))
}

/// Example 4.1's R2 as a query program (monotone, branching qual tree).
/// Uses `c2/2` for the two-column `c` relation.
pub fn r2_query(x: i64) -> Program {
    parse(&format!(
        "p(X, Z) :- a(X, Y, V), b(Y, U), c2(V, T), d(T), e(U, Z).
         ?- p({x}, Z)."
    ))
}

/// Example 4.1's R3 as a query program (cyclic hypergraph: the Y–V–W
/// triangle of Fig 4).
pub fn r3_query(x: i64) -> Program {
    parse(&format!(
        "p(X, Z) :- a(X, Y, V), b(Y, W), c(V, W, T), d(T), e(W, Z).
         ?- p({x}, Z)."
    ))
}

/// Mutually recursive odd/even reachability.
pub fn odd_even(start: i64) -> Program {
    parse(&format!(
        "odd(X, Y) :- edge(X, Y).
         odd(X, Y) :- edge(X, U), even(U, Y).
         even(X, Y) :- edge(X, U), odd(U, Y).
         ?- odd({start}, Z)."
    ))
}

/// The stratifiable fragment of the win-move game: a position with no
/// outgoing move is lost, a position that can move to a lost position is
/// won, and the query asks for positions the fragment leaves unresolved
/// (neither immediately won nor lost). Three strata: `moved` at 0,
/// `lose`/`win` at 1, `unresolved` at 2.
pub fn win_move() -> Program {
    parse(
        "moved(X) :- move(X, _Y).
         lose(X) :- pos(X), !moved(X).
         win(X) :- move(X, Y), lose(Y).
         unresolved(X) :- pos(X), !win(X), !lose(X).
         ?- unresolved(X).",
    )
}

/// Company control: `dtot` sums the share lots a company holds in
/// another, `controls` holds when the total clears the EDB `majority`
/// table, and `dominates` is the transitive closure of control. The
/// aggregate sits strictly below the recursion — the stratified shape
/// MP010 licenses.
pub fn company_control() -> Program {
    parse(
        "dtot(A, B, sum<S>) :- shares(A, B, S).
         controls(A, B) :- dtot(A, B, T), majority(T).
         dominates(A, B) :- controls(A, B).
         dominates(A, C) :- dominates(A, B), controls(B, C).
         ?- dominates(A, C).",
    )
}

/// Aggregate over recursion: count the nodes each source reaches via
/// transitive closure. `reach` is a recursive stratum-0 predicate;
/// `rcount` folds its sealed extension one stratum up.
pub fn agg_reachability() -> Program {
    parse(
        "reach(S, Y) :- src(S), edge(S, Y).
         reach(S, Z) :- reach(S, Y), edge(Y, Z).
         rcount(S, count<Y>) :- reach(S, Y).
         ?- rcount(S, N).",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_parse_and_have_queries() {
        let programs = [
            p1(1),
            tc_linear(0),
            tc_right_linear(0),
            tc_nonlinear(0),
            same_generation(3),
            ancestor(1),
            bom_components(0),
            r1_query(0),
            r2_query(0),
            r3_query(0),
            odd_even(0),
            win_move(),
            company_control(),
            agg_reachability(),
        ];
        for p in &programs {
            assert_eq!(p.query_rules().count(), 1);
            assert!(!p.rules.is_empty());
        }
    }

    #[test]
    fn stratified_programs_use_negation_or_aggregates() {
        assert!(win_move().rules.iter().any(|r| !r.neg.is_empty()));
        assert!(company_control().rules.iter().any(|r| r.agg.is_some()));
        assert!(agg_reachability().rules.iter().any(|r| r.agg.is_some()));
    }

    #[test]
    fn constants_are_embedded() {
        let p = tc_linear(42);
        let q = p.query_rules().next().unwrap();
        assert_eq!(q.body[0].terms[0], mp_datalog::Term::val(42));
    }
}
