#![warn(missing_docs)]

//! # mp-workloads
//!
//! Seeded, deterministic EDB generators and the canonical programs used
//! across the experiment suite (EXPERIMENTS.md): the paper's P1
//! (Example 2.1), R1–R3 (Example 4.1), transitive closure in its linear,
//! right-linear and nonlinear forms, same-generation, ancestor, and a
//! bill-of-materials hierarchy.
//!
//! All generators take explicit sizes and (where randomized) a seed, and
//! produce identical databases on every run and platform (ChaCha-based
//! streams).

pub mod defective;
pub mod graphs;
pub mod programs;
pub mod random_programs;
pub mod scenarios;

pub use scenarios::Workload;
