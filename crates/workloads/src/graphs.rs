//! EDB generators. Nodes are integer values; every generator is
//! deterministic (seeded where randomized).

use mp_datalog::Database;
use mp_storage::tuple;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A chain 0 → 1 → … → n under predicate `pred`.
pub fn chain(db: &mut Database, pred: &str, n: usize) {
    for i in 0..n {
        db.insert(pred, tuple![i, i + 1]).expect("arity 2");
    }
}

/// A cycle 0 → 1 → … → n−1 → 0.
pub fn cycle(db: &mut Database, pred: &str, n: usize) {
    for i in 0..n {
        db.insert(pred, tuple![i, (i + 1) % n]).expect("arity 2");
    }
}

/// A complete binary tree of the given depth, edges parent → child,
/// nodes numbered heap-style from 1.
pub fn binary_tree(db: &mut Database, pred: &str, depth: u32) {
    let last_parent = (1usize << depth) - 1;
    for p in 1..=last_parent {
        db.insert(pred, tuple![p, 2 * p]).expect("arity 2");
        db.insert(pred, tuple![p, 2 * p + 1]).expect("arity 2");
    }
}

/// A w×h grid with right- and down-edges; node (x, y) is numbered
/// `y * w + x`.
pub fn grid(db: &mut Database, pred: &str, w: usize, h: usize) {
    for y in 0..h {
        for x in 0..w {
            let id = y * w + x;
            if x + 1 < w {
                db.insert(pred, tuple![id, id + 1]).expect("arity 2");
            }
            if y + 1 < h {
                db.insert(pred, tuple![id, id + w]).expect("arity 2");
            }
        }
    }
}

/// A random digraph with `n` nodes and `m` distinct edges (no
/// self-loops), seeded.
pub fn random_graph(db: &mut Database, pred: &str, n: usize, m: usize, seed: u64) {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut inserted = 0usize;
    let cap = m.min(n * (n - 1));
    let mut guard = 0usize;
    while inserted < cap {
        guard += 1;
        assert!(guard < 100 * cap + 1000, "edge sampling stalled");
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        if db.insert(pred, tuple![a, b]).expect("arity 2") {
            inserted += 1;
        }
    }
}

/// A same-generation forest: a balanced tree of the given depth and
/// fanout with `up(child, parent)` and `down(parent, child)` edges, plus
/// `flat` edges among a fraction of sibling pairs. Leaves are the
/// youngest generation. Returns the id of one leaf (a natural query
/// subject).
pub fn same_generation(
    db: &mut Database,
    depth: u32,
    fanout: usize,
    flat_fraction: f64,
    seed: u64,
) -> i64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Level l has fanout^l nodes; number nodes level by level.
    let mut first_of_level = vec![0i64];
    let mut count = 1i64;
    for l in 1..=depth {
        first_of_level.push(count);
        count += (fanout as i64).pow(l);
    }
    for l in 1..=depth as usize {
        let parents = (fanout as i64).pow(l as u32 - 1);
        for p in 0..parents {
            let parent = first_of_level[l - 1] + p;
            let mut children = Vec::with_capacity(fanout);
            for c in 0..fanout as i64 {
                let child = first_of_level[l] + p * fanout as i64 + c;
                db.insert("up", tuple![child, parent]).expect("arity 2");
                db.insert("down", tuple![parent, child]).expect("arity 2");
                children.push(child);
            }
            for i in 0..children.len() {
                for j in 0..children.len() {
                    if i != j && rng.gen_bool(flat_fraction) {
                        db.insert("flat", tuple![children[i], children[j]])
                            .expect("arity 2");
                    }
                }
            }
        }
    }
    // Make sure the relations exist even when empty.
    db.declare("up", 2).expect("fresh");
    db.declare("down", 2).expect("fresh");
    db.declare("flat", 2).expect("fresh");
    first_of_level[depth as usize]
}

/// A bill-of-materials DAG: `parts` parts, each non-leaf using up to
/// `max_uses` strictly-higher-numbered parts (so the graph is acyclic),
/// under `uses(assembly, component)`. Part 0 is the top assembly.
pub fn bom(db: &mut Database, parts: usize, max_uses: usize, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    db.declare("uses", 2).expect("fresh");
    for p in 0..parts.saturating_sub(1) {
        let k = rng.gen_range(1..=max_uses);
        let mut pool: Vec<usize> = (p + 1..parts).collect();
        pool.shuffle(&mut rng);
        for &c in pool.iter().take(k) {
            db.insert("uses", tuple![p, c]).expect("arity 2");
        }
    }
}

/// A win-move board: `pos(0..n)` and `m` distinct random `move` edges
/// (no self-moves), seeded. Sinks arise naturally when `m` is sparse.
pub fn win_move_board(db: &mut Database, n: usize, m: usize, seed: u64) {
    db.declare("pos", 1).expect("fresh");
    db.declare("move", 2).expect("fresh");
    for i in 0..n {
        db.insert("pos", tuple![i]).expect("arity 1");
    }
    random_graph(db, "move", n, m, seed);
}

/// Share holdings for the company-control workload: `companies`
/// companies, each holding 1–3 lots (`shares(owner, company, pct)`, in
/// tenths of a percent, 100–402 per lot) in a few higher-numbered
/// companies, plus the EDB comparison table `majority(t)` for every
/// total that clears 50% (500 tenths). Ownership points strictly upward
/// in company number, so `dominates` chains but never cycles.
pub fn shareholdings(db: &mut Database, companies: usize, seed: u64) {
    assert!(companies >= 2, "need at least two companies");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    db.declare("shares", 3).expect("fresh");
    db.declare("majority", 1).expect("fresh");
    for owner in 0..companies - 1 {
        let targets = rng.gen_range(1..=2.min(companies - owner - 1));
        let mut pool: Vec<usize> = (owner + 1..companies).collect();
        pool.shuffle(&mut rng);
        for &held in pool.iter().take(targets) {
            let lots = rng.gen_range(1..=3);
            for lot in 0..lots {
                // Distinct percentages per lot: relations are sets, and
                // the sum must fold every lot exactly once.
                let pct = rng.gen_range(10..=40) * 10 + lot;
                db.insert("shares", tuple![owner, held, pct])
                    .expect("arity 3");
            }
        }
    }
    // Totals range over sums of up to 3 lots of at most 40*10+2.
    for t in 501..=1210i64 {
        db.insert("majority", tuple![t]).expect("arity 1");
    }
}

/// Sources for per-source reachability workloads: `src(0..k)`.
pub fn sources(db: &mut Database, k: usize) {
    db.declare("src", 1).expect("fresh");
    for s in 0..k {
        db.insert("src", tuple![s]).expect("arity 1");
    }
}

/// Relations for the paper's Example 4.1 rules (experiment E3): `a/3`,
/// `b/2`, `c/3` (for R3), `c2/2` (for R2), `d/1`, `e/2`.
///
/// The construction realizes the §1.2/§4 blowup condition exactly:
/// relations that are **pairwise consistent** (no dangling tuples between
/// any pair) yet whose R3 triangle join is nearly empty. For each of `n`
/// `(Y, V)` pairs produced by `a`, `b` fans out to `fanout` W-values and
/// `c` holds the same W-*values* but attached to a cyclically shifted
/// `V` — so every b-tuple joins some c-tuple on W (pairwise consistent),
/// while the three-way join on (V, W) succeeds only for the `overlap`
/// fraction. R2's chain (`b(Y,U)`, `c2(V,T)`) over the same data grows
/// monotonically.
pub fn example41(db: &mut Database, n: usize, fanout: usize, overlap: f64, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let f = fanout as i64;
    let shift = |i: i64| (i + 1) % n as i64;
    for i in 0..n as i64 {
        // a(X, Y, V): source 0 fans out to n (Y_i, V_i) pairs.
        db.insert("a", tuple![0, i, i + 10_000]).expect("arity 3");
        for k in 0..f {
            let w_i = 20_000 + i * f + k; // "W belonging to index i"
            db.insert("b", tuple![i, w_i]).expect("arity 2");
            // c(V, W, T): same W values, but paired with V of index i+1
            // (unless this index is in the overlap fraction).
            let c_owner = if rng.gen_bool(overlap) { i } else { shift(i) };
            db.insert("c", tuple![c_owner + 10_000, w_i, i * f + k + 30_000])
                .expect("arity 3");
            db.insert("d", tuple![i * f + k + 30_000]).expect("arity 1");
            // e(W, Z) for R3 / e(U, Z) for R2 (U ranges over b's W column).
            db.insert("e", tuple![w_i, i * f + k + 40_000])
                .expect("arity 2");
        }
        // R2's two-column c: V_i → T_i (chain shape, fully consistent).
        db.insert("c2", tuple![i + 10_000, i * f + 30_000])
            .expect("arity 2");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::Predicate;

    #[test]
    fn chain_and_cycle_sizes() {
        let mut db = Database::new();
        chain(&mut db, "e", 10);
        assert_eq!(db.relation(&Predicate::new("e")).unwrap().len(), 10);
        let mut db2 = Database::new();
        cycle(&mut db2, "e", 10);
        assert_eq!(db2.relation(&Predicate::new("e")).unwrap().len(), 10);
    }

    #[test]
    fn tree_and_grid_sizes() {
        let mut db = Database::new();
        binary_tree(&mut db, "e", 3);
        // 2^3 - 1 parents × 2 children.
        assert_eq!(db.relation(&Predicate::new("e")).unwrap().len(), 14);
        let mut db2 = Database::new();
        grid(&mut db2, "e", 3, 4);
        // Right edges: 2×4; down edges: 3×3.
        assert_eq!(db2.relation(&Predicate::new("e")).unwrap().len(), 8 + 9);
    }

    #[test]
    fn random_graph_is_deterministic() {
        let mut a = Database::new();
        let mut b = Database::new();
        random_graph(&mut a, "e", 20, 50, 7);
        random_graph(&mut b, "e", 20, 50, 7);
        assert_eq!(
            a.relation(&Predicate::new("e")).unwrap().sorted_rows(),
            b.relation(&Predicate::new("e")).unwrap().sorted_rows()
        );
        assert_eq!(a.relation(&Predicate::new("e")).unwrap().len(), 50);
    }

    #[test]
    fn same_generation_structure() {
        let mut db = Database::new();
        let leaf = same_generation(&mut db, 2, 2, 1.0, 1);
        // Levels: 1 + 2 + 4 nodes; leaf level starts at 3.
        assert_eq!(leaf, 3);
        assert_eq!(db.relation(&Predicate::new("up")).unwrap().len(), 6);
        // All sibling pairs flat: level1 2 ordered pairs + level2 2
        // groups × 2 = 6.
        assert_eq!(db.relation(&Predicate::new("flat")).unwrap().len(), 6);
    }

    #[test]
    fn bom_is_acyclic() {
        let mut db = Database::new();
        bom(&mut db, 30, 3, 42);
        let uses = db.relation(&Predicate::new("uses")).unwrap();
        for t in uses.iter() {
            assert!(t[0].as_int().unwrap() < t[1].as_int().unwrap());
        }
    }

    #[test]
    fn example41_relations_present() {
        let mut db = Database::new();
        example41(&mut db, 5, 2, 0.5, 3);
        for p in ["a", "b", "c", "c2", "d", "e"] {
            assert!(db.contains_pred(&Predicate::new(p)), "missing {p}");
        }
    }
}
