//! Packaged workloads: a program + database + descriptive name, ready
//! for an evaluator or the engine. These are the units the experiment
//! harness sweeps over.

use crate::{graphs, programs};
use mp_datalog::{Database, Program};

/// A named, fully materialized workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Identifier used in reports (e.g. `tc-chain-256`).
    pub name: String,
    /// The program including its query.
    pub program: Program,
    /// The EDB.
    pub db: Database,
}

impl Workload {
    fn new(name: impl Into<String>, program: Program, db: Database) -> Workload {
        Workload {
            name: name.into(),
            program,
            db,
        }
    }
}

/// Linear transitive closure over a chain of `n`, queried from node 0.
pub fn tc_chain(n: usize) -> Workload {
    let mut db = Database::new();
    graphs::chain(&mut db, "edge", n);
    Workload::new(format!("tc-chain-{n}"), programs::tc_linear(0), db)
}

/// Linear transitive closure over a cycle of `n` (tests duplicate
/// deletion and the termination protocol under saturation).
pub fn tc_cycle(n: usize) -> Workload {
    let mut db = Database::new();
    graphs::cycle(&mut db, "edge", n);
    Workload::new(format!("tc-cycle-{n}"), programs::tc_linear(0), db)
}

/// Linear transitive closure over a seeded random graph.
pub fn tc_random(n: usize, m: usize, seed: u64) -> Workload {
    let mut db = Database::new();
    graphs::random_graph(&mut db, "edge", n, m, seed);
    Workload::new(
        format!("tc-random-{n}x{m}-s{seed}"),
        programs::tc_linear(0),
        db,
    )
}

/// Nonlinear transitive closure over a chain.
pub fn tc_nonlinear_chain(n: usize) -> Workload {
    let mut db = Database::new();
    graphs::chain(&mut db, "edge", n);
    Workload::new(
        format!("tc-nonlinear-chain-{n}"),
        programs::tc_nonlinear(0),
        db,
    )
}

/// The paper's P1 over a chain `r` with `q` self-links everywhere, so
/// `p` is the chain's full transitive closure — but the query asks from
/// three quarters down the chain. The minimum model has Θ(n²) tuples
/// while only the Θ((n/4)²) suffix slice is relevant: exactly the
/// relevance structure sideways information passing exploits (§1).
pub fn p1_chain(n: usize) -> Workload {
    let mut db = Database::new();
    graphs::chain(&mut db, "r", n);
    for i in 1..=n {
        db.insert("q", mp_storage::tuple![i, i]).expect("arity 2");
    }
    let start = (3 * n / 4) as i64;
    Workload::new(format!("p1-chain-{n}"), programs::p1(start), db)
}

/// Same-generation on a balanced tree, queried from one leaf.
pub fn sg_tree(depth: u32, fanout: usize, seed: u64) -> Workload {
    let mut db = Database::new();
    let leaf = graphs::same_generation(&mut db, depth, fanout, 0.5, seed);
    Workload::new(
        format!("sg-tree-d{depth}f{fanout}-s{seed}"),
        programs::same_generation(leaf),
        db,
    )
}

/// Bill of materials, components of the top assembly.
pub fn bom(parts: usize, max_uses: usize, seed: u64) -> Workload {
    let mut db = Database::new();
    graphs::bom(&mut db, parts, max_uses, seed);
    Workload::new(
        format!("bom-{parts}p{max_uses}u-s{seed}"),
        programs::bom_components(0),
        db,
    )
}

/// Example 4.1's R2 (monotone) over generated relations with the given
/// `b` fanout.
pub fn r2(n: usize, fanout: usize, seed: u64) -> Workload {
    let mut db = Database::new();
    graphs::example41(&mut db, n, fanout, 0.1, seed);
    Workload::new(
        format!("r2-{n}f{fanout}-s{seed}"),
        programs::r2_query(0),
        db,
    )
}

/// Example 4.1's R3 (cyclic hypergraph) over pairwise-consistent
/// relations whose triangle join succeeds only for the `overlap`
/// fraction — §4's "nearly unjoinable due to mismatches on W".
pub fn r3(n: usize, fanout: usize, overlap: f64, seed: u64) -> Workload {
    let mut db = Database::new();
    graphs::example41(&mut db, n, fanout, overlap, seed);
    Workload::new(
        format!("r3-{n}f{fanout}-ov{:.0}pct-s{seed}", overlap * 100.0),
        programs::r3_query(0),
        db,
    )
}

/// Mutual odd/even recursion over a chain.
pub fn odd_even_chain(n: usize) -> Workload {
    let mut db = Database::new();
    graphs::chain(&mut db, "edge", n);
    Workload::new(format!("odd-even-chain-{n}"), programs::odd_even(0), db)
}

/// The stratified win-move fragment over a seeded random board:
/// negation across two strata.
pub fn win_move(n: usize, m: usize, seed: u64) -> Workload {
    let mut db = Database::new();
    graphs::win_move_board(&mut db, n, m, seed);
    Workload::new(
        format!("win-move-{n}x{m}-s{seed}"),
        programs::win_move(),
        db,
    )
}

/// Company control over seeded shareholdings: a sum aggregate feeding a
/// recursive transitive closure one stratum up.
pub fn company_control(companies: usize, seed: u64) -> Workload {
    let mut db = Database::new();
    graphs::shareholdings(&mut db, companies, seed);
    Workload::new(
        format!("company-control-{companies}-s{seed}"),
        programs::company_control(),
        db,
    )
}

/// Per-source reachability counts over a seeded random graph: a count
/// aggregate over a sealed recursive stratum.
pub fn agg_reachability(n: usize, m: usize, srcs: usize, seed: u64) -> Workload {
    let mut db = Database::new();
    graphs::random_graph(&mut db, "edge", n, m, seed);
    graphs::sources(&mut db, srcs);
    Workload::new(
        format!("agg-reach-{n}x{m}-k{srcs}-s{seed}"),
        programs::agg_reachability(),
        db,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_materialize() {
        for w in [
            tc_chain(16),
            tc_cycle(8),
            tc_random(16, 32, 1),
            tc_nonlinear_chain(8),
            p1_chain(9),
            sg_tree(3, 2, 1),
            bom(20, 3, 1),
            r2(10, 2, 1),
            r3(10, 2, 0.5, 1),
            odd_even_chain(10),
            win_move(16, 20, 1),
            company_control(8, 1),
            agg_reachability(16, 32, 4, 1),
        ] {
            assert!(!w.name.is_empty());
            assert!(w.db.fact_count() > 0, "{} has facts", w.name);
            assert_eq!(w.program.query_rules().count(), 1, "{}", w.name);
        }
    }

    #[test]
    fn workloads_are_reproducible() {
        let a = tc_random(20, 40, 9);
        let b = tc_random(20, 40, 9);
        assert_eq!(a.db.fact_count(), b.db.fact_count());
        let pa = a.db.relation(&mp_datalog::Predicate::new("edge")).unwrap();
        let pb = b.db.relation(&mp_datalog::Predicate::new("edge")).unwrap();
        assert_eq!(pa.sorted_rows(), pb.sorted_rows());
    }
}
