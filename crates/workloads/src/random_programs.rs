//! Random safe Datalog program generation, for differential testing.
//!
//! The generator produces function-free Horn programs that always pass
//! the §1 validation: range-restricted rules, EDB/IDB separation, one
//! query rule. Recursion (including nonlinear and mutual) arises
//! naturally from the predicate-choice distribution. Paired with a
//! random EDB, any two evaluators can be differentially tested: they
//! must produce the same `goal` relation.

use mp_datalog::{Atom, Database, Program, Rule, Term};
use mp_storage::tuple;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Knobs for the generator.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// Number of EDB predicates (named `e0`, `e1`, …; arity 1–2).
    pub edb_preds: usize,
    /// Number of IDB predicates (named `p0`, `p1`, …; arity 1–2).
    pub idb_preds: usize,
    /// Rules per IDB predicate (1..=max).
    pub max_rules_per_pred: usize,
    /// Max body atoms per rule.
    pub max_body: usize,
    /// Probability a body atom is an IDB predicate (drives recursion).
    pub idb_probability: f64,
    /// Constant domain size for EDB facts.
    pub domain: i64,
    /// EDB facts per relation.
    pub facts_per_relation: usize,
}

impl Default for ProgramSpec {
    fn default() -> Self {
        ProgramSpec {
            edb_preds: 2,
            idb_preds: 3,
            max_rules_per_pred: 2,
            max_body: 3,
            idb_probability: 0.4,
            domain: 8,
            facts_per_relation: 12,
        }
    }
}

/// Generate a program + database from a seed. The result always
/// validates; answers may of course be empty.
pub fn generate(spec: &ProgramSpec, seed: u64) -> (Program, Database) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let edb_arity: Vec<usize> = (0..spec.edb_preds).map(|_| rng.gen_range(1..=2)).collect();
    let idb_arity: Vec<usize> = (0..spec.idb_preds).map(|_| rng.gen_range(1..=2)).collect();

    let all_idb: Vec<usize> = (0..spec.idb_preds).collect();
    let mut rules: Vec<Rule> = Vec::new();
    for p in 0..spec.idb_preds {
        let n_rules = rng.gen_range(1..=spec.max_rules_per_pred);
        for _ in 0..n_rules {
            rules.push(random_rule(
                &mut rng, spec, p, &edb_arity, &idb_arity, &all_idb,
            ));
        }
    }
    // Query: goal over one IDB predicate, possibly with a constant.
    let qp = rng.gen_range(0..spec.idb_preds);
    let arity = idb_arity[qp];
    let mut terms: Vec<Term> = Vec::new();
    let mut head_vars: Vec<Term> = Vec::new();
    for i in 0..arity {
        if arity > 1 && i == 0 && rng.gen_bool(0.5) {
            terms.push(Term::val(rng.gen_range(0..spec.domain)));
        } else {
            let v = Term::var(format!("Q{i}"));
            terms.push(v.clone());
            head_vars.push(v);
        }
    }
    rules.push(Rule::new(
        Atom::new("goal", head_vars),
        vec![Atom::new(format!("p{qp}").as_str(), terms)],
    ));

    let mut db = Database::new();
    for (e, &arity) in edb_arity.iter().enumerate() {
        let pred = format!("e{e}");
        db.declare(pred.as_str(), arity).expect("fresh");
        for _ in 0..spec.facts_per_relation {
            let t = match arity {
                1 => tuple![rng.gen_range(0..spec.domain)],
                _ => tuple![rng.gen_range(0..spec.domain), rng.gen_range(0..spec.domain)],
            };
            let _ = db.insert(pred.as_str(), t);
        }
    }

    (Program::new(rules), db)
}

/// One random safe rule for `p{head_idx}`. Body IDB atoms are drawn
/// from `idb_allowed` only (the stratified generator restricts this to
/// the head's layer and below).
fn random_rule(
    rng: &mut ChaCha8Rng,
    spec: &ProgramSpec,
    head_idx: usize,
    edb_arity: &[usize],
    idb_arity: &[usize],
    idb_allowed: &[usize],
) -> Rule {
    let body_len = rng.gen_range(1..=spec.max_body);
    let var_pool = 1 + body_len; // enough variables to share and to leave loose

    let mut body: Vec<Atom> = Vec::new();
    for _ in 0..body_len {
        let is_idb = rng.gen_bool(spec.idb_probability) && !idb_allowed.is_empty();
        let (name, arity) = if is_idb {
            let p = idb_allowed[rng.gen_range(0..idb_allowed.len())];
            (format!("p{p}"), idb_arity[p])
        } else {
            let e = rng.gen_range(0..edb_arity.len());
            (format!("e{e}"), edb_arity[e])
        };
        let terms: Vec<Term> = (0..arity)
            .map(|_| {
                if rng.gen_bool(0.15) {
                    Term::val(rng.gen_range(0..spec.domain))
                } else {
                    Term::var(format!("V{}", rng.gen_range(0..var_pool)))
                }
            })
            .collect();
        body.push(Atom::new(name.as_str(), terms));
    }

    // Head: only variables occurring in the body (range restriction);
    // fall back to a constant if the body happens to be all-constant.
    let body_vars: Vec<Term> = {
        let mut vs = Vec::new();
        for a in &body {
            for v in a.vars() {
                let t = Term::Var(v);
                if !vs.contains(&t) {
                    vs.push(t);
                }
            }
        }
        vs
    };
    let arity = idb_arity[head_idx];
    let head_terms: Vec<Term> = (0..arity)
        .map(|_| {
            if body_vars.is_empty() || rng.gen_bool(0.1) {
                Term::val(rng.gen_range(0..spec.domain))
            } else {
                body_vars[rng.gen_range(0..body_vars.len())].clone()
            }
        })
        .collect();
    Rule::new(Atom::new(format!("p{head_idx}").as_str(), head_terms), body)
}

/// Knobs for the stratified-negation generator, layered on
/// [`ProgramSpec`].
#[derive(Clone, Debug)]
pub struct StratifiedSpec {
    /// The positive-program knobs.
    pub base: ProgramSpec,
    /// Number of negation layers. IDB predicates are assigned
    /// round-robin; a rule's positive body draws from its head's layer
    /// and below, negation only from strictly lower layers (or EDB) —
    /// so generated programs are stratifiable by construction.
    pub layers: usize,
    /// Probability a rule carries one negated subgoal (when its
    /// positive body binds at least one variable).
    pub neg_probability: f64,
}

impl Default for StratifiedSpec {
    fn default() -> Self {
        StratifiedSpec {
            base: ProgramSpec::default(),
            layers: 2,
            neg_probability: 0.6,
        }
    }
}

/// Generate a stratified program with negation, plus a database, from a
/// seed. Negated subgoals reference only EDB predicates or IDB
/// predicates in strictly lower layers, and every negated variable is
/// bound by the positive body — the result always passes the engine's
/// MP009/MP011 gates (warnings like singletons may remain).
pub fn generate_stratified(spec: &StratifiedSpec, seed: u64) -> (Program, Database) {
    let base = &spec.base;
    let layers = spec.layers.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let edb_arity: Vec<usize> = (0..base.edb_preds).map(|_| rng.gen_range(1..=2)).collect();
    let idb_arity: Vec<usize> = (0..base.idb_preds).map(|_| rng.gen_range(1..=2)).collect();
    let layer: Vec<usize> = (0..base.idb_preds).map(|p| p % layers).collect();

    let mut rules: Vec<Rule> = Vec::new();
    for p in 0..base.idb_preds {
        let allowed: Vec<usize> = (0..base.idb_preds)
            .filter(|&q| layer[q] <= layer[p])
            .collect();
        let n_rules = rng.gen_range(1..=base.max_rules_per_pred);
        for _ in 0..n_rules {
            let mut rule = random_rule(&mut rng, base, p, &edb_arity, &idb_arity, &allowed);
            maybe_negate(
                &mut rng, spec, &mut rule, layer[p], &edb_arity, &idb_arity, &layer,
            );
            rules.push(rule);
        }
    }

    // Query one predicate from the top layer, so the staged pipeline is
    // actually exercised; same head-shape logic as the base generator.
    let top = layer.iter().copied().max().unwrap_or(0);
    let top_preds: Vec<usize> = (0..base.idb_preds).filter(|&p| layer[p] == top).collect();
    let qp = top_preds[rng.gen_range(0..top_preds.len())];
    let arity = idb_arity[qp];
    let mut terms: Vec<Term> = Vec::new();
    let mut head_vars: Vec<Term> = Vec::new();
    for i in 0..arity {
        if arity > 1 && i == 0 && rng.gen_bool(0.5) {
            terms.push(Term::val(rng.gen_range(0..base.domain)));
        } else {
            let v = Term::var(format!("Q{i}"));
            terms.push(v.clone());
            head_vars.push(v);
        }
    }
    rules.push(Rule::new(
        Atom::new("goal", head_vars),
        vec![Atom::new(format!("p{qp}").as_str(), terms)],
    ));

    let mut db = Database::new();
    for (e, &arity) in edb_arity.iter().enumerate() {
        let pred = format!("e{e}");
        db.declare(pred.as_str(), arity).expect("fresh");
        for _ in 0..base.facts_per_relation {
            let t = match arity {
                1 => tuple![rng.gen_range(0..base.domain)],
                _ => tuple![rng.gen_range(0..base.domain), rng.gen_range(0..base.domain)],
            };
            let _ = db.insert(pred.as_str(), t);
        }
    }

    (Program::new(rules), db)
}

/// Maybe attach one negated subgoal to `rule`: a random EDB predicate
/// or IDB predicate from a strictly lower layer, every variable drawn
/// from the positive body (the MP011 safety condition).
fn maybe_negate(
    rng: &mut ChaCha8Rng,
    spec: &StratifiedSpec,
    rule: &mut Rule,
    head_layer: usize,
    edb_arity: &[usize],
    idb_arity: &[usize],
    layer: &[usize],
) {
    if !rng.gen_bool(spec.neg_probability) {
        return;
    }
    let mut bound: Vec<Term> = Vec::new();
    for a in &rule.body {
        for v in a.vars() {
            let t = Term::Var(v);
            if !bound.contains(&t) {
                bound.push(t);
            }
        }
    }
    if bound.is_empty() {
        return;
    }
    let mut targets: Vec<(String, usize)> = (0..edb_arity.len())
        .map(|e| (format!("e{e}"), edb_arity[e]))
        .collect();
    for (p, &a) in idb_arity.iter().enumerate() {
        if layer[p] < head_layer {
            targets.push((format!("p{p}"), a));
        }
    }
    let (name, arity) = targets[rng.gen_range(0..targets.len())].clone();
    let terms: Vec<Term> = (0..arity)
        .map(|_| {
            if rng.gen_bool(0.2) {
                Term::val(rng.gen_range(0..spec.base.domain))
            } else {
                bound[rng.gen_range(0..bound.len())].clone()
            }
        })
        .collect();
    rule.neg.push(Atom::new(name.as_str(), terms));
}

/// True if at least one IDB predicate reachable from `goal` is defined —
/// generated programs can be vacuous; callers may skip those.
pub fn is_interesting(program: &Program, db: &Database) -> bool {
    program.validate(db).is_ok()
        && mp_datalog::analysis::DependencyAnalysis::of(program)
            .relevant_to_goal()
            .iter()
            .any(|p| db.contains_pred(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate() {
        let spec = ProgramSpec::default();
        for seed in 0..100 {
            let (program, db) = generate(&spec, seed);
            program
                .validate(&db)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{program}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ProgramSpec::default();
        let (p1, d1) = generate(&spec, 42);
        let (p2, d2) = generate(&spec, 42);
        assert_eq!(format!("{p1}"), format!("{p2}"));
        assert_eq!(d1.fact_count(), d2.fact_count());
    }

    #[test]
    fn recursion_occurs_across_seeds() {
        let spec = ProgramSpec::default();
        let mut recursive_seen = 0;
        for seed in 0..50 {
            let (program, _) = generate(&spec, seed);
            let analysis = mp_datalog::analysis::DependencyAnalysis::of(&program);
            if !analysis.recursive.is_empty() {
                recursive_seen += 1;
            }
        }
        assert!(recursive_seen > 10, "only {recursive_seen}/50 recursive");
    }

    #[test]
    fn stratified_programs_validate_and_negate() {
        let spec = StratifiedSpec::default();
        let mut with_neg = 0;
        for seed in 0..100 {
            let (program, db) = generate_stratified(&spec, seed);
            program
                .validate(&db)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{program}"));
            if program.rules.iter().any(|r| !r.neg.is_empty()) {
                with_neg += 1;
            }
        }
        assert!(with_neg > 40, "only {with_neg}/100 programs use negation");
    }

    #[test]
    fn stratified_generation_is_deterministic() {
        let spec = StratifiedSpec::default();
        let (p1, d1) = generate_stratified(&spec, 7);
        let (p2, d2) = generate_stratified(&spec, 7);
        assert_eq!(format!("{p1}"), format!("{p2}"));
        assert_eq!(d1.fact_count(), d2.fact_count());
    }

    #[test]
    fn stratified_programs_pass_the_stratifier() {
        let spec = StratifiedSpec::default();
        for seed in 0..50 {
            let (program, _) = generate_stratified(&spec, seed);
            let (plan, diags) = mp_analyze::stratify(&program, None);
            assert!(
                diags.iter().all(|d| !d.is_deny()),
                "seed {seed}: {diags:?}\n{program}"
            );
            assert!(plan.count() >= 1, "seed {seed} has an empty plan");
        }
    }

    #[test]
    fn interesting_filter_works() {
        let spec = ProgramSpec::default();
        let mut interesting = 0;
        for seed in 0..50 {
            let (program, db) = generate(&spec, seed);
            if is_interesting(&program, &db) {
                interesting += 1;
            }
        }
        assert!(interesting > 25, "only {interesting}/50 interesting");
    }
}
