//! Golden tests: every defective fixture triggers exactly the lint codes
//! it advertises, every program-level code is covered by some fixture,
//! and the canonical workload programs produce zero diagnostics.

use mp_datalog::parser::parse_program_with_spans;
use mp_lint::program::lint_program;
use mp_workloads::{defective, programs};

#[test]
fn every_fixture_triggers_its_expected_codes() {
    for f in defective::all() {
        let (program, spans) = parse_program_with_spans(f.source)
            .unwrap_or_else(|e| panic!("fixture {} must parse: {e}", f.name));
        let diags = lint_program(&program, None, Some(&spans));
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        for expected in f.expect {
            assert!(
                codes.contains(expected),
                "fixture {}: expected {expected}, got {codes:?}",
                f.name
            );
        }
    }
}

#[test]
fn fixtures_cover_every_program_lint_code() {
    let covered: std::collections::BTreeSet<&str> = defective::all()
        .iter()
        .flat_map(|f| f.expect.iter().copied())
        .collect();
    for code in [
        "MP001", "MP002", "MP003", "MP004", "MP005", "MP006", "MP007", "MP008",
    ] {
        assert!(covered.contains(code), "no fixture covers {code}");
    }
}

#[test]
fn diagnostics_carry_spans_from_fixture_sources() {
    // Spot-check that span plumbing works end to end: the unsafe rule's
    // diagnostic must point into the source it came from.
    let f = defective::all()
        .iter()
        .find(|f| f.name == "unsafe_head_var")
        .unwrap();
    let (program, spans) = parse_program_with_spans(f.source).unwrap();
    let diags = lint_program(&program, None, Some(&spans));
    let unsafe_diag = diags
        .iter()
        .find(|d| d.code.as_str() == "MP001")
        .expect("MP001 fires");
    let span = unsafe_diag.span.expect("MP001 carries a span");
    assert!(span.line >= 1 && span.line <= f.source.lines().count());
}

#[test]
fn engine_compile_rejects_deny_fixtures_without_panicking() {
    // Warnings are advisory, so only fixtures carrying a deny code must
    // be refused; either way compile() must return, never panic.
    for f in defective::all() {
        let (program, _) = parse_program_with_spans(f.source).unwrap();
        let expects_deny = f.expect.iter().any(|c| !matches!(*c, "MP006" | "MP007"));
        let result = mp_engine::Engine::new(program, mp_datalog::Database::new()).compile();
        match result {
            Err(mp_engine::EngineError::Lint(diags)) => {
                assert!(
                    expects_deny,
                    "fixture {}: unexpected lint rejection {diags:?}",
                    f.name
                );
                assert!(diags.iter().any(|d| d.is_deny()));
            }
            Err(other) => panic!("fixture {}: non-lint error {other}", f.name),
            Ok(_) => assert!(
                !expects_deny,
                "fixture {}: deny fixture compiled successfully",
                f.name
            ),
        }
    }
}

#[test]
fn canonical_programs_are_lint_clean() {
    let catalog: [(&str, mp_datalog::Program); 14] = [
        ("p1", programs::p1(1)),
        ("tc_linear", programs::tc_linear(0)),
        ("tc_right_linear", programs::tc_right_linear(0)),
        ("tc_nonlinear", programs::tc_nonlinear(0)),
        ("same_generation", programs::same_generation(3)),
        ("ancestor", programs::ancestor(1)),
        ("bom_components", programs::bom_components(0)),
        ("r1_query", programs::r1_query(0)),
        ("r2_query", programs::r2_query(0)),
        ("r3_query", programs::r3_query(0)),
        ("odd_even", programs::odd_even(0)),
        ("win_move", programs::win_move()),
        ("company_control", programs::company_control()),
        ("agg_reachability", programs::agg_reachability()),
    ];
    for (name, program) in &catalog {
        let diags = lint_program(program, None, None);
        assert!(
            diags.is_empty(),
            "canonical program {name} should be clean, got {diags:?}"
        );
    }
}

#[test]
fn random_programs_have_no_deny_diagnostics() {
    // Generated workloads may legitimately carry warnings (e.g. singleton
    // variables in random rule bodies) but must never trip a deny lint —
    // they are all evaluated by the engine, whose compile() gates on deny.
    let spec = mp_workloads::random_programs::ProgramSpec::default();
    for seed in 0..8u64 {
        let (program, db) = mp_workloads::random_programs::generate(&spec, seed);
        let diags = lint_program(&program, Some(&db), None);
        let denies: Vec<_> = diags.iter().filter(|d| d.is_deny()).collect();
        assert!(
            denies.is_empty(),
            "seed {seed}: deny diagnostics {denies:?}"
        );
    }
}

#[test]
fn stratified_random_programs_pass_every_gate() {
    // The stratified generator must clear both gates the engine compiles
    // through: the program lints (incl. MP011 negation safety) and the
    // stratification pass (MP009/MP010).
    let spec = mp_workloads::random_programs::StratifiedSpec::default();
    for seed in 0..8u64 {
        let (program, db) = mp_workloads::random_programs::generate_stratified(&spec, seed);
        let diags = lint_program(&program, Some(&db), None);
        let denies: Vec<_> = diags.iter().filter(|d| d.is_deny()).collect();
        assert!(
            denies.is_empty(),
            "seed {seed}: deny lints {denies:?}\n{program}"
        );
        let (_, strat) = mp_analyze::stratify(&program, None);
        assert!(
            strat.iter().all(|d| !d.is_deny()),
            "seed {seed}: stratify denies {strat:?}\n{program}"
        );
    }
}
