//! mp-analyze coverage over the canonical workloads: every temporary
//! relation gets a concrete shard placement (a key, the root gather
//! point, or a singleton) or an explicit MP405 broadcast diagnostic —
//! and the EDB degree statistics behind the cardinality estimates are
//! exact on structured graphs.

use mp_analyze::{analyze, AnalyzeOptions, PartitionKey};
use mp_datalog::DbStats;
use mp_lint::Code;
use mp_rulegoal::{RuleGoalGraph, SipKind};
use mp_workloads::scenarios::{self, Workload};

fn canonical() -> Vec<Workload> {
    vec![
        scenarios::tc_chain(16),
        scenarios::tc_cycle(12),
        scenarios::tc_random(24, 48, 7),
        scenarios::tc_nonlinear_chain(10),
        scenarios::p1_chain(16),
        scenarios::sg_tree(3, 2, 11),
        scenarios::bom(24, 3, 5),
        scenarios::r2(16, 2, 3),
        scenarios::r3(16, 2, 0.5, 3),
        scenarios::odd_even_chain(16),
    ]
}

/// The ROADMAP item 1 acceptance bar: on every canonical workload, every
/// node's temporary relation is either placed (Key/Gather/Singleton) or
/// the analysis says out loud that K-way sharding would broadcast it.
#[test]
fn every_canonical_workload_gets_partition_keys_or_explicit_mp405() {
    for w in canonical() {
        let mut db = w.db.clone();
        let _ = w.program.load_facts(&mut db);
        let graph = RuleGoalGraph::build(&w.program, &db, SipKind::Greedy)
            .unwrap_or_else(|e| panic!("{}: graph build failed: {e}", w.name));
        let a = analyze(&w.program, &db, &graph, None, &AnalyzeOptions::default());
        // Instance-level pruning may legitimately fire (e.g. a random
        // graph whose query constant has no outgoing edges); the mask
        // and the annotations must agree about it.
        assert_eq!(
            a.pruned_nodes,
            a.nodes.iter().filter(|n| n.pruned).count(),
            "{}: prune mask and annotations disagree",
            w.name
        );
        for n in &a.nodes {
            if n.partition == PartitionKey::Broadcast {
                assert!(
                    a.diagnostics
                        .iter()
                        .any(|d| d.code == Code::BroadcastRequired
                            && d.message.contains(&format!("#{}", n.id))),
                    "{}: node #{} broadcasts without an MP405 diagnostic",
                    w.name,
                    n.id
                );
            }
        }
        // The flagship recursive workloads shard cleanly: no broadcasts
        // at all on the transitive-closure family.
        if w.name.starts_with("tc-") {
            assert!(
                a.nodes
                    .iter()
                    .all(|n| n.partition != PartitionKey::Broadcast),
                "{}: transitive closure must be fully partitionable",
                w.name
            );
        }
    }
}

/// Degree statistics on canonical graph shapes are exact, not estimates:
/// a chain is functional in both directions; a balanced tree's `up`
/// relation has in-degree = fanout at internal nodes.
#[test]
fn degree_stats_are_exact_on_canonical_graphs() {
    let chain = scenarios::tc_chain(16);
    let stats = DbStats::of(&chain.db);
    let edge = stats.relation(&"edge".into()).expect("edge exists");
    assert_eq!(edge.max_out_degree, Some(1), "chain is functional");
    assert_eq!(edge.max_in_degree, Some(1), "chain is inverse-functional");

    let cycle = scenarios::tc_cycle(12);
    let stats = DbStats::of(&cycle.db);
    let edge = stats.relation(&"edge".into()).expect("edge exists");
    assert_eq!(edge.max_out_degree, Some(1));
    assert_eq!(edge.max_in_degree, Some(1));

    // sg's child→parent edges: every child has one parent, and internal
    // parents have `fanout` children.
    let sg = scenarios::sg_tree(3, 2, 11);
    let stats = DbStats::of(&sg.db);
    let up = stats.relation(&"up".into()).expect("up exists");
    assert_eq!(up.max_out_degree, Some(1), "each child has one parent");
    assert_eq!(up.max_in_degree, Some(2), "binary tree parents");
}
