#![warn(missing_docs)]

//! # criterion (vendored stand-in)
//!
//! Offline replacement for the `criterion` benchmark harness covering the
//! surface this workspace's `benches/` use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_with_input`]
//! with [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. No statistics engine:
//! each benchmark runs `sample_size` iterations after one warmup and the
//! mean/min wall-clock times are printed. Good enough to keep the bench
//! targets compiling and runnable without the network.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            _criterion: self,
        }
    }
}

/// Identifies one benchmark within a group: a function name plus the
/// parameter it ran with.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.samples),
            target: self.samples,
        };
        routine(&mut bencher, input);
        let (mean, min) = bencher.summary();
        println!(
            "bench {}/{}: mean {:?}, min {:?} ({} samples)",
            self.name, id.label, mean, min, self.samples
        );
        self
    }

    /// Finish the group (prints nothing; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing harness handed to each benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Time `routine`, once for warmup and `sample_size` times measured.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup
        self.samples.clear();
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().unwrap();
        (mean, min)
    }
}

/// Define a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        // 1 warmup + 3 measured
        assert_eq!(runs, 4);
    }
}
