//! Regenerate the EXPERIMENTS.md tables.
//!
//! ```sh
//! cargo run -p mp-bench --release --bin report                   # full scale
//! cargo run -p mp-bench --release --bin report -- quick          # smoke scale
//! cargo run -p mp-bench --release --bin report -- e3             # one experiment
//! cargo run -p mp-bench --release --bin report -- quick e11 --json
//! ```
//!
//! `--json` renders the selected experiment as a JSON array instead of
//! markdown (used by the CI bench-smoke job to publish artifacts); it
//! requires naming one experiment.

use mp_bench::experiments;
use mp_bench::{json_table, markdown_table, Row, Scale};

fn render<T: Row>(rows: &[T], json: bool) -> String {
    if json {
        json_table(rows)
    } else {
        markdown_table(rows)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let json = args.iter().any(|a| a == "--json");
    let only: Option<&str> = args
        .iter()
        .find(|a| (a.starts_with('e') || a.starts_with('a')) && (a.len() == 2 || a.len() == 3))
        .map(String::as_str);

    match only {
        None if json => eprintln!("--json needs one experiment, e.g. `report quick e11 --json`"),
        None => print!("{}", experiments::full_report(scale)),
        Some("e1") => print!("{}", render(&experiments::e1(scale), json)),
        Some("e2") => print!("{}", render(&experiments::e2(scale), json)),
        Some("e3") => print!("{}", render(&experiments::e3(scale), json)),
        Some("e4") => print!("{}", render(&experiments::e4(scale), json)),
        Some("e5") => print!("{}", render(&experiments::e5(scale), json)),
        Some("e6") => print!("{}", render(&experiments::e6(scale), json)),
        Some("e7") => print!("{}", render(&experiments::e7(scale), json)),
        Some("e8") => print!("{}", render(&experiments::e8(scale), json)),
        Some("e9") => print!("{}", render(&experiments::e9(scale), json)),
        Some("e10") => print!("{}", render(&experiments::e10(scale), json)),
        Some("e11") => print!("{}", render(&experiments::e11(scale), json)),
        Some("e12") => print!("{}", render(&experiments::e12(scale), json)),
        Some("e13") => print!("{}", render(&experiments::e13(scale), json)),
        Some("e14") => print!("{}", render(&experiments::e14(scale), json)),
        Some("e15") => print!("{}", render(&experiments::e15(scale), json)),
        Some("e16") => print!("{}", render(&experiments::e16(scale), json)),
        Some("a1") => print!("{}", render(&experiments::a1(scale), json)),
        Some("a2") => print!("{}", render(&experiments::a2(scale), json)),
        Some(other) => eprintln!("unknown experiment {other}; use e1..e16, a1, a2"),
    }
}
