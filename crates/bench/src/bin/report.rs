//! Regenerate the EXPERIMENTS.md tables.
//!
//! ```sh
//! cargo run -p mp-bench --release --bin report           # full scale
//! cargo run -p mp-bench --release --bin report -- quick  # smoke scale
//! cargo run -p mp-bench --release --bin report -- e3     # one experiment
//! ```

use mp_bench::experiments;
use mp_bench::{markdown_table, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let only: Option<&str> = args
        .iter()
        .find(|a| (a.starts_with('e') || a.starts_with('a')) && (a.len() == 2 || a.len() == 3))
        .map(String::as_str);

    match only {
        None => print!("{}", experiments::full_report(scale)),
        Some("e1") => print!("{}", markdown_table(&experiments::e1(scale))),
        Some("e2") => print!("{}", markdown_table(&experiments::e2(scale))),
        Some("e3") => print!("{}", markdown_table(&experiments::e3(scale))),
        Some("e4") => print!("{}", markdown_table(&experiments::e4(scale))),
        Some("e5") => print!("{}", markdown_table(&experiments::e5(scale))),
        Some("e6") => print!("{}", markdown_table(&experiments::e6(scale))),
        Some("e7") => print!("{}", markdown_table(&experiments::e7(scale))),
        Some("e8") => print!("{}", markdown_table(&experiments::e8(scale))),
        Some("e9") => print!("{}", markdown_table(&experiments::e9(scale))),
        Some("e10") => print!("{}", markdown_table(&experiments::e10(scale))),
        Some("a1") => print!("{}", markdown_table(&experiments::a1(scale))),
        Some("a2") => print!("{}", markdown_table(&experiments::a2(scale))),
        Some(other) => eprintln!("unknown experiment {other}; use e1..e10, a1, a2"),
    }
}
