//! The nine experiments of EXPERIMENTS.md. Each returns table rows;
//! `Scale::Quick` keeps everything under a few seconds for tests.

use crate::{markdown_table, run_baseline, run_engine, run_engine_with, Scale};
use mp_baselines::{all_baselines, MagicSets, SemiNaive};
use mp_datalog::analysis::DependencyAnalysis;
use mp_datalog::{Database, Var};
use mp_engine::{Engine, FaultPlan, QueryBudget, RuntimeKind, Schedule};
use mp_hypergraph::compose::compose;
use mp_hypergraph::cost::{optimal_order, predict, CostModel};
use mp_hypergraph::{monotone_flow, MonotoneFlow};
use mp_rulegoal::{RuleGoalGraph, SipKind};
use mp_workloads::{graphs, programs, scenarios};
use std::collections::BTreeSet;
use std::time::Instant;

crate::impl_row!(E1Row {
    n,
    method,
    answers,
    idb_tuples,
    stored,
    messages,
    millis
});
crate::impl_row!(E2Row {
    workload,
    work_messages,
    protocol_messages,
    overhead,
    probe_waves,
    schedules_tried,
    schedules_agreeing,
});
crate::impl_row!(E3Row {
    rule,
    n,
    overlap,
    sip,
    answers,
    max_stage,
    blowup,
    stored
});
crate::impl_row!(E4Row {
    depth,
    body_len,
    composed_valid,
    monotone_preserved,
    micros_per_compose
});
crate::impl_row!(E5Row {
    workload,
    linear_method_applicable,
    method,
    answers,
    stored,
    millis
});
crate::impl_row!(E6Row {
    n,
    sip,
    answers,
    stored,
    messages,
    join_probes
});
crate::impl_row!(E7Row {
    branches,
    runtime,
    answers,
    millis
});
crate::impl_row!(E8Row {
    program,
    edb_facts,
    graph_nodes,
    coalescible
});
crate::impl_row!(E9Row {
    rule,
    order,
    measured_stored,
    model_optimal
});
crate::impl_row!(E10Row {
    workload,
    plan,
    runs,
    messages,
    faults_injected,
    retransmits,
    dups_discarded,
    crashes,
    recovered,
    answers_ok,
});
crate::impl_row!(A1Row {
    workload,
    plain_requests,
    batched_requests,
    packages,
    plain_total,
    batched_total,
});
crate::impl_row!(A2Row {
    n,
    sip,
    answers,
    messages,
    stored
});
crate::impl_row!(E11Row {
    workload,
    batch,
    answers,
    logical_answers,
    physical_frames,
    millis,
    tuples_per_sec,
    speedup,
});
crate::impl_row!(E14Row {
    workload,
    governance,
    answers,
    logical_messages,
    stalls,
    millis,
    msgs_per_sec,
    overhead,
});
crate::impl_row!(E12Row {
    workload,
    runtime,
    tracing,
    answers,
    events,
    millis,
    tuples_per_sec,
    slowdown,
});
crate::impl_row!(E13Row {
    workload,
    workers,
    answers,
    logical_answers,
    activations,
    steals,
    millis,
    tuples_per_sec,
    speedup,
});
crate::impl_row!(E15Row {
    workload,
    runtime,
    shards,
    answers,
    logical_answers,
    routed_frames,
    max_skew,
    millis,
});
crate::impl_row!(E16Row {
    workload,
    runtime,
    shards,
    strata,
    answers,
    logical_answers,
    millis,
});

/// E1 row: P1 (Fig 1) across methods and sizes.
#[derive(Clone, Debug)]
pub struct E1Row {
    /// Chain length.
    pub n: usize,
    /// Method label.
    pub method: String,
    /// Answers.
    pub answers: usize,
    /// IDB tuples computed (goal-node answers for the engine; store-wide
    /// IDB for baselines).
    pub idb_tuples: u64,
    /// All stored tuples including per-node copies (engine trades space
    /// for communication, §3.1).
    pub stored: u64,
    /// Messages (engine only).
    pub messages: u64,
    /// Milliseconds.
    pub millis: f64,
}

/// E1 — evaluating the paper's P1 with greedy sideways information
/// passing restricts computation to relevant tuples (Fig 1, §1.2).
pub fn e1(scale: Scale) -> Vec<E1Row> {
    let sizes = scale.sizes(&[16, 32], &[32, 64, 128, 256]);
    let mut rows = Vec::new();
    for &n in sizes {
        let w = scenarios::p1_chain(n);
        let er = run_engine(&w.program, &w.db, SipKind::Greedy);
        rows.push(E1Row {
            n,
            method: er.method,
            answers: er.answers,
            idb_tuples: er.goal_stored,
            stored: er.stored,
            messages: er.messages,
            millis: er.millis,
        });
        for ev in all_baselines() {
            let br = run_baseline(ev.as_ref(), &w.program, &w.db);
            rows.push(E1Row {
                n,
                method: br.method,
                answers: br.answers,
                idb_tuples: br.stored,
                stored: br.stored,
                messages: 0,
                millis: br.millis,
            });
        }
    }
    rows
}

/// E2 row: termination protocol overhead and robustness (Fig 2, Thm 3.1).
#[derive(Clone, Debug)]
pub struct E2Row {
    /// Workload name.
    pub workload: String,
    /// Work messages.
    pub work_messages: u64,
    /// Protocol messages.
    pub protocol_messages: u64,
    /// Protocol overhead (protocol per work message).
    pub overhead: f64,
    /// Probe waves until conclusion.
    pub probe_waves: u64,
    /// Random schedules tried.
    pub schedules_tried: u32,
    /// Schedules agreeing with the FIFO answer (must equal tried).
    pub schedules_agreeing: u32,
}

/// E2 — the Fig 2 protocol detects distributed quiescence under
/// arbitrary schedules, with bounded message overhead.
pub fn e2(scale: Scale) -> Vec<E2Row> {
    let sizes = scale.sizes(&[8, 16], &[8, 16, 32, 64, 128]);
    let seeds: u64 = match scale {
        Scale::Quick => 5,
        Scale::Full => 25,
    };
    let mut rows = Vec::new();
    let mut workloads: Vec<_> = sizes.iter().map(|&n| scenarios::tc_cycle(n)).collect();
    workloads.push(scenarios::sg_tree(3, 3, 1));
    workloads.push(scenarios::tc_nonlinear_chain(
        sizes[sizes.len() - 1].min(48),
    ));
    for w in workloads {
        let fifo = run_engine(&w.program, &w.db, SipKind::Greedy);
        let expect = Engine::new(w.program.clone(), w.db.clone())
            .evaluate()
            .unwrap()
            .answers
            .sorted_rows();
        let mut agreeing = 0;
        for seed in 0..seeds {
            let got = Engine::new(w.program.clone(), w.db.clone())
                .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
                .evaluate()
                .unwrap()
                .answers
                .sorted_rows();
            if got == expect {
                agreeing += 1;
            }
        }
        let work = fifo.messages - fifo.protocol_messages;
        rows.push(E2Row {
            workload: w.name,
            work_messages: work,
            protocol_messages: fifo.protocol_messages,
            overhead: fifo.protocol_messages as f64 / work.max(1) as f64,
            probe_waves: fifo.probe_waves,
            schedules_tried: seeds as u32,
            schedules_agreeing: agreeing,
        });
    }
    rows
}

/// E3 row: monotone flow vs the cyclic rule (Figs 3–4, Example 4.1).
#[derive(Clone, Debug)]
pub struct E3Row {
    /// `r2` (monotone) or `r3` (cyclic).
    pub rule: String,
    /// Relation size parameter (× fanout 4 = b/c sizes).
    pub n: usize,
    /// Fraction of R3 triangle joins that actually succeed.
    pub overlap: f64,
    /// SIP strategy.
    pub sip: String,
    /// Answers.
    pub answers: usize,
    /// Largest rule-node stage relation — the intermediate the monotone
    /// flow property bounds.
    pub max_stage: u64,
    /// Intermediate-to-final blowup (max stage / answers).
    pub blowup: f64,
    /// Stored tuples.
    pub stored: u64,
}

/// E3 — the monotone rule R2's intermediates grow monotonically (bounded
/// by the final result size); R3's "inherently cyclic structure … can
/// produce intermediate results that are much larger than the final
/// results, even when the subgoals' relations are pairwise consistent"
/// (§1.2, §4).
pub fn e3(scale: Scale) -> Vec<E3Row> {
    let sizes = scale.sizes(&[32], &[64, 128, 256]);
    let fanout = 4;
    let mut rows = Vec::new();
    for &n in sizes {
        for sip in [SipKind::QualTree, SipKind::Greedy, SipKind::AllFree] {
            let mut run = |rule: &str, overlap: f64, w: &mp_workloads::Workload| {
                let er = run_engine(&w.program, &w.db, sip);
                rows.push(E3Row {
                    rule: rule.to_string(),
                    n,
                    overlap,
                    sip: sip.name().to_string(),
                    answers: er.answers,
                    max_stage: er.max_stage,
                    blowup: er.max_stage as f64 / (er.answers.max(1)) as f64,
                    stored: er.stored,
                });
            };
            run("r2", 1.0, &scenarios::r2(n, fanout, 1));
            for &overlap in &[0.1, 0.5] {
                run("r3", overlap, &scenarios::r3(n, fanout, overlap, 1));
            }
        }
    }
    rows
}

/// E4 row: qual tree composition (Fig 5, Thm 4.2).
#[derive(Clone, Debug)]
pub struct E4Row {
    /// Composition depth (number of resolutions applied).
    pub depth: usize,
    /// Body length of the extended rule.
    pub body_len: usize,
    /// The composed tree satisfies the qual tree property.
    pub composed_valid: bool,
    /// Re-testing the extended rule from scratch is still monotone.
    pub monotone_preserved: bool,
    /// Microseconds per composition.
    pub micros_per_compose: f64,
}

/// E4 — composing qual trees under resolution preserves the qual tree
/// property at every recursive extension depth.
pub fn e4(scale: Scale) -> Vec<E4Row> {
    let depths = scale.sizes(&[4, 8], &[4, 8, 16, 32, 64]);
    let bound: BTreeSet<Var> = BTreeSet::from([Var::new("X")]);
    let inner = mp_datalog::parser::parse_rule("c(X, Z) :- a(X, Y), b(Y, U), c(U, Z).").unwrap();
    let mut rows = Vec::new();
    for &depth in depths {
        let mut rule = mp_hypergraph::examples::r1();
        let mut qt = match monotone_flow(&rule, &bound) {
            MonotoneFlow::Monotone(qt) => qt,
            MonotoneFlow::Cyclic(_) => unreachable!("R1 is monotone"),
        };
        let t0 = Instant::now();
        let mut all_valid = true;
        for _ in 0..depth {
            let qi = match monotone_flow(&inner, &bound) {
                MonotoneFlow::Monotone(qt) => qt,
                MonotoneFlow::Cyclic(_) => unreachable!("chain rule is monotone"),
            };
            let last = rule.body.len() - 1;
            let comp = compose(&rule, &qt, last, &inner, &qi).expect("leaf resolution");
            all_valid &= comp.qual_tree.verify().is_ok();
            rule = comp.rule;
            qt = comp.qual_tree;
        }
        let micros = t0.elapsed().as_secs_f64() * 1e6 / depth as f64;
        rows.push(E4Row {
            depth,
            body_len: rule.body.len(),
            composed_valid: all_valid,
            monotone_preserved: monotone_flow(&rule, &bound).is_monotone(),
            micros_per_compose: micros,
        });
    }
    rows
}

/// E5 row: nonlinear recursion (§1.2 vs Henschen–Naqvi's restriction).
#[derive(Clone, Debug)]
pub struct E5Row {
    /// Workload.
    pub workload: String,
    /// Whether a linear-recursion-only compiler applies (§1.1).
    pub linear_method_applicable: bool,
    /// Method.
    pub method: String,
    /// Answers.
    pub answers: usize,
    /// Stored tuples.
    pub stored: u64,
    /// Milliseconds.
    pub millis: f64,
}

/// E5 — nonlinear recursion evaluates correctly where linear-only
/// compilation does not apply at all.
pub fn e5(scale: Scale) -> Vec<E5Row> {
    let n = match scale {
        Scale::Quick => 16,
        Scale::Full => 64,
    };
    let mut rows = Vec::new();
    for w in [
        scenarios::tc_nonlinear_chain(n),
        scenarios::sg_tree(4, 2, 3),
        scenarios::p1_chain(n),
    ] {
        let analysis = DependencyAnalysis::of(&w.program);
        let linear = analysis.program_is_linear(&w.program);
        let er = run_engine(&w.program, &w.db, SipKind::Greedy);
        rows.push(E5Row {
            workload: w.name.clone(),
            linear_method_applicable: linear,
            method: er.method,
            answers: er.answers,
            stored: er.stored,
            millis: er.millis,
        });
        for ev in [
            &SemiNaive as &dyn mp_baselines::Evaluator,
            &MagicSets::default(),
        ] {
            let br = run_baseline(ev, &w.program, &w.db);
            rows.push(E5Row {
                workload: w.name.clone(),
                linear_method_applicable: linear,
                method: br.method,
                answers: br.answers,
                stored: br.stored,
                millis: br.millis,
            });
        }
    }
    rows
}

/// E6 row: SIP strategy comparison (Def 2.4).
#[derive(Clone, Debug)]
pub struct E6Row {
    /// Relation size.
    pub n: usize,
    /// SIP strategy.
    pub sip: String,
    /// Answers.
    pub answers: usize,
    /// Stored tuples.
    pub stored: u64,
    /// Messages.
    pub messages: u64,
    /// Join probes.
    pub join_probes: u64,
}

/// The E6 program: a three-way join written *backwards* (the bound
/// variable reaches the textually last subgoal), so left-to-right
/// evaluation starts with an unbound scan while greedy reorders.
fn e6_workload(n: usize) -> (mp_datalog::Program, Database) {
    let program = mp_datalog::parser::parse_program(
        "p(X, Z) :- c(U, Z), b(Y, U), a(X, Y).
         ?- p(0, Z).",
    )
    .unwrap();
    let mut db = Database::new();
    // a: 0 → {0..k}; b: shift by 1; c: shift by 1. Point query touches a
    // k-sized slice; full relations are n-sized.
    for i in 0..n as i64 {
        db.insert("a", mp_storage::tuple![i, i + 1]).unwrap();
        db.insert("b", mp_storage::tuple![i + 1, i + 2]).unwrap();
        db.insert("c", mp_storage::tuple![i + 2, i + 3]).unwrap();
    }
    (program, db)
}

/// E6 — greedy SIP ("maximally pushed forward" `d` arguments) beats
/// Prolog order and no-sideways on intermediate sizes.
pub fn e6(scale: Scale) -> Vec<E6Row> {
    let sizes = scale.sizes(&[64], &[128, 512, 2048]);
    let mut rows = Vec::new();
    for &n in sizes {
        let (program, db) = e6_workload(n);
        for sip in SipKind::ALL {
            let er = run_engine(&program, &db, sip);
            rows.push(E6Row {
                n,
                sip: sip.name().to_string(),
                answers: er.answers,
                stored: er.stored,
                messages: er.messages,
                join_probes: er.join_probes,
            });
        }
    }
    rows
}

/// E7 row: parallel execution (§1.2's parallelism claim).
#[derive(Clone, Debug)]
pub struct E7Row {
    /// Independent branches in the query.
    pub branches: usize,
    /// Runtime.
    pub runtime: String,
    /// Answers.
    pub answers: usize,
    /// Milliseconds (median of 3).
    pub millis: f64,
}

/// A program with `k` independent *nonlinear* recursive branches, each
/// over its own edge relation — substantial per-branch work (quadratic
/// derivations) with no cross-branch dependencies, the shape where
/// one-process-per-node parallelism can pay.
fn e7_workload(k: usize, n: usize) -> (mp_datalog::Program, Database) {
    let mut src = String::new();
    let mut db = Database::new();
    for b in 0..k {
        src.push_str(&format!(
            "p{b}(X, Y) :- e{b}(X, Y).
             p{b}(X, Z) :- p{b}(X, Y), p{b}(Y, Z).
             goal(X) :- p{b}(0, X).\n"
        ));
        graphs::chain(&mut db, &format!("e{b}"), n);
    }
    (mp_datalog::parser::parse_program(&src).unwrap(), db)
}

/// E7 — the threaded runtime exploits independent branches without any
/// shared memory.
pub fn e7(scale: Scale) -> Vec<E7Row> {
    let (branches, n) = match scale {
        Scale::Quick => (vec![1, 4], 32),
        Scale::Full => (vec![1, 2, 4, 8], 96),
    };
    let mut rows = Vec::new();
    for &k in &branches {
        let (program, db) = e7_workload(k, n);
        for (runtime, label) in [
            (RuntimeKind::Sim(Schedule::Fifo), "sim"),
            (RuntimeKind::Threads, "threads"),
        ] {
            let mut times: Vec<f64> = (0..3)
                .map(|_| run_engine_with(&program, &db, SipKind::Greedy, runtime).millis)
                .collect();
            times.sort_by(f64::total_cmp);
            let er = run_engine_with(&program, &db, SipKind::Greedy, runtime);
            rows.push(E7Row {
                branches: k,
                runtime: label.to_string(),
                answers: er.answers,
                millis: times[1],
            });
        }
    }
    rows
}

/// E8 row: graph size independence (Thm 2.1).
#[derive(Clone, Debug)]
pub struct E8Row {
    /// Program.
    pub program: String,
    /// EDB fact count.
    pub edb_facts: usize,
    /// Rule/goal graph nodes.
    pub graph_nodes: usize,
    /// Goal nodes a single-processor implementation could coalesce
    /// (§2.2's remark; we follow the paper and keep them separate).
    pub coalescible: usize,
}

/// E8 — the rule/goal graph's size depends only on the IDB, never on the
/// EDB.
pub fn e8(scale: Scale) -> Vec<E8Row> {
    let sizes = scale.sizes(&[4, 64], &[4, 64, 1024, 16384]);
    let mut rows = Vec::new();
    for &n in sizes {
        for (name, w) in [
            ("p1", scenarios::p1_chain(n)),
            ("tc-linear", scenarios::tc_chain(n)),
            ("same-generation", {
                let mut db = Database::new();
                graphs::chain(&mut db, "up", n);
                graphs::chain(&mut db, "down", n);
                graphs::chain(&mut db, "flat", n);
                mp_workloads::Workload {
                    name: String::from("sg"),
                    program: programs::same_generation(0),
                    db,
                }
            }),
        ] {
            let g = RuleGoalGraph::build(&w.program, &w.db, SipKind::Greedy).unwrap();
            rows.push(E8Row {
                program: name.to_string(),
                edb_facts: w.db.fact_count(),
                graph_nodes: g.len(),
                coalescible: g.coalescible_nodes(),
            });
        }
    }
    rows
}

/// E9 row: the §4.3 cost model against measurement.
#[derive(Clone, Debug)]
pub struct E9Row {
    /// Rule under test.
    pub rule: String,
    /// Subgoal order (original indices).
    pub order: String,
    /// Model-predicted total cost (log10).
    pub predicted_cost_log10: f64,
    /// Model-predicted max intermediate (log10).
    pub predicted_max_log10: f64,
    /// Measured stored tuples for the engine under the SIP realizing
    /// this order.
    pub measured_stored: u64,
    /// Whether the model ranks this order optimal.
    pub model_optimal: bool,
}

/// E9 — the greedy/qual-tree order is the model-optimal one for monotone
/// rules, and the model's ranking matches the measured ranking of
/// realizable orders.
pub fn e9(scale: Scale) -> Vec<E9Row> {
    let n = match scale {
        Scale::Quick => 64,
        Scale::Full => 512,
    };
    let model = CostModel::new(0.3, n as f64);
    let bound: BTreeSet<Var> = BTreeSet::from([Var::new("X")]);
    let mut rows = Vec::new();

    // The backwards chain rule of E6: three orders of interest.
    let (program, db) = e6_workload(n);
    let rule = program.pidb_rules().next().unwrap().clone();
    let (best_order, best) = optimal_order(&model, &rule, &bound);
    for (sip, order) in [
        (SipKind::Greedy, vec![2usize, 1, 0]),
        (SipKind::LeftToRight, vec![0usize, 1, 2]),
    ] {
        let pred = predict(&model, &rule, &order, &bound);
        let er = run_engine(&program, &db, sip);
        rows.push(E9Row {
            rule: "backwards-chain".into(),
            order: format!("{order:?} ({})", sip.name()),
            predicted_cost_log10: pred.total_cost.log10(),
            predicted_max_log10: pred.max_intermediate.log10(),
            measured_stored: er.stored,
            model_optimal: pred.total_cost <= best.total_cost * (1.0 + 1e-9),
        });
    }
    rows.push(E9Row {
        rule: "backwards-chain".into(),
        order: format!("{best_order:?} (model optimum)"),
        predicted_cost_log10: best.total_cost.log10(),
        predicted_max_log10: best.max_intermediate.log10(),
        measured_stored: 0,
        model_optimal: true,
    });

    // R2: qual-tree BFS order vs the enumerated optimum.
    let r2 = mp_hypergraph::examples::r2();
    let (r2_best_order, r2_best) = optimal_order(&model, &r2, &bound);
    let qt_order = match monotone_flow(&r2, &bound) {
        MonotoneFlow::Monotone(qt) => qt.bfs_subgoal_order(),
        MonotoneFlow::Cyclic(_) => unreachable!("R2 is monotone"),
    };
    let qt_pred = predict(&model, &r2, &qt_order, &bound);
    rows.push(E9Row {
        rule: "R2".into(),
        order: format!("{qt_order:?} (qual-tree)"),
        predicted_cost_log10: qt_pred.total_cost.log10(),
        predicted_max_log10: qt_pred.max_intermediate.log10(),
        measured_stored: 0,
        model_optimal: qt_pred.total_cost <= r2_best.total_cost * (1.0 + 1e-9),
    });
    rows.push(E9Row {
        rule: "R2".into(),
        order: format!("{r2_best_order:?} (model optimum)"),
        predicted_cost_log10: r2_best.total_cost.log10(),
        predicted_max_log10: r2_best.max_intermediate.log10(),
        measured_stored: 0,
        model_optimal: true,
    });
    rows
}

/// A1 row: packaged tuple requests (§3.1 footnote 2).
#[derive(Clone, Debug)]
pub struct A1Row {
    /// Workload.
    pub workload: String,
    /// Request messages without batching.
    pub plain_requests: u64,
    /// Request messages (singles + packages) with batching.
    pub batched_requests: u64,
    /// Packages actually formed.
    pub packages: u64,
    /// Total messages without batching.
    pub plain_total: u64,
    /// Total messages with batching.
    pub batched_total: u64,
}

/// A1 — ablation of the packaged-tuple-request extension: strong
/// reductions on fan-out workloads, neutral on sequential chains.
pub fn a1(scale: Scale) -> Vec<A1Row> {
    let (n, m) = match scale {
        Scale::Quick => (40, 160),
        Scale::Full => (120, 600),
    };
    let mut rows = Vec::new();
    for w in [
        scenarios::tc_random(n, m, 3),
        scenarios::sg_tree(4, 3, 1),
        scenarios::tc_chain(n),
    ] {
        let plain = Engine::new(w.program.clone(), w.db.clone())
            .evaluate()
            .expect("plain");
        let batched = Engine::new(w.program.clone(), w.db.clone())
            .with_batching(true)
            .evaluate()
            .expect("batched");
        assert_eq!(plain.answers, batched.answers, "{}", w.name);
        rows.push(A1Row {
            workload: w.name,
            plain_requests: plain.stats.tuple_requests,
            batched_requests: batched.stats.tuple_requests + batched.stats.tuple_request_batches,
            packages: batched.stats.tuple_request_batches,
            plain_total: plain.stats.total_messages(),
            batched_total: batched.stats.total_messages(),
        });
    }
    rows
}

/// A2 row: cost-based SIP from EDB statistics (§1.2 extension).
#[derive(Clone, Debug)]
pub struct A2Row {
    /// Relation size parameter.
    pub n: usize,
    /// Strategy.
    pub sip: String,
    /// Answers.
    pub answers: usize,
    /// Messages.
    pub messages: u64,
    /// Stored tuples.
    pub stored: u64,
}

/// A2 — ablation of the statistics-driven strategy on skewed
/// cardinalities where bound-argument counting ties.
pub fn a2(scale: Scale) -> Vec<A2Row> {
    let sizes = scale.sizes(&[64], &[64, 256, 1024]);
    let mut rows = Vec::new();
    for &n in sizes {
        let program = mp_datalog::parser::parse_program(
            "p(X, Z) :- big(X, Y), tiny(X, W), link(Y, W, Z).
             ?- p(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for x in 0..4i64 {
            db.insert("tiny", mp_storage::tuple![x, x + 5000]).unwrap();
            for y in 0..n as i64 {
                db.insert("big", mp_storage::tuple![x, y + 1000]).unwrap();
            }
        }
        for y in 0..n as i64 {
            for x in 0..4i64 {
                db.insert("link", mp_storage::tuple![y + 1000, x + 5000, y])
                    .unwrap();
            }
        }
        for sip in [SipKind::Greedy, SipKind::CostBased, SipKind::LeftToRight] {
            let er = run_engine(&program, &db, sip);
            rows.push(A2Row {
                n,
                sip: sip.name().to_string(),
                answers: er.answers,
                messages: er.messages,
                stored: er.stored,
            });
        }
    }
    rows
}

/// E10 row: evaluation under injected faults (chaos sweep).
#[derive(Clone, Debug)]
pub struct E10Row {
    /// Workload.
    pub workload: String,
    /// Fault plan family (`none`, `seeded`, `seeded+crash`).
    pub plan: String,
    /// Seeded runs aggregated into this row.
    pub runs: u64,
    /// Logical messages per run (mean over seeds).
    pub messages: u64,
    /// Faults injected, summed over seeds.
    pub faults_injected: u64,
    /// Retransmissions, summed over seeds.
    pub retransmits: u64,
    /// Duplicate deliveries discarded, summed over seeds.
    pub dups_discarded: u64,
    /// Node crashes fired, summed over seeds.
    pub crashes: u64,
    /// Crashes recovered by log replay (epoch bumps), summed over seeds.
    pub recovered: u64,
    /// Every seeded run terminated with exactly one `End` and the
    /// fault-free answer set (Thm 3.1 observables).
    pub answers_ok: bool,
}

/// E10 — evaluation under faults: for each canonical recursive workload,
/// sweep seeded fault plans (drop/duplicate/delay/corrupt, then the same
/// with two scheduled node crashes) and check the Thm 3.1 observables
/// against the fault-free run. The `none` row doubles as the clean-path
/// overhead check: zero faults, zero retransmissions.
pub fn e10(scale: Scale) -> Vec<E10Row> {
    let seeds: u64 = match scale {
        Scale::Quick => 4,
        Scale::Full => 32,
    };
    let workloads = [
        scenarios::tc_chain(6),
        scenarios::tc_cycle(5),
        scenarios::tc_nonlinear_chain(4),
        scenarios::odd_even_chain(6),
    ];
    let mut rows = Vec::new();
    for w in workloads {
        let clean = Engine::new(w.program.clone(), w.db.clone())
            .with_fault_plan(FaultPlan::default())
            .evaluate()
            .expect("clean run");
        let expected = clean.answers.sorted_rows();
        let nodes = clean.graph_nodes;
        rows.push(E10Row {
            workload: w.name.clone(),
            plan: "none".into(),
            runs: 1,
            messages: clean.stats.total_messages(),
            faults_injected: clean.stats.faults_injected(),
            retransmits: clean.stats.retransmits,
            dups_discarded: clean.stats.dups_discarded,
            crashes: clean.stats.crashes,
            recovered: clean.stats.epoch_bumps,
            answers_ok: true,
        });
        for with_crashes in [false, true] {
            let mut agg = E10Row {
                workload: w.name.clone(),
                plan: if with_crashes {
                    "seeded+crash".into()
                } else {
                    "seeded".into()
                },
                runs: seeds,
                messages: 0,
                faults_injected: 0,
                retransmits: 0,
                dups_discarded: 0,
                crashes: 0,
                recovered: 0,
                answers_ok: true,
            };
            for seed in 0..seeds {
                let mut plan = FaultPlan::seeded(seed);
                if with_crashes {
                    plan = plan
                        .with_crash((seed as usize * 7 + 1) % nodes, 1 + seed % 3)
                        .with_crash((seed as usize * 13 + 3) % nodes, 4 + seed % 5);
                }
                let r = Engine::new(w.program.clone(), w.db.clone())
                    .with_fault_plan(plan)
                    .evaluate()
                    .expect("faulty run");
                agg.messages += r.stats.total_messages() / seeds;
                agg.faults_injected += r.stats.faults_injected();
                agg.retransmits += r.stats.retransmits;
                agg.dups_discarded += r.stats.dups_discarded;
                agg.crashes += r.stats.crashes;
                agg.recovered += r.stats.epoch_bumps;
                agg.answers_ok &= r.engine_ends == 1
                    && r.post_end_answers == 0
                    && r.answers.sorted_rows() == expected;
            }
            rows.push(agg);
        }
    }
    rows
}

/// E11 row: scalar vs vectorized data plane.
#[derive(Clone, Debug)]
pub struct E11Row {
    /// Workload.
    pub workload: String,
    /// Flush bound (`scalar` = batching off).
    pub batch: String,
    /// Answers.
    pub answers: usize,
    /// Logical answer tuples moved (batch-invariant).
    pub logical_answers: u64,
    /// Physical frames delivered (`Stats::total_messages`).
    pub physical_frames: u64,
    /// Wall time in milliseconds (best of the measured repetitions).
    pub millis: f64,
    /// Logical answer tuples per second of wall time.
    pub tuples_per_sec: f64,
    /// Throughput relative to the batch-1 row of the same workload
    /// (batching machinery on, flush bound 1 — i.e. scalar framing).
    pub speedup: f64,
}

/// E11 — data-plane vectorization: logical answer throughput of the
/// scalar path vs batched frames at flush bounds 4 and 64, on a fan-out
/// transitive closure and a nonlinear recursion. Answer sets and logical
/// counts are asserted identical across rows — batching only changes
/// physical framing (§3.1 footnote 2, extended upward).
///
/// Runs go over the self-healing transport with a zero-fault plan: in
/// the bare simulator a frame costs one queue push, so framing is free
/// and vectorization cannot show; on the wire each frame carries a
/// sequence number, a checksum, an ack, and a retransmission-log entry,
/// which is the per-frame cost batching amortizes.
pub fn e11(scale: Scale) -> Vec<E11Row> {
    let ((n, m), depth, reps) = match scale {
        Scale::Quick => ((60, 240), 8, 1),
        Scale::Full => ((800, 12_000), 12, 5),
    };
    let mut rows = Vec::new();
    for w in [
        scenarios::tc_random(n, m, 7),
        scenarios::tc_nonlinear_chain(depth),
    ] {
        let mut wrows = Vec::new();
        let mut scalar_answers = Vec::new();
        let mut scalar_logical = 0u64;
        // batch 0 = batching off; batch 1 = batching on, flush bound 1
        // (identical framing to scalar — it is the speedup baseline).
        for batch in [0usize, 1, 4, 64] {
            let mut millis = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let mut eng = Engine::new(w.program.clone(), w.db.clone())
                    .with_fault_plan(FaultPlan::default());
                if batch > 0 {
                    eng = eng.with_batching(true).with_batch_size(batch);
                }
                let t0 = Instant::now();
                let r = eng.evaluate().expect("e11 run");
                millis = millis.min(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(r);
            }
            let r = last.expect("at least one rep");
            if batch == 0 {
                scalar_answers = r.answers.sorted_rows();
                scalar_logical = r.stats.logical_answers;
            } else {
                // The vectorized plane must be semantically invisible.
                assert_eq!(r.answers.sorted_rows(), scalar_answers, "{}", w.name);
                assert_eq!(r.stats.logical_answers, scalar_logical, "{}", w.name);
            }
            let rate = r.stats.logical_answers as f64 / (millis / 1e3).max(1e-9);
            wrows.push(E11Row {
                workload: w.name.clone(),
                batch: if batch == 0 {
                    "scalar".into()
                } else {
                    batch.to_string()
                },
                answers: r.answers.len(),
                logical_answers: r.stats.logical_answers,
                physical_frames: r.stats.total_messages(),
                millis,
                tuples_per_sec: rate,
                speedup: 1.0,
            });
        }
        let base_rate = wrows
            .iter()
            .find(|r| r.batch == "1")
            .map(|r| r.tuples_per_sec)
            .unwrap_or(1.0);
        for r in &mut wrows {
            r.speedup = r.tuples_per_sec / base_rate.max(1e-9);
        }
        rows.extend(wrows);
    }
    rows
}

/// E14 row: resource-governance overhead.
#[derive(Clone, Debug)]
pub struct E14Row {
    /// Workload.
    pub workload: String,
    /// Governance configuration (see [`e14`]).
    pub governance: String,
    /// Answers.
    pub answers: usize,
    /// Logical messages moved (governance-invariant).
    pub logical_messages: u64,
    /// Frames held back by the credit window (`Stats::credits_stalled`).
    pub stalls: u64,
    /// Wall time in milliseconds (best of the measured repetitions).
    pub millis: f64,
    /// Logical messages per second of wall time.
    pub msgs_per_sec: f64,
    /// Wall-time ratio vs this workload's baseline row: `off` for the
    /// bare-simulator rows, `wired` for the transport rows.
    pub overhead: f64,
}

/// E14 — resource governance on the clean path: the governor meters
/// every run (steps, wall clock, arena + mailbox bytes, logical
/// messages), so its cost must vanish when no limit trips. Five
/// configurations per workload:
///
/// * `off` — the engine exactly as a pre-governance caller sees it;
/// * `unlimited` — an explicit `QueryBudget::default()` (no resource
///   limits, metering only);
/// * `headroom` — message *and* byte limits set far above what the run
///   uses, so every limit comparison executes and none trips;
/// * `wired` — the self-healing transport with a zero-fault plan and no
///   window (the E11 baseline);
/// * `wired+window` — the same transport under a mailbox bound, so
///   credit admission runs on every frame and some frames stall.
///
/// Answers are asserted identical across all five rows, logical
/// traffic identical across every un-windowed row, and no cancel wave
/// may fire: governance is observable only in the error path and the
/// stats. (The windowed row may spend a few extra *protocol* messages
/// — stalled frames shift quiescence timing, so the leader can need an
/// extra probe round; its answers and data traffic still match.)
pub fn e14(scale: Scale) -> Vec<E14Row> {
    let ((n, m), depth, reps) = match scale {
        Scale::Quick => ((60, 240), 8, 1),
        Scale::Full => ((800, 12_000), 12, 5),
    };
    let headroom = QueryBudget::new()
        .with_max_messages(u64::MAX >> 1)
        .with_max_bytes(u64::MAX >> 1);
    let configs: [(&str, Option<QueryBudget>, bool); 5] = [
        ("off", None, false),
        ("unlimited", Some(QueryBudget::default()), false),
        ("headroom", Some(headroom), false),
        ("wired", None, true),
        (
            "wired+window",
            Some(QueryBudget::new().with_mailbox_bound(4)),
            true,
        ),
    ];
    let mut rows = Vec::new();
    for w in [
        scenarios::tc_random(n, m, 7),
        scenarios::tc_nonlinear_chain(depth),
    ] {
        let mut wrows = Vec::new();
        let mut base_answers = Vec::new();
        let mut group_logical: Option<u64> = None;
        for (name, budget, wired) in &configs {
            if *name == "wired" {
                // The windowed row is exempt from the logical-invariance
                // check: stalling frames shifts quiescence timing, and
                // the leader may spend an extra probe round (a handful
                // of protocol messages) discovering the fixpoint. Data
                // traffic and answers are still asserted identical.
                group_logical = None;
            }
            let mut millis = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let mut eng = Engine::new(w.program.clone(), w.db.clone());
                if *wired {
                    eng = eng.with_fault_plan(FaultPlan::default());
                }
                if let Some(b) = budget {
                    eng = eng.with_budget(b.clone());
                }
                let t0 = Instant::now();
                let r = eng.evaluate().expect("e14 run");
                millis = millis.min(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(r);
            }
            let r = last.expect("at least one rep");
            if *name == "off" {
                base_answers = r.answers.sorted_rows();
            } else {
                assert_eq!(
                    r.answers.sorted_rows(),
                    base_answers,
                    "{}: governance changed the fixpoint",
                    w.name
                );
            }
            let logical = r.stats.logical_messages();
            if *name != "wired+window" {
                match group_logical {
                    None => group_logical = Some(logical),
                    Some(g) => {
                        assert_eq!(logical, g, "{}: governance changed logical traffic", w.name)
                    }
                }
            }
            assert_eq!(r.stats.cancel_waves, 0, "{}: a clean run tripped", w.name);
            let rate = logical as f64 / (millis / 1e3).max(1e-9);
            wrows.push(E14Row {
                workload: w.name.clone(),
                governance: (*name).into(),
                answers: r.answers.len(),
                logical_messages: logical,
                stalls: r.stats.credits_stalled,
                millis,
                msgs_per_sec: rate,
                overhead: 1.0,
            });
        }
        let base = |g: &str| {
            wrows
                .iter()
                .find(|r: &&E14Row| r.governance == g)
                .map(|r| r.millis)
                .unwrap_or(1.0)
        };
        let (clean_ms, wired_ms) = (base("off"), base("wired"));
        for r in &mut wrows {
            let b = if r.governance.starts_with("wired") {
                wired_ms
            } else {
                clean_ms
            };
            r.overhead = r.millis / b.max(1e-9);
        }
        rows.extend(wrows);
    }
    rows
}

/// E12 row: tracing overhead.
#[derive(Clone, Debug)]
pub struct E12Row {
    /// Workload.
    pub workload: String,
    /// Runtime (`sim` or `threads`).
    pub runtime: String,
    /// `off` or `on`.
    pub tracing: String,
    /// Answers.
    pub answers: usize,
    /// Events recorded (0 when tracing is off).
    pub events: usize,
    /// Wall time in milliseconds (best of the measured repetitions).
    pub millis: f64,
    /// Logical answer tuples per second of wall time.
    pub tuples_per_sec: f64,
    /// Wall time relative to the tracing-off row of the same
    /// workload × runtime pair (1.0 = no measurable overhead).
    pub slowdown: f64,
}

/// E12 — cost of observation: the same workloads with mp-trace
/// recording off vs on, on both runtimes. Tracing off must be free
/// (the tracer is an `Option` checked once per call site); tracing on
/// pays one lock-free ring push plus a vector-clock merge per logical
/// event. Answer sets are asserted identical — the tracer is an
/// observer, never a participant.
///
/// At `Scale::Quick` the tracing-on slowdown is dominated by the fixed
/// cost of allocating the 2^18-slot event ring, not by per-event work;
/// the full scale amortizes it.
pub fn e12(scale: Scale) -> Vec<E12Row> {
    let ((n, m), depth, reps) = match scale {
        Scale::Quick => ((60, 240), 8, 1),
        Scale::Full => ((400, 6_000), 12, 5),
    };
    let mut rows = Vec::new();
    for w in [
        scenarios::tc_random(n, m, 7),
        scenarios::tc_nonlinear_chain(depth),
    ] {
        for (runtime, kind) in [
            ("sim", RuntimeKind::Sim(Schedule::Fifo)),
            ("threads", RuntimeKind::Threads),
        ] {
            let mut base_millis = f64::INFINITY;
            let mut base_answers = Vec::new();
            for traced in [false, true] {
                let mut millis = f64::INFINITY;
                let mut last = None;
                for _ in 0..reps {
                    let eng = Engine::new(w.program.clone(), w.db.clone())
                        .with_runtime(kind)
                        .with_timeout(std::time::Duration::from_secs(60))
                        .with_trace(traced);
                    let t0 = Instant::now();
                    let r = eng.evaluate().expect("e12 run");
                    millis = millis.min(t0.elapsed().as_secs_f64() * 1e3);
                    last = Some(r);
                }
                let r = last.expect("at least one rep");
                if !traced {
                    base_millis = millis;
                    base_answers = r.answers.sorted_rows();
                    assert!(r.events.is_none(), "{}: untraced run recorded", w.name);
                } else {
                    // Observation must not perturb the result.
                    assert_eq!(r.answers.sorted_rows(), base_answers, "{}", w.name);
                }
                let rate = r.stats.logical_answers as f64 / (millis / 1e3).max(1e-9);
                rows.push(E12Row {
                    workload: w.name.clone(),
                    runtime: runtime.to_string(),
                    tracing: if traced { "on" } else { "off" }.to_string(),
                    answers: r.answers.len(),
                    events: r.events.as_ref().map_or(0, |t| t.events.len()),
                    millis,
                    tuples_per_sec: rate,
                    slowdown: millis / base_millis.max(1e-9),
                });
            }
        }
    }
    rows
}

/// E13 row: worker-pool scaling.
#[derive(Clone, Debug)]
pub struct E13Row {
    /// Workload.
    pub workload: String,
    /// Pool size (`sim` = the deterministic simulator baseline).
    pub workers: String,
    /// Answers.
    pub answers: usize,
    /// Logical answer tuples moved (schedule-invariant).
    pub logical_answers: u64,
    /// Scheduler activations (mailbox drains; 0 on the simulator).
    pub activations: u64,
    /// Activations stolen across worker deques.
    pub steals: u64,
    /// Wall time in milliseconds (best of the measured repetitions).
    pub millis: f64,
    /// Logical answer tuples per second of wall time.
    pub tuples_per_sec: f64,
    /// Throughput relative to the workers-1 row of the same workload.
    pub speedup: f64,
}

/// E13 — worker-pool scaling: the work-stealing node scheduler at pool
/// sizes 1/2/4/8 against the deterministic simulator, on a fan-out
/// transitive closure and a same-generation tree. Answer sets and the
/// schedule-invariant logical counters are asserted identical on every
/// row (Thm 3.1/4.1: the physical schedule — including who steals what
/// — is unobservable); what the pool buys is wall-clock, reported as
/// tuples/sec and speedup over the single-worker pool.
pub fn e13(scale: Scale) -> Vec<E13Row> {
    let ((n, m), (depth, fanout), reps) = match scale {
        Scale::Quick => ((60, 240), (6, 2), 1),
        Scale::Full => ((400, 6_000), (9, 3), 5),
    };
    let mut rows = Vec::new();
    for w in [
        scenarios::tc_random(n, m, 7),
        scenarios::sg_tree(depth, fanout, 11),
    ] {
        // Schedule-invariant ground truth: the deterministic simulator.
        let sim = Engine::new(w.program.clone(), w.db.clone())
            .evaluate()
            .expect("e13 sim baseline");
        let sim_answers = sim.answers.sorted_rows();
        let sim_logical = (
            sim.stats.relation_requests,
            sim.stats.logical_tuple_requests,
            sim.stats.logical_answers,
            sim.stats.logical_end_tuple_requests,
        );
        rows.push(E13Row {
            workload: w.name.clone(),
            workers: "sim".into(),
            answers: sim.answers.len(),
            logical_answers: sim.stats.logical_answers,
            activations: sim.stats.sched_activations,
            steals: sim.stats.sched_steals,
            millis: 0.0,
            tuples_per_sec: 0.0,
            speedup: 0.0,
        });
        let mut wrows = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let mut millis = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let eng = Engine::new(w.program.clone(), w.db.clone())
                    .with_runtime(RuntimeKind::Threads)
                    .with_timeout(std::time::Duration::from_secs(120))
                    .with_workers(workers);
                let t0 = Instant::now();
                let r = eng.evaluate().expect("e13 pooled run");
                millis = millis.min(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(r);
            }
            let r = last.expect("at least one rep");
            // The pool must be observably the simulator (Thm 3.1/4.1).
            assert_eq!(r.answers.sorted_rows(), sim_answers, "{}", w.name);
            assert_eq!(
                (
                    r.stats.relation_requests,
                    r.stats.logical_tuple_requests,
                    r.stats.logical_answers,
                    r.stats.logical_end_tuple_requests,
                ),
                sim_logical,
                "{}: logical counters diverged at {workers} workers",
                w.name
            );
            let rate = r.stats.logical_answers as f64 / (millis / 1e3).max(1e-9);
            wrows.push(E13Row {
                workload: w.name.clone(),
                workers: workers.to_string(),
                answers: r.answers.len(),
                logical_answers: r.stats.logical_answers,
                activations: r.stats.sched_activations,
                steals: r.stats.sched_steals,
                millis,
                tuples_per_sec: rate,
                speedup: 1.0,
            });
        }
        let base_rate = wrows
            .iter()
            .find(|r| r.workers == "1")
            .map(|r| r.tuples_per_sec)
            .unwrap_or(1.0);
        for r in &mut wrows {
            r.speedup = r.tuples_per_sec / base_rate.max(1e-9);
        }
        rows.extend(wrows);
    }
    rows
}

/// E15 row: sharded evaluation.
#[derive(Clone, Debug)]
pub struct E15Row {
    /// Workload.
    pub workload: String,
    /// Runtime (`sim` or `threads`).
    pub runtime: String,
    /// Shard count K.
    pub shards: usize,
    /// Answers.
    pub answers: usize,
    /// Logical answer tuples moved (shard-invariant).
    pub logical_answers: u64,
    /// Logical items hash-routed across shard links (0 at K=1).
    pub routed_frames: u64,
    /// Worst per-arc routed-item count (hash skew high-water).
    pub max_skew: u64,
    /// Wall time in milliseconds.
    pub millis: f64,
}

/// E15 — sharded evaluation: K-way replication of request-keyed nodes
/// with deterministic hash routing, on a random transitive closure and
/// a same-generation tree. Every row asserts the sharding contract
/// in-experiment: answers and the shard-invariant counters (logical
/// traffic, derived/stored tuples, join probes, EDB lookups) are
/// bit-identical to the unsharded simulator run, on both runtimes, at
/// every K — what varies is only where the work lives, reported as
/// frames routed across shard links and the observed hash skew.
pub fn e15(scale: Scale) -> Vec<E15Row> {
    let ((n, m), (depth, fanout)) = match scale {
        Scale::Quick => ((60, 240), (6, 2)),
        Scale::Full => ((400, 6_000), (9, 3)),
    };
    let mut rows = Vec::new();
    for w in [
        scenarios::tc_random(n, m, 7),
        scenarios::sg_tree(depth, fanout, 11),
    ] {
        // Shard-invariant ground truth: the K=1 deterministic simulator.
        let base = Engine::new(w.program.clone(), w.db.clone())
            .evaluate()
            .expect("e15 unsharded baseline");
        let base_answers = base.answers.sorted_rows();
        let invariant = |s: &mp_engine::Stats| {
            (
                s.logical_tuple_requests,
                s.logical_answers,
                s.logical_end_tuple_requests,
                s.derived_tuples,
                s.stored_tuples,
                s.join_probes,
                s.edb_lookups,
            )
        };
        let mut routed_somewhere = false;
        for (runtime, ks) in [("sim", &[1usize, 2, 4, 8][..]), ("threads", &[1, 4][..])] {
            for &k in ks {
                let mut eng = Engine::new(w.program.clone(), w.db.clone()).with_shards(k);
                if runtime == "threads" {
                    eng = eng
                        .with_runtime(RuntimeKind::Threads)
                        .with_timeout(std::time::Duration::from_secs(120));
                }
                let t0 = Instant::now();
                let r = eng.evaluate().expect("e15 sharded run");
                let millis = t0.elapsed().as_secs_f64() * 1e3;
                // The sharding contract, asserted on every row.
                assert_eq!(
                    r.answers.sorted_rows(),
                    base_answers,
                    "{} {runtime} K={k}: answers diverged from K=1",
                    w.name
                );
                assert_eq!(
                    invariant(&r.stats),
                    invariant(&base.stats),
                    "{} {runtime} K={k}: a shard-invariant counter diverged",
                    w.name
                );
                if k == 1 {
                    assert_eq!(
                        r.stats.shard_routed_frames, 0,
                        "{} {runtime}: router engaged at K=1",
                        w.name
                    );
                }
                routed_somewhere |= r.stats.shard_routed_frames > 0;
                rows.push(E15Row {
                    workload: w.name.clone(),
                    runtime: runtime.into(),
                    shards: k,
                    answers: r.answers.len(),
                    logical_answers: r.stats.logical_answers,
                    routed_frames: r.stats.shard_routed_frames,
                    max_skew: r.stats.shard_max_skew,
                    millis,
                });
            }
        }
        assert!(
            routed_somewhere,
            "{}: no K ever routed a frame across a shard link — E15 is vacuous",
            w.name
        );
    }
    rows
}

/// E16 row: staged stratified evaluation.
#[derive(Clone, Debug)]
pub struct E16Row {
    /// Workload.
    pub workload: String,
    /// Runtime (`sim` or `threads`).
    pub runtime: String,
    /// Shard count K.
    pub shards: usize,
    /// Engine runs in the stratum pipeline.
    pub strata: u64,
    /// Answers.
    pub answers: usize,
    /// Logical answer tuples moved (schedule-invariant, summed over
    /// strata).
    pub logical_answers: u64,
    /// Wall time in milliseconds.
    pub millis: f64,
}

/// E16 — staged stratified evaluation: the win-move game (negation) and
/// aggregate-reachability (a fold over a recursive closure), evaluated
/// as a pipeline of engine runs where each stratum's answers become the
/// next stratum's EDB. Every row asserts the soundness contract
/// in-experiment: the staged answers equal the perfect model computed by
/// the independent `PerfectModel` baseline, on both runtimes and at
/// every shard count, and the pipeline really stages (more than one
/// engine run). What the table tracks across commits is the staging
/// cost: strata counts, summed logical traffic, and wall time.
pub fn e16(scale: Scale) -> Vec<E16Row> {
    use mp_baselines::{Evaluator, PerfectModel};
    let ((wm_n, wm_m), (ar_n, ar_m, ar_src)) = match scale {
        Scale::Quick => ((48, 96), (60, 180, 6)),
        Scale::Full => ((600, 2_400), (400, 3_200, 24)),
    };
    let mut rows = Vec::new();
    for w in [
        scenarios::win_move(wm_n, wm_m, 7),
        scenarios::agg_reachability(ar_n, ar_m, ar_src, 11),
    ] {
        let expect = PerfectModel
            .evaluate(&w.program, &w.db)
            .expect("e16 oracle")
            .answers
            .sorted_rows();
        for (runtime, ks) in [("sim", &[1usize, 4][..]), ("threads", &[1, 4][..])] {
            for &k in ks {
                let mut eng = Engine::new(w.program.clone(), w.db.clone()).with_shards(k);
                if runtime == "threads" {
                    eng = eng
                        .with_runtime(RuntimeKind::Threads)
                        .with_timeout(std::time::Duration::from_secs(120));
                }
                let t0 = Instant::now();
                let r = eng.evaluate().expect("e16 staged run");
                let millis = t0.elapsed().as_secs_f64() * 1e3;
                // The soundness contract, asserted on every row.
                assert_eq!(
                    r.answers.sorted_rows(),
                    expect,
                    "{} {runtime} K={k}: staged answers diverged from the perfect model",
                    w.name
                );
                assert!(
                    r.stats.strata_evaluated > 1,
                    "{} {runtime} K={k}: a stratified workload ran unstaged",
                    w.name
                );
                rows.push(E16Row {
                    workload: w.name.clone(),
                    runtime: runtime.into(),
                    shards: k,
                    strata: r.stats.strata_evaluated,
                    answers: r.answers.len(),
                    logical_answers: r.stats.logical_answers,
                    millis,
                });
            }
        }
    }
    rows
}

/// Run every experiment at the given scale and render markdown.
pub fn full_report(scale: Scale) -> String {
    let mut out = String::new();
    let started = Instant::now();
    out.push_str("# Experiment report\n\n");
    out.push_str(&format!("scale: {scale:?}\n\n"));
    out.push_str("## E1 — P1 across methods (Fig 1)\n\n");
    out.push_str(&markdown_table(&e1(scale)));
    out.push_str("\n## E2 — termination protocol (Fig 2, Thm 3.1)\n\n");
    out.push_str(&markdown_table(&e2(scale)));
    out.push_str("\n## E3 — monotone flow vs cyclic rule (Figs 3–4)\n\n");
    out.push_str(&markdown_table(&e3(scale)));
    out.push_str("\n## E4 — qual tree composition (Fig 5, Thm 4.2)\n\n");
    out.push_str(&markdown_table(&e4(scale)));
    out.push_str("\n## E5 — nonlinear recursion (§1.2)\n\n");
    out.push_str(&markdown_table(&e5(scale)));
    out.push_str("\n## E6 — SIP strategies (Def 2.4)\n\n");
    out.push_str(&markdown_table(&e6(scale)));
    out.push_str("\n## E7 — parallel execution (§1.2)\n\n");
    out.push_str(&markdown_table(&e7(scale)));
    out.push_str("\n## E8 — graph size independence (Thm 2.1)\n\n");
    out.push_str(&markdown_table(&e8(scale)));
    out.push_str("\n## E9 — §4.3 cost model\n\n");
    out.push_str(&markdown_table(&e9(scale)));
    out.push_str("\n## E10 — evaluation under faults (chaos sweep)\n\n");
    out.push_str(&markdown_table(&e10(scale)));
    out.push_str("\n## E11 — data-plane vectorization (tuples/sec)\n\n");
    out.push_str(&markdown_table(&e11(scale)));
    out.push_str("\n## E12 — tracing overhead (mp-trace off vs on)\n\n");
    out.push_str(&markdown_table(&e12(scale)));
    out.push_str("\n## E13 — worker-pool scaling (work-stealing scheduler)\n\n");
    out.push_str(&markdown_table(&e13(scale)));
    out.push_str("\n## E14 — resource-governance overhead (clean path)\n\n");
    out.push_str(&markdown_table(&e14(scale)));
    out.push_str("\n## E15 — sharded evaluation (K-way hash routing)\n\n");
    out.push_str(&markdown_table(&e15(scale)));
    out.push_str("\n## E16 — staged stratified evaluation (negation + aggregates)\n\n");
    out.push_str(&markdown_table(&e16(scale)));
    out.push_str("\n## A1 — packaged tuple requests (ablation, §3.1 fn 2)\n\n");
    out.push_str(&markdown_table(&a1(scale)));
    out.push_str("\n## A2 — cost-based SIP from EDB statistics (ablation, §1.2)\n\n");
    out.push_str(&markdown_table(&a2(scale)));
    out.push_str(&format!(
        "\n(total report time: {:.1}s)\n",
        started.elapsed().as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_engine_stores_less_than_naive() {
        let rows = e1(Scale::Quick);
        let n = rows.iter().map(|r| r.n).max().unwrap();
        let engine = rows
            .iter()
            .find(|r| r.n == n && r.method.starts_with("engine"))
            .unwrap();
        let naive = rows
            .iter()
            .find(|r| r.n == n && r.method == "naive")
            .unwrap();
        assert_eq!(engine.answers, naive.answers);
        assert!(
            engine.idb_tuples < naive.stored,
            "engine idb {} vs naive {}",
            engine.idb_tuples,
            naive.stored
        );
    }

    #[test]
    fn e2_all_schedules_agree_and_overhead_bounded() {
        for row in e2(Scale::Quick) {
            assert_eq!(
                row.schedules_tried, row.schedules_agreeing,
                "{} diverged",
                row.workload
            );
            assert!(row.probe_waves >= 2, "{}: two-wave minimum", row.workload);
        }
    }

    #[test]
    fn e3_cyclic_rule_blows_up_monotone_does_not() {
        let rows = e3(Scale::Quick);
        let pick = |rule: &str, sip: &str, ov: f64| {
            rows.iter()
                .find(|r| r.rule == rule && r.sip == sip && (r.overlap - ov).abs() < 1e-9)
                .unwrap_or_else(|| panic!("missing {rule}/{sip}/{ov}"))
        };
        // All strategies agree on answers per rule.
        assert_eq!(
            pick("r3", "greedy", 0.1).answers,
            pick("r3", "all-free", 0.1).answers
        );
        // The monotone rule's intermediates are bounded by the final
        // result; the cyclic rule's exceed it by a wide margin.
        let r2 = pick("r2", "greedy", 1.0);
        assert!(
            r2.blowup <= 1.0 + 1e-9,
            "monotone blowup {} should not exceed 1",
            r2.blowup
        );
        let r3 = pick("r3", "greedy", 0.1);
        assert!(
            r3.blowup > 4.0,
            "cyclic blowup {} should be large",
            r3.blowup
        );
    }

    #[test]
    fn e4_composition_always_valid() {
        for row in e4(Scale::Quick) {
            assert!(row.composed_valid);
            assert!(row.monotone_preserved);
            assert_eq!(row.body_len, 3 + 2 * row.depth);
        }
    }

    #[test]
    fn e5_nonlinear_workloads_reject_linear_compilation() {
        let rows = e5(Scale::Quick);
        let nonlinear: Vec<_> = rows
            .iter()
            .filter(|r| r.workload.contains("nonlinear") || r.workload.starts_with("p1"))
            .collect();
        assert!(!nonlinear.is_empty());
        for r in &nonlinear {
            assert!(!r.linear_method_applicable, "{}", r.workload);
        }
        // All methods agree on answers per workload.
        for w in rows
            .iter()
            .map(|r| r.workload.clone())
            .collect::<BTreeSet<_>>()
        {
            let answers: BTreeSet<usize> = rows
                .iter()
                .filter(|r| r.workload == w)
                .map(|r| r.answers)
                .collect();
            assert_eq!(answers.len(), 1, "{w} methods disagree: {answers:?}");
        }
    }

    #[test]
    fn e6_greedy_beats_left_to_right() {
        let rows = e6(Scale::Quick);
        let greedy = rows.iter().find(|r| r.sip == "greedy").unwrap();
        let ltr = rows.iter().find(|r| r.sip == "left-to-right").unwrap();
        assert_eq!(greedy.answers, ltr.answers);
        assert!(
            greedy.stored < ltr.stored,
            "greedy {} vs ltr {}",
            greedy.stored,
            ltr.stored
        );
    }

    #[test]
    fn e7_runtimes_agree() {
        let rows = e7(Scale::Quick);
        for k in [1usize, 4] {
            let sim = rows
                .iter()
                .find(|r| r.branches == k && r.runtime == "sim")
                .unwrap();
            let thr = rows
                .iter()
                .find(|r| r.branches == k && r.runtime == "threads")
                .unwrap();
            assert_eq!(sim.answers, thr.answers);
        }
    }

    #[test]
    fn e8_graph_size_constant_in_edb() {
        let rows = e8(Scale::Quick);
        for prog in ["p1", "tc-linear", "same-generation"] {
            let sizes: BTreeSet<usize> = rows
                .iter()
                .filter(|r| r.program == prog)
                .map(|r| r.graph_nodes)
                .collect();
            assert_eq!(sizes.len(), 1, "{prog} graph size varied: {sizes:?}");
        }
    }

    #[test]
    fn e9_greedy_and_qual_tree_orders_are_model_optimal() {
        let rows = e9(Scale::Quick);
        let greedy = rows.iter().find(|r| r.order.contains("greedy")).unwrap();
        assert!(greedy.model_optimal);
        let ltr = rows
            .iter()
            .find(|r| r.order.contains("left-to-right"))
            .unwrap();
        assert!(!ltr.model_optimal);
        assert!(greedy.measured_stored < ltr.measured_stored);
        let qt = rows.iter().find(|r| r.order.contains("qual-tree")).unwrap();
        assert!(qt.model_optimal);
    }

    #[test]
    fn a1_batching_helps_fanout_not_chains() {
        let rows = a1(Scale::Quick);
        let random = rows
            .iter()
            .find(|r| r.workload.starts_with("tc-random"))
            .unwrap();
        assert!(random.packages > 0);
        assert!(random.batched_requests < random.plain_requests);
        let chain = rows
            .iter()
            .find(|r| r.workload.starts_with("tc-chain"))
            .unwrap();
        assert_eq!(chain.packages, 0, "chains have nothing to package");
    }

    #[test]
    fn a2_cost_based_no_worse_than_greedy() {
        let rows = a2(Scale::Quick);
        let greedy = rows.iter().find(|r| r.sip == "greedy").unwrap();
        let cost = rows.iter().find(|r| r.sip == "cost-based").unwrap();
        assert_eq!(greedy.answers, cost.answers);
        assert!(cost.messages <= greedy.messages);
    }

    #[test]
    fn e10_faulty_runs_match_fault_free_answers() {
        let rows = e10(Scale::Quick);
        assert!(rows.iter().all(|r| r.answers_ok), "Thm 3.1 observables");
        for r in rows.iter().filter(|r| r.plan == "none") {
            assert_eq!(r.faults_injected, 0, "{}: clean-path faults", r.workload);
            assert_eq!(r.retransmits, 0, "{}: clean-path overhead", r.workload);
        }
        assert!(rows
            .iter()
            .filter(|r| r.plan == "seeded")
            .all(|r| r.faults_injected > 0));
        let crash_rows: Vec<_> = rows.iter().filter(|r| r.plan == "seeded+crash").collect();
        assert!(crash_rows.iter().all(|r| r.recovered == r.crashes));
        assert!(crash_rows.iter().map(|r| r.crashes).sum::<u64>() > 0);
    }

    #[test]
    fn e11_batching_cuts_frames_without_touching_logical_traffic() {
        // Wall-clock throughput is machine-dependent and asserted nowhere;
        // the deterministic claims are: identical answers and logical
        // counts per workload (checked inside e11 itself), and strictly
        // fewer physical frames at flush bound 64 than on the scalar path.
        let rows = e11(Scale::Quick);
        for w in rows
            .iter()
            .map(|r| r.workload.clone())
            .collect::<BTreeSet<_>>()
        {
            let of = |b: &str| rows.iter().find(|r| r.workload == w && r.batch == b);
            let scalar = of("scalar").unwrap();
            let b64 = of("64").unwrap();
            assert_eq!(scalar.answers, b64.answers, "{w}");
            assert_eq!(scalar.logical_answers, b64.logical_answers, "{w}");
            assert!(
                b64.physical_frames < scalar.physical_frames,
                "{w}: batch 64 sent {} frames vs scalar {}",
                b64.physical_frames,
                scalar.physical_frames
            );
        }
    }

    #[test]
    fn e14_governance_is_invisible_on_the_clean_path() {
        // Wall-clock overhead is machine-dependent and asserted nowhere;
        // the deterministic claims are: identical answers across every
        // configuration and identical logical traffic within each
        // transport group (checked inside e14 itself), zero cancel
        // waves, and credit stalls observed only — and somewhere — on
        // the windowed transport rows.
        let rows = e14(Scale::Quick);
        for r in &rows {
            assert!(r.overhead > 0.0, "{} {}", r.workload, r.governance);
            if r.governance != "wired+window" {
                assert_eq!(
                    r.stalls, 0,
                    "{} {}: stalled without a window",
                    r.workload, r.governance
                );
            }
        }
        assert!(
            rows.iter()
                .any(|r| r.governance == "wired+window" && r.stalls > 0),
            "a mailbox bound of 4 must stall at least one frame somewhere"
        );
    }

    #[test]
    fn e15_sharding_is_observably_unsharded() {
        // The invariance contract (answers + shard-invariant counters
        // identical to K=1 at every K, both runtimes) is asserted inside
        // e15 itself; what the rows must additionally show is that the
        // router never engages at K=1, does engage at some K>1, and that
        // skew never exceeds the routed total.
        let rows = e15(Scale::Quick);
        assert!(!rows.is_empty());
        for r in &rows {
            if r.shards == 1 {
                assert_eq!(r.routed_frames, 0, "{}: routed at K=1", r.workload);
            }
            assert!(
                r.max_skew <= r.routed_frames,
                "{} {} K={}: skew exceeds total",
                r.workload,
                r.runtime,
                r.shards
            );
        }
        assert!(
            rows.iter().any(|r| r.shards > 1 && r.routed_frames > 0),
            "no row ever routed a frame across a shard link"
        );
    }

    #[test]
    fn e16_staging_is_observably_sound() {
        // Oracle equality and staged-ness (strata > 1) are asserted
        // inside e16 itself, per row; what the rows must additionally
        // show is the full matrix (2 workloads x 2 runtimes x 2 shard
        // counts) and that the stratum count is a property of the
        // program, invariant across runtime and shard count.
        let rows = e16(Scale::Quick);
        assert_eq!(rows.len(), 8);
        for w in ["win-move", "agg-reach"] {
            let strata: BTreeSet<u64> = rows
                .iter()
                .filter(|r| r.workload.contains(w))
                .map(|r| r.strata)
                .collect();
            assert_eq!(
                strata.len(),
                1,
                "{w}: stratum count varied across runtimes/shards: {strata:?}"
            );
        }
    }

    #[test]
    fn e13_pool_is_observably_the_simulator() {
        // Wall-clock speedup is machine-dependent and asserted nowhere;
        // the deterministic claims are: identical answers and logical
        // counters vs the simulator at every pool size (checked inside
        // e13 itself), scheduler counters present exactly on pooled rows,
        // and an activation for (at least) every processed message.
        let rows = e13(Scale::Quick);
        for r in &rows {
            if r.workers == "sim" {
                assert_eq!(
                    r.activations, 0,
                    "{}: sim row reports pool work",
                    r.workload
                );
                assert_eq!(r.steals, 0, "{}: sim row reports steals", r.workload);
            } else {
                assert!(
                    r.activations > 0,
                    "{} workers {}: no activations recorded",
                    r.workload,
                    r.workers
                );
            }
        }
        for w in rows
            .iter()
            .map(|r| r.workload.clone())
            .collect::<BTreeSet<_>>()
        {
            let of = |k: &str| rows.iter().find(|r| r.workload == w && r.workers == k);
            let sim = of("sim").unwrap();
            for k in ["1", "2", "4", "8"] {
                let pooled = of(k).unwrap();
                assert_eq!(pooled.answers, sim.answers, "{w} workers {k}");
                assert_eq!(
                    pooled.logical_answers, sim.logical_answers,
                    "{w} workers {k}"
                );
            }
        }
    }

    #[test]
    fn markdown_rendering_smoke() {
        let rows = e8(Scale::Quick);
        let md = markdown_table(&rows);
        assert!(md.starts_with('|'));
        assert!(md.contains("graph_nodes"));
    }
}
