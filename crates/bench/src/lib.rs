#![warn(missing_docs)]

//! # mp-bench
//!
//! The experiment harness. Every figure/theorem/claim of the paper maps
//! to one experiment (E1–E9, see EXPERIMENTS.md); each experiment is a
//! plain function returning serializable rows, consumed by
//!
//! * the `report` binary (`cargo run -p mp-bench --release --bin report`),
//!   which prints the EXPERIMENTS.md tables, and
//! * the Criterion benches in `benches/` (`cargo bench`), which measure
//!   wall time on representative points.

pub mod experiments;

use mp_baselines::Evaluator;
use mp_datalog::{Database, Program};
use mp_engine::{Engine, RuntimeKind, Schedule};
use mp_rulegoal::SipKind;
use serde::Serialize;
use std::time::Instant;

/// How big to run the sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small: seconds in total (CI, tests).
    Quick,
    /// The EXPERIMENTS.md scale.
    Full,
}

impl Scale {
    /// Pick a size list by scale.
    pub fn sizes<'a>(&self, quick: &'a [usize], full: &'a [usize]) -> &'a [usize] {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One engine measurement.
#[derive(Clone, Debug, Serialize)]
pub struct EngineRun {
    /// Method label (`engine/greedy`, …).
    pub method: String,
    /// Answer count.
    pub answers: usize,
    /// Total messages sent.
    pub messages: u64,
    /// §3.2 protocol messages.
    pub protocol_messages: u64,
    /// Tuples stored in node-local relations (all copies; §3.1 trades
    /// space for communication).
    pub stored: u64,
    /// Distinct tuples at goal-node answer relations (comparable with a
    /// bottom-up evaluator's IDB store).
    pub goal_stored: u64,
    /// Largest single node-local relation.
    pub max_relation: u64,
    /// Largest rule-node stage relation (intermediate join results).
    pub max_stage: u64,
    /// Join probes.
    pub join_probes: u64,
    /// Probe waves completed.
    pub probe_waves: u64,
    /// Wall time in milliseconds.
    pub millis: f64,
}

/// Run the engine and collect an [`EngineRun`].
pub fn run_engine(program: &Program, db: &Database, sip: SipKind) -> EngineRun {
    run_engine_with(program, db, sip, RuntimeKind::Sim(Schedule::Fifo))
}

/// Run the engine with an explicit runtime.
pub fn run_engine_with(
    program: &Program,
    db: &Database,
    sip: SipKind,
    runtime: RuntimeKind,
) -> EngineRun {
    let t0 = Instant::now();
    let r = Engine::new(program.clone(), db.clone())
        .with_sip(sip)
        .with_runtime(runtime)
        .evaluate()
        .expect("engine run");
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    EngineRun {
        method: format!("engine/{}", sip.name()),
        answers: r.answers.len(),
        messages: r.stats.total_messages(),
        protocol_messages: r.stats.protocol_messages,
        stored: r.stats.stored_tuples,
        goal_stored: r.stats.goal_stored,
        max_relation: r.stats.max_relation_size,
        max_stage: r.stats.max_stage_relation,
        join_probes: r.stats.join_probes,
        probe_waves: r.stats.probe_waves,
        millis,
    }
}

/// One baseline measurement.
#[derive(Clone, Debug, Serialize)]
pub struct BaselineRun {
    /// Method label.
    pub method: String,
    /// Answer count.
    pub answers: usize,
    /// Head tuples derived (before dedup).
    pub derived: u64,
    /// Tuples stored.
    pub stored: u64,
    /// Join probes.
    pub join_probes: u64,
    /// Fixpoint iterations.
    pub iterations: u64,
    /// Wall time in milliseconds.
    pub millis: f64,
}

/// Run one baseline evaluator.
pub fn run_baseline(ev: &dyn Evaluator, program: &Program, db: &Database) -> BaselineRun {
    let t0 = Instant::now();
    let r = ev.evaluate(program, db).expect("baseline run");
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    BaselineRun {
        method: ev.name().to_string(),
        answers: r.answers.len(),
        derived: r.stats.derived_tuples,
        stored: r.stats.stored_tuples,
        join_probes: r.stats.join_probes,
        iterations: r.stats.iterations,
        millis,
    }
}

/// Render rows as a GitHub-flavoured markdown table from serde_json
/// field order.
pub fn markdown_table<T: Serialize>(rows: &[T]) -> String {
    if rows.is_empty() {
        return String::from("(no rows)\n");
    }
    let values: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| serde_json::to_value(r).expect("serializable row"))
        .collect();
    let headers: Vec<String> = match &values[0] {
        serde_json::Value::Object(m) => m.keys().cloned().collect(),
        _ => return String::from("(unsupported row type)\n"),
    };
    let mut out = String::new();
    out.push('|');
    for h in &headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push_str("\n|");
    for _ in &headers {
        out.push_str("---|");
    }
    out.push('\n');
    for v in &values {
        out.push('|');
        for h in &headers {
            let cell = match &v[h] {
                serde_json::Value::Number(n) => {
                    if let Some(f) = n.as_f64() {
                        if n.is_f64() {
                            format!("{f:.2}")
                        } else {
                            n.to_string()
                        }
                    } else {
                        n.to_string()
                    }
                }
                serde_json::Value::String(s) => s.clone(),
                serde_json::Value::Bool(b) => b.to_string(),
                other => other.to_string(),
            };
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}
