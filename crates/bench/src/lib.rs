#![warn(missing_docs)]

//! # mp-bench
//!
//! The experiment harness. Every figure/theorem/claim of the paper maps
//! to one experiment (E1–E9, see EXPERIMENTS.md); each experiment is a
//! plain function returning table rows, consumed by
//!
//! * the `report` binary (`cargo run -p mp-bench --release --bin report`),
//!   which prints the EXPERIMENTS.md tables, and
//! * the Criterion benches in `benches/` (`cargo bench`), which measure
//!   wall time on representative points.

pub mod experiments;

use mp_baselines::Evaluator;
use mp_datalog::{Database, Program};
use mp_engine::{Engine, RuntimeKind, Schedule};
use mp_rulegoal::SipKind;
use std::fmt;
use std::time::Instant;

/// One rendered table cell.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// Integer-valued counter.
    Int(i128),
    /// Measurement, rendered with two decimals.
    Float(f64),
    /// Label.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Int(v) => write!(f, "{v}"),
            Cell::Float(v) => write!(f, "{v:.2}"),
            Cell::Str(s) => f.write_str(s),
            Cell::Bool(b) => write!(f, "{b}"),
        }
    }
}

macro_rules! impl_cell_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Cell {
            fn from(v: $t) -> Cell { Cell::Int(v as i128) }
        }
    )*};
}
impl_cell_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Cell {
    fn from(v: f64) -> Cell {
        Cell::Float(v)
    }
}
impl From<String> for Cell {
    fn from(v: String) -> Cell {
        Cell::Str(v)
    }
}
impl From<&str> for Cell {
    fn from(v: &str) -> Cell {
        Cell::Str(v.to_string())
    }
}
impl From<bool> for Cell {
    fn from(v: bool) -> Cell {
        Cell::Bool(v)
    }
}

/// A table row: ordered `(header, cell)` pairs. Replaces the serde-based
/// reflection the harness used when it could link against `serde_json`.
pub trait Row {
    /// The row's columns in display order.
    fn cells(&self) -> Vec<(&'static str, Cell)>;
}

/// Implement [`Row`] for a struct by listing its fields in column order.
#[macro_export]
macro_rules! impl_row {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Row for $ty {
            fn cells(&self) -> Vec<(&'static str, $crate::Cell)> {
                vec![$((stringify!($field), $crate::Cell::from(self.$field.clone())),)+]
            }
        }
    };
}

/// How big to run the sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small: seconds in total (CI, tests).
    Quick,
    /// The EXPERIMENTS.md scale.
    Full,
}

impl Scale {
    /// Pick a size list by scale.
    pub fn sizes<'a>(&self, quick: &'a [usize], full: &'a [usize]) -> &'a [usize] {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One engine measurement.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Method label (`engine/greedy`, …).
    pub method: String,
    /// Answer count.
    pub answers: usize,
    /// Total messages sent.
    pub messages: u64,
    /// §3.2 protocol messages.
    pub protocol_messages: u64,
    /// Tuples stored in node-local relations (all copies; §3.1 trades
    /// space for communication).
    pub stored: u64,
    /// Distinct tuples at goal-node answer relations (comparable with a
    /// bottom-up evaluator's IDB store).
    pub goal_stored: u64,
    /// Largest single node-local relation.
    pub max_relation: u64,
    /// Largest rule-node stage relation (intermediate join results).
    pub max_stage: u64,
    /// Join probes.
    pub join_probes: u64,
    /// Probe waves completed.
    pub probe_waves: u64,
    /// Wall time in milliseconds.
    pub millis: f64,
}

/// Run the engine and collect an [`EngineRun`].
pub fn run_engine(program: &Program, db: &Database, sip: SipKind) -> EngineRun {
    run_engine_with(program, db, sip, RuntimeKind::Sim(Schedule::Fifo))
}

/// Run the engine with an explicit runtime.
pub fn run_engine_with(
    program: &Program,
    db: &Database,
    sip: SipKind,
    runtime: RuntimeKind,
) -> EngineRun {
    let t0 = Instant::now();
    let r = Engine::new(program.clone(), db.clone())
        .with_sip(sip)
        .with_runtime(runtime)
        .evaluate()
        .expect("engine run");
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    EngineRun {
        method: format!("engine/{}", sip.name()),
        answers: r.answers.len(),
        messages: r.stats.total_messages(),
        protocol_messages: r.stats.protocol_messages,
        stored: r.stats.stored_tuples,
        goal_stored: r.stats.goal_stored,
        max_relation: r.stats.max_relation_size,
        max_stage: r.stats.max_stage_relation,
        join_probes: r.stats.join_probes,
        probe_waves: r.stats.probe_waves,
        millis,
    }
}

/// One baseline measurement.
#[derive(Clone, Debug)]
pub struct BaselineRun {
    /// Method label.
    pub method: String,
    /// Answer count.
    pub answers: usize,
    /// Head tuples derived (before dedup).
    pub derived: u64,
    /// Tuples stored.
    pub stored: u64,
    /// Join probes.
    pub join_probes: u64,
    /// Fixpoint iterations.
    pub iterations: u64,
    /// Wall time in milliseconds.
    pub millis: f64,
}

/// Run one baseline evaluator.
pub fn run_baseline(ev: &dyn Evaluator, program: &Program, db: &Database) -> BaselineRun {
    let t0 = Instant::now();
    let r = ev.evaluate(program, db).expect("baseline run");
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    BaselineRun {
        method: ev.name().to_string(),
        answers: r.answers.len(),
        derived: r.stats.derived_tuples,
        stored: r.stats.stored_tuples,
        join_probes: r.stats.join_probes,
        iterations: r.stats.iterations,
        millis,
    }
}

/// Render rows as a GitHub-flavoured markdown table in [`Row`] column
/// order.
pub fn markdown_table<T: Row>(rows: &[T]) -> String {
    if rows.is_empty() {
        return String::from("(no rows)\n");
    }
    let first = rows[0].cells();
    let mut out = String::new();
    out.push('|');
    for (h, _) in &first {
        out.push_str(&format!(" {h} |"));
    }
    out.push_str("\n|");
    for _ in &first {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for (_, cell) in row.cells() {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Render rows as a JSON array of objects, one per row, keyed by the
/// [`Row`] headers. Hand-rolled because the harness cannot link against
/// `serde_json`; covers exactly the four [`Cell`] shapes.
pub fn json_table<T: Row>(rows: &[T]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        for (j, (h, cell)) in row.cells().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": ", escape(h)));
            match cell {
                Cell::Int(v) => out.push_str(&v.to_string()),
                // JSON has no NaN/Infinity literals; bench floats are
                // finite, but degrade to null rather than emit garbage.
                Cell::Float(v) if v.is_finite() => out.push_str(&format!("{v:.4}")),
                Cell::Float(_) => out.push_str("null"),
                Cell::Str(s) => out.push_str(&format!("\"{}\"", escape(s))),
                Cell::Bool(b) => out.push_str(&b.to_string()),
            }
        }
        out.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("]\n");
    out
}

impl_row!(EngineRun {
    method,
    answers,
    messages,
    protocol_messages,
    stored,
    goal_stored,
    max_relation,
    max_stage,
    join_probes,
    probe_waves,
    millis,
});

impl_row!(BaselineRun {
    method,
    answers,
    derived,
    stored,
    join_probes,
    iterations,
    millis,
});
