//! E3 (Figs 3–4, Example 4.1): monotone R2 vs cyclic R3, with and
//! without sideways restriction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_engine::Engine;
use mp_rulegoal::SipKind;
use mp_workloads::scenarios;

fn bench_e3(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_monotone");
    g.sample_size(10);
    for n in [64usize, 256] {
        for (label, w) in [
            ("r2", scenarios::r2(n, 4, 1)),
            ("r3_ov10", scenarios::r3(n, 4, 0.1, 1)),
        ] {
            for sip in [SipKind::Greedy, SipKind::AllFree] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{label}_{}", sip.name()), n),
                    &w,
                    |b, w| {
                        b.iter(|| {
                            Engine::new(w.program.clone(), w.db.clone())
                                .with_sip(sip)
                                .evaluate()
                                .unwrap()
                                .stats
                                .max_relation_size
                        })
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
