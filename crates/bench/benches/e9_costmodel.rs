//! E9 (§4.3): the cost model itself — prediction and exhaustive order
//! optimization over the paper's example rules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_datalog::Var;
use mp_hypergraph::cost::{optimal_order, predict, CostModel};
use mp_hypergraph::examples;
use std::collections::BTreeSet;

fn bench_e9(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_costmodel");
    let model = CostModel::new(0.3, 1.0e6);
    let bound: BTreeSet<Var> = BTreeSet::from([Var::new("X")]);
    for (label, rule) in [
        ("r1", examples::r1()),
        ("r2", examples::r2()),
        ("r3", examples::r3()),
    ] {
        let order: Vec<usize> = (0..rule.body.len()).collect();
        g.bench_with_input(BenchmarkId::new("predict", label), &rule, |b, rule| {
            b.iter(|| predict(&model, rule, &order, &bound).total_cost)
        });
        g.bench_with_input(
            BenchmarkId::new("optimal_order", label),
            &rule,
            |b, rule| b.iter(|| optimal_order(&model, rule, &bound).1.total_cost),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
