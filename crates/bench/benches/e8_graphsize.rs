//! E8 (Thm 2.1): rule/goal graph construction time and size are
//! independent of the EDB.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_rulegoal::{RuleGoalGraph, SipKind};
use mp_workloads::scenarios;

fn bench_e8(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_graphsize");
    for n in [16usize, 1024, 16384] {
        let w = scenarios::p1_chain(n);
        g.bench_with_input(BenchmarkId::new("build_p1", n), &w, |b, w| {
            b.iter(|| {
                RuleGoalGraph::build(&w.program, &w.db, SipKind::Greedy)
                    .unwrap()
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
