//! E5 (§1.2): nonlinear recursion (divide-and-conquer transitive
//! closure, same-generation) across methods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_baselines::{Evaluator, MagicSets, SemiNaive};
use mp_engine::Engine;
use mp_workloads::scenarios;

fn bench_e5(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_nonlinear");
    g.sample_size(10);
    for (label, w) in [
        ("tc_nonlinear_32", scenarios::tc_nonlinear_chain(32)),
        ("sg_tree_d4f2", scenarios::sg_tree(4, 2, 3)),
    ] {
        g.bench_with_input(BenchmarkId::new("engine", label), &w, |b, w| {
            b.iter(|| {
                Engine::new(w.program.clone(), w.db.clone())
                    .evaluate()
                    .unwrap()
                    .answers
                    .len()
            })
        });
        g.bench_with_input(BenchmarkId::new("semi_naive", label), &w, |b, w| {
            b.iter(|| SemiNaive.evaluate(&w.program, &w.db).unwrap().answers.len())
        });
        g.bench_with_input(BenchmarkId::new("magic", label), &w, |b, w| {
            b.iter(|| {
                MagicSets::default()
                    .evaluate(&w.program, &w.db)
                    .unwrap()
                    .answers
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
