//! Ablation benches for the implemented extensions: packaged tuple
//! requests (§3.1 footnote 2) and the statistics-driven SIP (§1.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_engine::Engine;
use mp_rulegoal::SipKind;
use mp_workloads::scenarios;

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("a_extensions");
    g.sample_size(10);

    let w = scenarios::tc_random(80, 400, 3);
    g.bench_with_input(BenchmarkId::new("batching", "off"), &w, |b, w| {
        b.iter(|| {
            Engine::new(w.program.clone(), w.db.clone())
                .evaluate()
                .unwrap()
                .stats
                .total_messages()
        })
    });
    g.bench_with_input(BenchmarkId::new("batching", "on"), &w, |b, w| {
        b.iter(|| {
            Engine::new(w.program.clone(), w.db.clone())
                .with_batching(true)
                .evaluate()
                .unwrap()
                .stats
                .total_messages()
        })
    });

    for sip in [SipKind::Greedy, SipKind::CostBased] {
        g.bench_with_input(
            BenchmarkId::new("sip_on_skewed", sip.name()),
            &sip,
            |b, &sip| {
                let (program, db) = skewed(256);
                b.iter(|| {
                    Engine::new(program.clone(), db.clone())
                        .with_sip(sip)
                        .evaluate()
                        .unwrap()
                        .stats
                        .stored_tuples
                })
            },
        );
    }
    g.finish();
}

fn skewed(n: usize) -> (mp_datalog::Program, mp_datalog::Database) {
    let program = mp_datalog::parser::parse_program(
        "p(X, Z) :- big(X, Y), tiny(X, W), link(Y, W, Z).
         ?- p(0, Z).",
    )
    .unwrap();
    let mut db = mp_datalog::Database::new();
    for x in 0..4i64 {
        db.insert("tiny", mp_storage::tuple![x, x + 5000]).unwrap();
        for y in 0..n as i64 {
            db.insert("big", mp_storage::tuple![x, y + 1000]).unwrap();
        }
    }
    for y in 0..n as i64 {
        for x in 0..4i64 {
            db.insert("link", mp_storage::tuple![y + 1000, x + 5000, y])
                .unwrap();
        }
    }
    (program, db)
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
