//! E2 (Fig 2, Thm 3.1): cost of running the distributed termination
//! protocol across strong-component sizes and schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_engine::{Engine, RuntimeKind, Schedule};
use mp_workloads::scenarios;

fn bench_e2(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_termination");
    g.sample_size(10);
    for n in [16usize, 64] {
        let w = scenarios::tc_cycle(n);
        g.bench_with_input(BenchmarkId::new("fifo", n), &w, |b, w| {
            b.iter(|| {
                Engine::new(w.program.clone(), w.db.clone())
                    .evaluate()
                    .unwrap()
                    .stats
                    .protocol_messages
            })
        });
        g.bench_with_input(BenchmarkId::new("random_schedule", n), &w, |b, w| {
            b.iter(|| {
                Engine::new(w.program.clone(), w.db.clone())
                    .with_runtime(RuntimeKind::Sim(Schedule::Random(7)))
                    .evaluate()
                    .unwrap()
                    .stats
                    .protocol_messages
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
