//! E1 (Fig 1): the paper's P1 under message passing vs the baselines,
//! over chain EDBs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_baselines::{Evaluator, MagicSets, Naive, SemiNaive};
use mp_engine::Engine;
use mp_rulegoal::SipKind;
use mp_workloads::scenarios;

fn bench_e1(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_p1");
    g.sample_size(10);
    for n in [32usize, 128] {
        let w = scenarios::p1_chain(n);
        g.bench_with_input(BenchmarkId::new("engine_greedy", n), &w, |b, w| {
            b.iter(|| {
                Engine::new(w.program.clone(), w.db.clone())
                    .with_sip(SipKind::Greedy)
                    .evaluate()
                    .unwrap()
                    .answers
                    .len()
            })
        });
        g.bench_with_input(BenchmarkId::new("semi_naive", n), &w, |b, w| {
            b.iter(|| SemiNaive.evaluate(&w.program, &w.db).unwrap().answers.len())
        });
        g.bench_with_input(BenchmarkId::new("magic", n), &w, |b, w| {
            b.iter(|| {
                MagicSets::default()
                    .evaluate(&w.program, &w.db)
                    .unwrap()
                    .answers
                    .len()
            })
        });
        if n <= 32 {
            g.bench_with_input(BenchmarkId::new("naive", n), &w, |b, w| {
                b.iter(|| Naive.evaluate(&w.program, &w.db).unwrap().answers.len())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
