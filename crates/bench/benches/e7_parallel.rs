//! E7 (§1.2): the threaded runtime on independent recursive branches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_datalog::{parser::parse_program, Database};
use mp_engine::{Engine, RuntimeKind};
use mp_workloads::graphs;

fn workload(k: usize, n: usize) -> (mp_datalog::Program, Database) {
    let mut src = String::new();
    let mut db = Database::new();
    for b in 0..k {
        src.push_str(&format!(
            "p{b}(X, Y) :- e{b}(X, Y).
             p{b}(X, Z) :- p{b}(X, Y), p{b}(Y, Z).
             goal(X) :- p{b}(0, X).\n"
        ));
        graphs::chain(&mut db, &format!("e{b}"), n);
    }
    (parse_program(&src).unwrap(), db)
}

fn bench_e7(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_parallel");
    g.sample_size(10);
    for k in [1usize, 4, 8] {
        let (program, db) = workload(k, 48);
        g.bench_with_input(BenchmarkId::new("sim", k), &k, |b, _| {
            b.iter(|| {
                Engine::new(program.clone(), db.clone())
                    .evaluate()
                    .unwrap()
                    .answers
                    .len()
            })
        });
        g.bench_with_input(BenchmarkId::new("threads", k), &k, |b, _| {
            b.iter(|| {
                Engine::new(program.clone(), db.clone())
                    .with_runtime(RuntimeKind::Threads)
                    .evaluate()
                    .unwrap()
                    .answers
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
