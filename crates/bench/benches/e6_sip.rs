//! E6 (Def 2.4): sideways information passing strategies on a join rule
//! written against the flow direction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_datalog::{parser::parse_program, Database};
use mp_engine::Engine;
use mp_rulegoal::SipKind;
use mp_storage::tuple;

fn workload(n: usize) -> (mp_datalog::Program, Database) {
    let program = parse_program(
        "p(X, Z) :- c(U, Z), b(Y, U), a(X, Y).
         ?- p(0, Z).",
    )
    .unwrap();
    let mut db = Database::new();
    for i in 0..n as i64 {
        db.insert("a", tuple![i, i + 1]).unwrap();
        db.insert("b", tuple![i + 1, i + 2]).unwrap();
        db.insert("c", tuple![i + 2, i + 3]).unwrap();
    }
    (program, db)
}

fn bench_e6(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_sip");
    g.sample_size(10);
    for n in [256usize, 2048] {
        let (program, db) = workload(n);
        for sip in SipKind::ALL {
            g.bench_with_input(BenchmarkId::new(sip.name(), n), &n, |b, _| {
                b.iter(|| {
                    Engine::new(program.clone(), db.clone())
                        .with_sip(sip)
                        .evaluate()
                        .unwrap()
                        .stats
                        .stored_tuples
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
