//! E4 (Fig 5, Thm 4.2): qual-tree composition speed vs testing the
//! extended rule's acyclicity from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_datalog::{parser::parse_rule, Var};
use mp_hypergraph::compose::compose;
use mp_hypergraph::{examples, monotone_flow, MonotoneFlow};
use std::collections::BTreeSet;

fn extend(depth: usize) -> (mp_datalog::Rule, mp_hypergraph::QualTree) {
    let bound: BTreeSet<Var> = BTreeSet::from([Var::new("X")]);
    let inner = parse_rule("c(X, Z) :- a(X, Y), b(Y, U), c(U, Z).").unwrap();
    let mut rule = examples::r1();
    let mut qt = match monotone_flow(&rule, &bound) {
        MonotoneFlow::Monotone(qt) => qt,
        MonotoneFlow::Cyclic(_) => unreachable!(),
    };
    for _ in 0..depth {
        let qi = match monotone_flow(&inner, &bound) {
            MonotoneFlow::Monotone(qt) => qt,
            MonotoneFlow::Cyclic(_) => unreachable!(),
        };
        let last = rule.body.len() - 1;
        let comp = compose(&rule, &qt, last, &inner, &qi).unwrap();
        rule = comp.rule;
        qt = comp.qual_tree;
    }
    (rule, qt)
}

fn bench_e4(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_compose");
    for depth in [8usize, 32] {
        let (rule, qt) = extend(depth);
        let bound: BTreeSet<Var> = BTreeSet::from([Var::new("X")]);
        let inner = parse_rule("c(X, Z) :- a(X, Y), b(Y, U), c(U, Z).").unwrap();
        let qi = match monotone_flow(&inner, &bound) {
            MonotoneFlow::Monotone(qt) => qt,
            MonotoneFlow::Cyclic(_) => unreachable!(),
        };
        // Incremental: one composition step at this depth (Thm 4.2).
        g.bench_with_input(BenchmarkId::new("compose_step", depth), &depth, |b, _| {
            b.iter(|| {
                compose(&rule, &qt, rule.body.len() - 1, &inner, &qi)
                    .unwrap()
                    .rule
                    .body
                    .len()
            })
        });
        // From scratch: full Graham reduction of the extended rule.
        g.bench_with_input(
            BenchmarkId::new("gyo_from_scratch", depth),
            &depth,
            |b, _| b.iter(|| monotone_flow(&rule, &bound).is_monotone()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
