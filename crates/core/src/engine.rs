//! The top-level query evaluation API.

use crate::fault::FaultPlan;
use crate::node::{Network, ShardPlan};
use crate::runtime::{CancelToken, QueryBudget, RuntimeError, Schedule, SimRuntime, ThreadRuntime};
use crate::stats::Stats;
use mp_datalog::analysis::DependencyAnalysis;
use mp_datalog::{Atom, Database, DatalogError, Predicate, Program, Rule, Term, Var};
use mp_lint::protocol::ProtocolView;
use mp_lint::Diagnostic;
use mp_rulegoal::{GraphError, RuleGoalGraph, SipKind};
use mp_storage::{AggError, Relation, Tuple};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Which runtime executes the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Deterministic single-threaded simulation with the given schedule.
    Sim(Schedule),
    /// One OS thread per node over crossbeam channels.
    Threads,
}

/// Errors from engine construction or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Static verification rejected the program or a compiled artifact.
    /// Holds *all* diagnostics from the run (at least one deny-level),
    /// sorted by (code, location).
    Lint(Vec<Diagnostic>),
    /// Program/graph construction failure.
    Graph(GraphError),
    /// Runtime failure.
    Runtime(RuntimeError),
    /// An aggregate fold failed while materializing a stratum (sum/min/
    /// max over a symbol, or an i64 overflow).
    Aggregate(AggError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Lint(diags) => {
                let denies = diags.iter().filter(|d| d.is_deny()).count();
                write!(f, "static verification failed with {denies} error(s)")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            EngineError::Graph(e) => write!(f, "{e}"),
            EngineError::Runtime(e) => write!(f, "{e}"),
            EngineError::Aggregate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<DatalogError> for EngineError {
    fn from(e: DatalogError) -> Self {
        EngineError::Graph(GraphError::Datalog(e))
    }
}

impl From<RuntimeError> for EngineError {
    fn from(e: RuntimeError) -> Self {
        EngineError::Runtime(e)
    }
}

impl From<AggError> for EngineError {
    fn from(e: AggError) -> Self {
        EngineError::Aggregate(e)
    }
}

/// A statically verified, compiled query: the rule/goal graph plus any
/// advisory diagnostics that survived the deny gate.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The verified rule/goal graph — with provably-dead rules and their
    /// unreachable subtrees already pruned when analysis is enabled.
    pub graph: RuleGoalGraph,
    /// Warn-level diagnostics (e.g. unreachable predicates, singleton
    /// variables, MP4xx analysis findings). Never contains a deny-level
    /// entry.
    pub warnings: Vec<Diagnostic>,
    /// The abstract-interpretation analysis over the *unpruned* graph:
    /// per-node cardinality/volume estimates, batch-size hints, and
    /// partition keys (the `mpq --explain` payload).
    pub analysis: mp_analyze::Analysis,
    /// Nodes removed from the graph by analysis pruning (0 when analysis
    /// is disabled or nothing was dead).
    pub pruned_nodes: usize,
    /// Rule nodes among [`Compiled::pruned_nodes`].
    pub pruned_rules: usize,
}

/// The result of evaluating a query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The `goal` relation: all tuples `t` with `goal(t)` in the minimum
    /// model (§1).
    pub answers: Relation,
    /// Instrumentation.
    pub stats: Stats,
    /// Rule/goal graph size (nodes) — Thm 2.1's observable.
    pub graph_nodes: usize,
    /// Full message trace, when tracing was enabled on the simulator.
    pub trace: Option<Vec<crate::msg::Msg>>,
    /// Clock-stamped event trace, when tracing was enabled (either
    /// runtime): the input to `mp_trace::check` offline verification and
    /// to [`Engine::replay`].
    pub events: Option<mp_trace::Trace>,
    /// `End` messages delivered to the engine — exactly 1 on a correct
    /// run (Thm 3.1), also under faults.
    pub engine_ends: u64,
    /// Answers delivered after the final `End` — always 0 on a correct
    /// run (Thm 3.1), also under faults.
    pub post_end_answers: u64,
}

/// The message-passing query engine.
///
/// ```
/// use mp_engine::Engine;
/// use mp_datalog::{parser::parse_program, Database};
/// use mp_storage::tuple;
///
/// let program = parse_program(
///     "path(X, Y) :- edge(X, Y).
///      path(X, Z) :- path(X, Y), edge(Y, Z).
///      ?- path(1, Z).",
/// ).unwrap();
/// let mut db = Database::new();
/// db.insert("edge", tuple![1, 2]).unwrap();
/// db.insert("edge", tuple![2, 3]).unwrap();
///
/// let result = Engine::new(program, db).evaluate().unwrap();
/// assert_eq!(result.answers.sorted_rows(), vec![tuple![2], tuple![3]]);
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    program: Program,
    db: Database,
    sip: SipKind,
    runtime: RuntimeKind,
    budget: QueryBudget,
    cancel: CancelToken,
    trace: bool,
    batching: bool,
    batch_size: usize,
    fault_plan: Option<FaultPlan>,
    recovery: bool,
    workers: usize,
    analysis: bool,
    shards: usize,
    stratify: bool,
}

impl Engine {
    /// Create an engine with defaults: greedy SIP, deterministic FIFO
    /// simulation.
    pub fn new(program: Program, mut db: Database) -> Engine {
        // Inline facts in the program text belong to the EDB.
        let _ = program.load_facts(&mut db);
        Engine {
            program,
            db,
            sip: SipKind::Greedy,
            runtime: RuntimeKind::Sim(Schedule::Fifo),
            budget: QueryBudget::default(),
            cancel: CancelToken::default(),
            trace: false,
            batching: false,
            batch_size: 64,
            fault_plan: None,
            recovery: true,
            workers: 0,
            analysis: true,
            shards: 1,
            stratify: true,
        }
    }

    /// Replicate every request-keyed node `K` ways (default 1: no
    /// sharding). Each eligible goal node — one whose partition verdict
    /// is `Key(cols)` and whose every tuple request carries the full key
    /// — is compiled into `K` shard instances; requests and head answers
    /// route to the owning instance by a deterministic hash of the
    /// partition-key columns, so both runtimes route identically.
    /// `Gather`/`Singleton` nodes, rule nodes, and SCC leaders stay
    /// single-instance. Sharding is answer-invariant: for every workload
    /// and `K`, answers and logical message counts are bit-identical to
    /// `with_shards(1)`.
    pub fn with_shards(mut self, shards: usize) -> Engine {
        self.shards = shards.max(1);
        self
    }

    /// Enable or disable abstract-interpretation analysis pruning
    /// (default: enabled). With analysis off, `compile` still runs the
    /// analysis passes for their annotations and MP4xx warnings but
    /// evaluates the unpruned graph — pruning on and off must produce
    /// bit-identical answers (the analysis soundness property).
    pub fn with_analysis(mut self, analysis: bool) -> Engine {
        self.analysis = analysis;
        self
    }

    /// Enable or disable the compile-time stratification gate (default:
    /// enabled). The gate runs mp-stratify's MP009/MP010 cycle checks in
    /// [`Engine::compile`]; a negation-free, aggregate-free program
    /// compiles and evaluates bit-identically — answers and the Thm 4.1
    /// logical counters — with the pass on or off. Disabling the gate
    /// does *not* disable staged evaluation itself: a program that uses
    /// `!` or an aggregate is always evaluated stratum by stratum (the
    /// pipeline is what makes those constructs well-defined), and an
    /// unstratifiable program is still rejected by the staging driver.
    pub fn with_stratification(mut self, stratify: bool) -> Engine {
        self.stratify = stratify;
        self
    }

    /// Choose the sideways information passing strategy.
    pub fn with_sip(mut self, sip: SipKind) -> Engine {
        self.sip = sip;
        self
    }

    /// Choose the runtime.
    pub fn with_runtime(mut self, runtime: RuntimeKind) -> Engine {
        self.runtime = runtime;
        self
    }

    /// Set the full resource budget: step guard, wall-clock deadline,
    /// logical-message and memory high-water limits, and the per-node
    /// mailbox bound that drives credit-based backpressure. Crossing the
    /// message or memory limit runs a cancel drain wave and returns
    /// [`RuntimeError::BudgetExceeded`] carrying the partial answers and
    /// per-node accounting; the step guard and deadline keep their
    /// historical errors ([`RuntimeError::Diverged`] /
    /// [`RuntimeError::Timeout`]).
    pub fn with_budget(mut self, budget: QueryBudget) -> Engine {
        self.budget = budget;
        self
    }

    /// The engine's cooperative cancellation handle. Clone it to another
    /// thread and call [`CancelToken::cancel`] to stop a running
    /// evaluation: a cancel wave drains the network and `evaluate`
    /// returns [`RuntimeError::Cancelled`] with the partial answers.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Cap the step budget. Deprecated shim: forwards to the
    /// [`QueryBudget`] — use `with_budget(QueryBudget::new()
    /// .with_max_steps(..))` in new code.
    pub fn with_max_steps(mut self, max_steps: u64) -> Engine {
        self.budget.max_steps = max_steps;
        self
    }

    /// Cap the wall-clock budget. Deprecated shim: forwards to the
    /// [`QueryBudget`] — use `with_budget(QueryBudget::new()
    /// .with_deadline(..))` in new code.
    pub fn with_timeout(mut self, timeout: Duration) -> Engine {
        self.budget.deadline = timeout;
        self
    }

    /// Size the threaded runtime's worker pool. `0` (the default) sizes
    /// it to `std::thread::available_parallelism`; the pool is never
    /// larger than the graph's node count. Ignored by the simulator.
    pub fn with_workers(mut self, workers: usize) -> Engine {
        self.workers = workers;
        self
    }

    /// Record execution traces. On the simulator this captures both the
    /// full message log ([`QueryResult::trace`]) and the clock-stamped
    /// event trace ([`QueryResult::events`]); on the threaded runtime it
    /// captures the event trace. Off by default — the untraced path
    /// skips every recording branch.
    pub fn with_trace(mut self, trace: bool) -> Engine {
        self.trace = trace;
        self
    }

    /// Package tuple requests, answers, and per-binding ends produced by
    /// one message into one batch per arc (§3.1 footnote 2).
    /// Semantically transparent — the logical message counts and
    /// Thm 3.1 observables are identical to the scalar path — while
    /// physical frame counts drop on fan-out-heavy workloads.
    pub fn with_batching(mut self, batching: bool) -> Engine {
        self.batching = batching;
        self
    }

    /// Set the per-arc batch flush bound (default 64, clamped to ≥ 1):
    /// a buffer reaching this size is flushed mid-turn; smaller buffers
    /// flush when their node's mailbox drains. Only observable with
    /// [`Engine::with_batching`] enabled.
    pub fn with_batch_size(mut self, batch_size: usize) -> Engine {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Pre-size the process-wide string interner for an expected symbol
    /// count, avoiding rehashes during a bulk load. Purely a capacity
    /// hint; takes effect immediately.
    pub fn with_symbol_capacity(self, symbols: usize) -> Engine {
        mp_storage::reserve_symbols(symbols);
        self
    }

    /// Inject faults: wrap every link in the given seeded, deterministic
    /// fault plan and route all traffic through the self-healing
    /// transport (sequence numbers, acks, retransmission, log-replay
    /// crash recovery). With no plan, evaluation runs the pristine 1986
    /// channel model with zero transport overhead.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Engine {
        self.fault_plan = Some(plan);
        self
    }

    /// Enable or disable crash recovery (default: enabled). With
    /// recovery disabled, a fault-plan crash aborts evaluation with
    /// [`RuntimeError::LinkDown`] instead of replaying the node's log.
    pub fn with_recovery(mut self, recovery: bool) -> Engine {
        self.recovery = recovery;
        self
    }

    /// The program under evaluation.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The EDB.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Build the rule/goal graph (exposed for inspection and for the
    /// graph-size experiment E8).
    pub fn build_graph(&self) -> Result<RuleGoalGraph, EngineError> {
        Ok(RuleGoalGraph::build(&self.program, &self.db, self.sip)?)
    }

    /// Statically verify and compile the program: run the program lints
    /// against the EDB, build the rule/goal graph, then run the graph and
    /// protocol lints over the compiled artifact. Any deny-level
    /// diagnostic aborts with [`EngineError::Lint`] — compilation returns
    /// typed errors, never panics. Surviving warnings ride along in
    /// [`Compiled::warnings`].
    pub fn compile(&self) -> Result<Compiled, EngineError> {
        let mut diags = mp_lint::program::lint_program(&self.program, Some(&self.db), None);
        // Stratum inference gates alongside the rule-local lints: an
        // unstratifiable program (MP009/MP010) has no perfect model to
        // evaluate, so it is rejected here with the same typed error.
        if self.stratify {
            let (_, strat) = mp_analyze::stratify(&self.program, None);
            diags.extend(strat);
        }
        mp_lint::sort_diagnostics(&mut diags);
        if diags.iter().any(Diagnostic::is_deny) {
            return Err(EngineError::Lint(diags));
        }
        // The deny-level program lints subsume `validate`, so `build`
        // only fails on resource limits past this point.
        let graph = self.build_graph()?;
        // Defense in depth: the compiled artifact itself must satisfy the
        // paper's structural theorems. On a correct compiler these passes
        // are silent; a regression surfaces as a typed error here instead
        // of a wrong answer or a hang at runtime.
        diags.extend(mp_lint::graph::lint_graph(&graph));
        diags.extend(mp_lint::protocol::lint_protocol(&ProtocolView::of(&graph)));
        // MP106 is deployment advice (graph size vs this machine's
        // hardware threads → the --workers knob), not an artifact check,
        // so it lives here rather than in `lint_graph`.
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        diags.extend(mp_lint::graph::lint_parallelism(graph.len(), parallelism));
        // MP107 likewise: whether this *run* is resource-governed is
        // engine configuration, not an artifact property.
        let recursive = graph.scc().nontrivial_components().next().is_some();
        let has_resource_budget =
            self.budget.max_messages.is_some() || self.budget.max_bytes.is_some();
        diags.extend(mp_lint::graph::lint_budget(
            graph.len(),
            recursive,
            has_resource_budget,
            self.budget.mailbox_bound.is_some(),
        ));
        if diags.iter().any(Diagnostic::is_deny) {
            mp_lint::sort_diagnostics(&mut diags);
            return Err(EngineError::Lint(diags));
        }

        // Abstract interpretation over the verified artifact: sort
        // inference, dead-rule detection, cardinality/partition planning.
        // Its MP4xx findings are all warnings and ride along with the
        // lint output.
        let analysis = mp_analyze::analyze(
            &self.program,
            &self.db,
            &graph,
            None,
            &mp_analyze::AnalyzeOptions::default(),
        );
        diags.extend(analysis.diagnostics.iter().cloned());
        mp_lint::sort_diagnostics(&mut diags);

        // Apply the pruning for real: dead rules and their unreachable
        // subtrees never become network nodes. Soundness rests on the
        // sort abstraction over-approximating the least model; the
        // re-lint below is defense in depth — the pruned artifact must
        // still satisfy the structural and protocol theorems.
        let (graph, pruned_nodes, pruned_rules) = match self
            .analysis
            .then(|| analysis.pruned_graph(&graph))
            .flatten()
        {
            Some(pruned) => {
                let mut post = mp_lint::graph::lint_graph(&pruned);
                post.extend(mp_lint::protocol::lint_protocol(&ProtocolView::of(&pruned)));
                // Warn-level findings on the pruned graph are re-runs of
                // advice already reported above; only a deny (a structural
                // theorem violated by `retain`) aborts.
                if post.iter().any(Diagnostic::is_deny) {
                    mp_lint::sort_diagnostics(&mut post);
                    return Err(EngineError::Lint(post));
                }
                (pruned, analysis.pruned_nodes, analysis.pruned_rules)
            }
            None => (graph, 0, 0),
        };
        // MP108 is checked against the *final* (post-pruning) artifact —
        // the same graph the shard plan is built from — so the warning
        // tracks what evaluation will actually do, not what analysis saw
        // before dead rules were removed.
        if self.shards > 1 {
            let parts = mp_analyze::plan::partition_keys(&graph);
            let any_fan_out = mp_analyze::shard_fan_outs(&graph, &parts, self.shards)
                .iter()
                .any(|&f| f > 1);
            diags.extend(mp_lint::graph::lint_sharding(self.shards, any_fan_out));
            mp_lint::sort_diagnostics(&mut diags);
        }
        Ok(Compiled {
            graph,
            warnings: diags,
            analysis,
            pruned_nodes,
            pruned_rules,
        })
    }

    /// Build the shard plan for a compiled (post-pruning) graph: the
    /// per-node fan-out from the partition-key analysis of the final
    /// artifact, clamped to 1 for every node the router cannot key.
    fn shard_plan(&self, graph: &RuleGoalGraph) -> ShardPlan {
        let parts = mp_analyze::plan::partition_keys(graph);
        ShardPlan {
            shards: self.shards,
            fan_out: mp_analyze::shard_fan_outs(graph, &parts, self.shards),
        }
    }

    /// Evaluate the query.
    ///
    /// A negation-free, aggregate-free program runs as a single
    /// message-passing network. A program that uses `!` or an aggregate
    /// runs as a *pipeline* of such networks, one per stratum of the
    /// [`mp_analyze::StratumPlan`]: each stratum's fixpoint is sealed by
    /// the §3.2 quiescence barrier and its answers become EDB facts for
    /// the strata above it (the perfect-model semantics). One budget
    /// spans all strata; [`Stats::strata_evaluated`] counts the runs.
    pub fn evaluate(&self) -> Result<QueryResult, EngineError> {
        if mp_analyze::uses_negation_or_aggregates(&self.program) {
            self.evaluate_staged()
        } else {
            self.evaluate_direct()
        }
    }

    /// Evaluate as a single engine run, with negated subgoals compiled
    /// into antijoin filters against the (already materialized) EDB.
    fn evaluate_direct(&self) -> Result<QueryResult, EngineError> {
        let compiled = self.compile()?;
        let (pruned_nodes, pruned_rules) = (compiled.pruned_nodes, compiled.pruned_rules);
        let graph = compiled.graph;
        let graph_nodes = graph.len();
        let mut network = Network::compile_sharded(&graph, &self.db, &self.shard_plan(&graph));
        network.set_batching(self.batching);
        network.set_batch_max(self.batch_size);
        match self.runtime {
            RuntimeKind::Sim(schedule) => {
                let sim = SimRuntime {
                    schedule,
                    max_steps: self.budget.max_steps,
                    trace: self.trace,
                    fault_plan: self.fault_plan.clone(),
                    recovery: self.recovery,
                    budget: self.budget.clone(),
                    cancel: self.cancel.clone(),
                };
                let out = sim.run(&mut network)?;
                let mut stats = out.stats;
                stats.pruned_nodes = pruned_nodes as u64;
                stats.pruned_rules = pruned_rules as u64;
                stats.strata_evaluated = 1;
                Ok(QueryResult {
                    answers: out.answers,
                    stats,
                    graph_nodes,
                    trace: out.trace,
                    events: out.events,
                    engine_ends: out.engine_ends,
                    post_end_answers: out.post_end_answers,
                })
            }
            RuntimeKind::Threads => {
                let rt = ThreadRuntime {
                    timeout: self.budget.deadline,
                    fault_plan: self.fault_plan.clone(),
                    recovery: self.recovery,
                    trace: self.trace,
                    workers: self.workers,
                    budget: self.budget.clone(),
                    cancel: self.cancel.clone(),
                };
                let out = rt.run(network)?;
                let mut stats = out.stats;
                stats.pruned_nodes = pruned_nodes as u64;
                stats.pruned_rules = pruned_rules as u64;
                stats.strata_evaluated = 1;
                Ok(QueryResult {
                    answers: out.answers,
                    stats,
                    graph_nodes,
                    trace: None,
                    events: out.events,
                    engine_ends: out.engine_ends,
                    post_end_answers: out.post_end_answers,
                })
            }
        }
    }

    /// A clone of this engine pointed at a sub-program over the staged
    /// working database, with whatever budget is left for the pipeline.
    fn sub_engine(&self, program: Program, db: &Database, budget: QueryBudget) -> Engine {
        let mut sub = self.clone();
        sub.program = program;
        sub.db = db.clone();
        sub.budget = budget;
        sub
    }

    /// The budget remaining after `spent`, for the next pipeline run:
    /// the wall-clock deadline shrinks by elapsed time, the step and
    /// logical-message budgets by what earlier strata consumed — so one
    /// budget spans the whole pipeline and a runaway stratum trips the
    /// same typed errors a flat run would.
    fn remaining_budget(&self, started: Instant, spent: &Stats) -> QueryBudget {
        let mut b = self.budget.clone();
        b.max_steps = b.max_steps.saturating_sub(spent.messages_processed);
        b.deadline = b.deadline.saturating_sub(started.elapsed());
        b.max_messages = b
            .max_messages
            .map(|m| m.saturating_sub(spent.logical_messages()));
        b
    }

    /// Evaluate stratum by stratum (the staged pipeline).
    ///
    /// Stratum `s` runs as ordinary engine evaluations over a working
    /// database holding the strata below it: aggregate predicates of the
    /// stratum are materialized first (their bodies are strictly
    /// lower-stratum, so the fold sees complete extensions), then every
    /// stratum-`s` predicate some higher stratum reads is materialized
    /// through a synthesized `goal(V..) :- p(V..)` query. The final
    /// stratum is the original query; its result carries the merged
    /// stats of the whole pipeline. Traces and events, when enabled,
    /// cover the final stratum's run.
    fn evaluate_staged(&self) -> Result<QueryResult, EngineError> {
        let started = Instant::now();
        // Full-program static gate: MP0xx program lints, MP009–MP012,
        // graph/protocol lints, and the analysis warnings.
        self.compile()?;
        let (plan, mut strat_diags) = mp_analyze::stratify(&self.program, None);
        if strat_diags.iter().any(Diagnostic::is_deny) {
            // Only reachable with the compile-time gate disabled via
            // `with_stratification(false)`: staging still refuses to
            // evaluate a program with no perfect model.
            mp_lint::sort_diagnostics(&mut strat_diags);
            return Err(EngineError::Lint(strat_diags));
        }

        let deps = DependencyAnalysis::of(&self.program);
        let relevant = deps.relevant_to_goal();
        let goal_stratum = plan.stratum(&Program::goal_pred());
        let mut working_db = self.db.clone();
        let mut spent = Stats::default();

        for s in 0..=goal_stratum {
            // Aggregate predicates of this stratum first: same-stratum
            // rules may read them positively, and MP010 guarantees their
            // bodies look strictly down.
            for r in self.program.rules.iter().filter(|r| {
                r.agg.is_some()
                    && plan.stratum(&r.head.pred) == s
                    && relevant.contains(&r.head.pred)
            }) {
                let (stats, tuples) =
                    self.materialize_aggregate(r, &working_db, started, &spent)?;
                spent.merge(&stats);
                for t in tuples {
                    working_db.insert(r.head.pred.clone(), t)?;
                }
            }

            // The stratum's ordinary rules (aggregate rules became EDB
            // facts above; lower strata were materialized earlier).
            let stratum_rules: Vec<Rule> = self
                .program
                .rules
                .iter()
                .filter(|r| r.agg.is_none() && plan.stratum(&r.head.pred) == s)
                .cloned()
                .collect();

            if s == goal_stratum {
                let sub = Program {
                    rules: stratum_rules,
                    facts: Vec::new(),
                };
                let eng = self.sub_engine(sub, &working_db, self.remaining_budget(started, &spent));
                let mut out = eng.evaluate_direct()?;
                out.stats.merge(&spent);
                return Ok(out);
            }

            // Materialize every stratum-`s` predicate a higher stratum
            // reads (positively or under negation) into the working EDB.
            let defined_here: BTreeSet<&Predicate> =
                stratum_rules.iter().map(|r| &r.head.pred).collect();
            let mut needed: Vec<(Predicate, usize)> = Vec::new();
            for r in &self.program.rules {
                if plan.stratum(&r.head.pred) <= s {
                    continue;
                }
                for a in r.body.iter().chain(r.neg.iter()) {
                    if defined_here.contains(&a.pred)
                        && relevant.contains(&a.pred)
                        && !needed.iter().any(|(p, _)| *p == a.pred)
                    {
                        needed.push((a.pred.clone(), a.terms.len()));
                    }
                }
            }
            needed.sort();
            // Every needed predicate is computed from the same sealed
            // snapshot; answers land in the working EDB only once the
            // stratum is done. Inserting mid-stratum would make an
            // already-materialized predicate EDB *and* IDB for its
            // siblings' runs — exactly the §1 overlap compile() denies.
            let mut sealed: Vec<(Predicate, Vec<Tuple>)> = Vec::new();
            for (pred, arity) in needed {
                let vars: Vec<Term> = (0..arity)
                    .map(|i| Term::Var(Var::new(format!("V{i}"))))
                    .collect();
                let query = Rule::new(
                    Atom::new(Program::goal_pred(), vars.clone()),
                    vec![Atom::new(pred.clone(), vars)],
                );
                let mut rules = stratum_rules.clone();
                rules.push(query);
                let sub = Program {
                    rules,
                    facts: Vec::new(),
                };
                let eng = self
                    .sub_engine(sub, &working_db, self.remaining_budget(started, &spent))
                    .with_trace(false);
                let out = eng.evaluate_direct()?;
                spent.merge(&out.stats);
                sealed.push((pred, out.answers.iter().cloned().collect()));
            }
            for (pred, tuples) in sealed {
                for t in tuples {
                    working_db.insert(pred.clone(), t)?;
                }
            }
        }
        unreachable!("the final stratum returns above");
    }

    /// Materialize one aggregate rule over the working database: run its
    /// body as a plain query exposing the head's variables, then fold
    /// with the shared aggregate kernel. Returns the sub-run's stats and
    /// the full-arity head tuples (constants re-inserted, the fold value
    /// at the aggregate position).
    fn materialize_aggregate(
        &self,
        r: &Rule,
        db: &Database,
        started: Instant,
        spent: &Stats,
    ) -> Result<(Stats, Vec<Tuple>), EngineError> {
        let agg = r.agg.as_ref().expect("caller filters on aggregate rules");
        // Distinct head variables in first-occurrence order — the
        // grouping keys plus the fold variable (MP012 keeps them apart).
        let mut head_vars: Vec<Var> = Vec::new();
        for t in &r.head.terms {
            if let Term::Var(v) = t {
                if !head_vars.contains(v) {
                    head_vars.push(v.clone());
                }
            }
        }
        let mut body_rule = r.clone();
        body_rule.agg = None;
        body_rule.head = Atom::new(
            Program::goal_pred(),
            head_vars.iter().cloned().map(Term::Var).collect(),
        );
        let sub = Program {
            rules: vec![body_rule],
            facts: Vec::new(),
        };
        let out = self
            .sub_engine(sub, db, self.remaining_budget(started, spent))
            .with_trace(false)
            .evaluate_direct()?;

        let agg_idx = head_vars
            .iter()
            .position(|v| *v == agg.var)
            .expect("the fold variable appears at the aggregate position");
        let group: Vec<usize> = (0..head_vars.len()).filter(|&i| i != agg_idx).collect();
        let folded = mp_storage::ops::aggregate(&out.answers, &group, agg_idx, agg.func)?;

        let group_vars: Vec<&Var> = group.iter().map(|&i| &head_vars[i]).collect();
        let mut tuples = Vec::with_capacity(folded.len());
        for row in folded.iter() {
            let tuple: Tuple = r
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) if *v == agg.var => row[group_vars.len()],
                    Term::Var(v) => {
                        row[group_vars
                            .iter()
                            .position(|g| *g == v)
                            .expect("grouping variables index the fold output")]
                    }
                })
                .collect();
            tuples.push(tuple);
        }
        Ok((out.stats, tuples))
    }

    /// Deterministically re-execute a recorded run in the simulator,
    /// driving node activation by the trace's delivery order (see
    /// [`mp_trace::Trace::activation_order`]). The replay runs the
    /// pristine channel model — faults from the recorded run are *not*
    /// re-injected, because the trace already reflects the logical
    /// (exactly-once, per-link FIFO) history the recovery transport
    /// enforced. Answers and logical message counters are
    /// schedule-invariant (Thm 3.1/4.1), so a replay of any valid trace
    /// — including one recorded under chaos on the threaded runtime —
    /// reproduces them exactly; the replay's own event trace rides along
    /// in [`QueryResult::events`].
    pub fn replay(&self, recorded: &mp_trace::Trace) -> Result<QueryResult, EngineError> {
        let graph = self.compile()?.graph;
        let graph_nodes = graph.len();
        let mut network = Network::compile_sharded(&graph, &self.db, &self.shard_plan(&graph));
        network.set_batching(self.batching);
        network.set_batch_max(self.batch_size);
        let sim = SimRuntime {
            schedule: Schedule::Fifo,
            max_steps: self.budget.max_steps,
            trace: self.trace,
            fault_plan: None,
            recovery: self.recovery,
            budget: self.budget.clone(),
            cancel: self.cancel.clone(),
        };
        let activations = recorded.activation_order();
        let out = sim.run_replay(
            &mut network,
            std::iter::once(mp_storage::Tuple::unit()),
            &activations,
        )?;
        Ok(QueryResult {
            answers: out.answers,
            stats: out.stats,
            graph_nodes,
            trace: out.trace,
            events: out.events,
            engine_ends: out.engine_ends,
            post_end_answers: out.post_end_answers,
        })
    }
}

/// Convenience: parse, load inline facts, and evaluate with defaults.
pub fn evaluate_str(source: &str) -> Result<QueryResult, EngineError> {
    let program = mp_datalog::parser::parse_program(source)?;
    Engine::new(program, Database::new()).evaluate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datalog::parser::parse_program;
    use mp_storage::{tuple, Tuple};

    fn tc_engine(edges: &[(i64, i64)], from: i64) -> Engine {
        let program = parse_program(&format!(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path({from}, Z)."
        ))
        .unwrap();
        let mut db = Database::new();
        for &(a, b) in edges {
            db.insert("edge", tuple![a, b]).unwrap();
        }
        Engine::new(program, db)
    }

    fn rows(r: &Relation) -> Vec<Tuple> {
        r.sorted_rows()
    }

    #[test]
    fn nonrecursive_join() {
        let out = evaluate_str(
            "parent(\"ann\", \"bob\").
             parent(\"bob\", \"cy\").
             parent(\"ann\", \"abe\").
             grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
             ?- grandparent(\"ann\", Z).",
        )
        .unwrap();
        assert_eq!(rows(&out.answers), vec![tuple!["cy"]]);
    }

    #[test]
    fn linear_transitive_closure_chain() {
        let edges: Vec<(i64, i64)> = (0..10).map(|i| (i, i + 1)).collect();
        let out = tc_engine(&edges, 0).evaluate().unwrap();
        let expect: Vec<Tuple> = (1..=10).map(|i| tuple![i]).collect();
        assert_eq!(rows(&out.answers), expect);
    }

    #[test]
    fn transitive_closure_with_cycle_terminates() {
        // 0→1→2→0 plus 2→3: reachable from 0 = {0,1,2,3}.
        let out = tc_engine(&[(0, 1), (1, 2), (2, 0), (2, 3)], 0)
            .evaluate()
            .unwrap();
        assert_eq!(
            rows(&out.answers),
            vec![tuple![0], tuple![1], tuple![2], tuple![3]]
        );
    }

    #[test]
    fn nonlinear_transitive_closure() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), path(Y, Z).
             ?- path(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..6 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let out = Engine::new(program, db).evaluate().unwrap();
        let expect: Vec<Tuple> = (1..=6).map(|i| tuple![i]).collect();
        assert_eq!(rows(&out.answers), expect);
    }

    #[test]
    fn paper_p1_program() {
        // P1: p(X,Y) :- p(X,V), q(V,W), p(W,Y);  p(X,Y) :- r(X,Y).
        let program = parse_program(
            "p(X, Y) :- p(X, V), q(V, W), p(W, Y).
             p(X, Y) :- r(X, Y).
             ?- p(1, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        // r: 1→2, 3→4, 4→5;   q: 2→3, 5→6 (q links p-chains).
        for (a, b) in [(1, 2), (3, 4), (4, 5)] {
            db.insert("r", tuple![a, b]).unwrap();
        }
        for (a, b) in [(2, 3), (5, 4)] {
            db.insert("q", tuple![a, b]).unwrap();
        }
        let out = Engine::new(program, db).evaluate().unwrap();
        // p(1,2) via r. p(1,Y) via p(1,2), q(2,3), p(3,Y): p(3,4), p(3,5)
        // (p(3,5) via p(3,4),q? no q(4,·)... p(3,5) needs p(3,V),q(V,W),
        // p(W,5): V=4? q(4,·) empty. So p(3,Y) = {4, 5? via r only: r(3,4),
        // r(4,5) gives p(4,5); p(3,5) via p(3,4),q(4,W)? empty}. Hence
        // p(1,Y) ⊇ {2} ∪ {4}. Also deeper: p(1,5)? needs q chains.
        // The oracle below is the semi-naive fixpoint computed by hand:
        // p = r ∪ {p(x,y) : p(x,v), q(v,w), p(w,y)}:
        //   base: (1,2),(3,4),(4,5)
        //   p(1,·): p(1,2), q(2,3), p(3,4) → p(1,4);
        //           then p(1,4), q? q(4,·) empty.
        //           p(1,2), q(2,3), p(3,·): p(3,4) → (1,4).
        //   p(3,·): p(3,4), q(4,·) empty → nothing new.
        //   p(4,·): p(4,5), q(5,4), p(4,5) → p(4,5) (already).
        // Final: p(1,Z) = {2, 4}.
        assert_eq!(rows(&out.answers), vec![tuple![2], tuple![4]]);
    }

    #[test]
    fn same_generation_nonlinear() {
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
             ?- sg(\"a\", Y).",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [("a", "m1"), ("b", "m2")] {
            db.insert("up", tuple![a, b]).unwrap();
        }
        db.insert("flat", tuple!["m1", "m2"]).unwrap();
        for (a, b) in [("m2", "c"), ("m1", "d")] {
            db.insert("down", tuple![a, b]).unwrap();
        }
        let out = Engine::new(program, db).evaluate().unwrap();
        // sg(a,Y): up(a,m1), sg(m1,V), down(V,Y): sg(m1,m2) via flat →
        // down(m2,c) → sg(a,c).
        assert_eq!(rows(&out.answers), vec![tuple!["c"]]);
    }

    #[test]
    fn mutual_recursion() {
        let program = parse_program(
            "odd(X, Y) :- edge(X, Y).
             odd(X, Y) :- edge(X, U), even(U, Y).
             even(X, Y) :- edge(X, U), odd(U, Y).
             ?- odd(0, Z).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..5 {
            db.insert("edge", tuple![i, i + 1]).unwrap();
        }
        let out = Engine::new(program, db).evaluate().unwrap();
        // Nodes at odd distance from 0: 1, 3, 5.
        assert_eq!(rows(&out.answers), vec![tuple![1], tuple![3], tuple![5]]);
    }

    #[test]
    fn empty_edb_yields_empty_answer_and_terminates() {
        let out = tc_engine(&[], 0).evaluate().unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn no_matching_tuples() {
        let out = tc_engine(&[(5, 6)], 0).evaluate().unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn constants_in_rule_heads() {
        let out = evaluate_str(
            "e(1). e(2).
             special(1, \"one\") :- e(1).
             special(2, \"two\") :- e(2).
             ?- special(X, N).",
        )
        .unwrap();
        assert_eq!(rows(&out.answers), vec![tuple![1, "one"], tuple![2, "two"]]);
    }

    #[test]
    fn existential_projection() {
        // W is existential in the subgoal: one answer per X.
        let out = evaluate_str(
            "q(1, 10). q(1, 11). q(2, 20).
             p(X) :- q(X, W).
             ?- p(X).",
        )
        .unwrap();
        assert_eq!(rows(&out.answers), vec![tuple![1], tuple![2]]);
    }

    #[test]
    fn repeated_variables_in_subgoal() {
        let out = evaluate_str(
            "e(1, 1). e(1, 2). e(3, 3).
             refl(X) :- e(X, X).
             ?- refl(X).",
        )
        .unwrap();
        assert_eq!(rows(&out.answers), vec![tuple![1], tuple![3]]);
    }

    #[test]
    fn boolean_query() {
        let out = evaluate_str(
            "e(1, 2).
             connected :- e(1, 2).
             ?- connected.",
        )
        .unwrap();
        assert_eq!(out.answers.len(), 1);
        assert_eq!(out.answers.rows()[0], Tuple::unit());
    }

    #[test]
    fn boolean_query_false() {
        let out = evaluate_str(
            "e(1, 2).
             connected :- e(2, 1).
             ?- connected.",
        )
        .unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn existential_var_shared_across_subgoals_still_joins() {
        // Regression: W appears in the head only existentially (via a
        // projecting caller) AND in two subgoals. Early versions classed
        // it `e` in both subgoals, losing the cross-subgoal join and
        // deriving from thin air (found by differential fuzzing,
        // generator seed 424).
        let out = evaluate_str(
            "e0(5, 5).
             e1(7, 1).
             p(X) :- e0(X, X), e1(X, W).
             ?- p(Q).",
        )
        .unwrap();
        // Only self-loop is 5, but e1 has no 5 in column 0: p is empty.
        assert!(out.answers.is_empty());

        let out2 = evaluate_str(
            "e0(5, 5).
             e1(5, 1).
             p(X) :- e0(X, X), e1(X, W).
             ?- p(Q).",
        )
        .unwrap();
        assert_eq!(rows(&out2.answers), vec![tuple![5]]);

        // The same shape one level down: q's caller only checks
        // existence, making q's head argument class e.
        let out3 = evaluate_str(
            "a(1, 2). b(3, 4).
             q(V) :- a(V, Y), b(V, Z).
             yes :- q(V).
             ?- yes.",
        )
        .unwrap();
        assert!(out3.answers.is_empty(), "a and b share no V");
    }

    #[test]
    fn all_sips_agree() {
        let edges: Vec<(i64, i64)> = (0..8).map(|i| (i, (i * 3 + 1) % 8)).collect();
        let mut results = Vec::new();
        for sip in SipKind::ALL {
            let out = tc_engine(&edges, 0)
                .with_sip(sip)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} failed: {e}", sip.name()));
            results.push((sip, rows(&out.answers)));
        }
        for w in results.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0.name(), w[1].0.name());
        }
    }

    #[test]
    fn random_schedules_agree_with_fifo() {
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 1), (0, 4)];
        let fifo = tc_engine(&edges, 0).evaluate().unwrap();
        for seed in 0..20 {
            let out = tc_engine(&edges, 0)
                .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
                .evaluate()
                .unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
            assert_eq!(
                rows(&out.answers),
                rows(&fifo.answers),
                "seed {seed} diverged"
            );
        }
    }

    #[test]
    fn threaded_runtime_agrees() {
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
        let fifo = tc_engine(&edges, 0).evaluate().unwrap();
        let out = tc_engine(&edges, 0)
            .with_runtime(RuntimeKind::Threads)
            .evaluate()
            .unwrap();
        assert_eq!(rows(&out.answers), rows(&fifo.answers));
    }

    #[test]
    fn trace_records_messages() {
        let out = tc_engine(&[(0, 1)], 0).with_trace(true).evaluate().unwrap();
        let trace = out.trace.unwrap();
        assert!(!trace.is_empty());
        assert!(trace
            .iter()
            .any(|m| matches!(m.payload, crate::msg::Payload::Answer { .. })));
    }

    #[test]
    fn stats_are_plausible() {
        let out = tc_engine(&[(0, 1), (1, 2)], 0).evaluate().unwrap();
        let s = &out.stats;
        assert!(s.tuple_requests > 0);
        assert!(s.answers >= 2);
        assert!(s.messages_processed > 0);
        assert!(s.total_messages() >= s.work_messages());
        assert!(out.graph_nodes > 4);
    }

    #[test]
    fn compile_rejects_unsafe_program_with_typed_diagnostics() {
        let program = parse_program("p(X, Y) :- e(X). e(1). ?- p(1, Z).").unwrap();
        let err = Engine::new(program, Database::new()).compile().unwrap_err();
        match err {
            EngineError::Lint(diags) => {
                assert!(diags.iter().any(|d| d.code == mp_lint::Code::UnsafeRule));
                assert!(diags[0].is_deny(), "denies sort first");
            }
            other => panic!("expected a lint error, got {other}"),
        }
    }

    #[test]
    fn evaluate_returns_lint_error_instead_of_panicking() {
        // Facts asserted for an IDB predicate: before the lint layer this
        // surfaced as a GraphError from validate; now it is a structured
        // diagnostic either way, and evaluation never panics.
        let program = parse_program("p(1). p(X) :- e(X). e(2). ?- p(X).").unwrap();
        let err = Engine::new(program, Database::new())
            .evaluate()
            .unwrap_err();
        let EngineError::Lint(diags) = err else {
            panic!("expected a lint error, got {err}");
        };
        assert!(diags.iter().any(|d| d.code == mp_lint::Code::EdbIdbOverlap));
    }

    #[test]
    fn compile_surfaces_warnings_on_clean_programs() {
        let program = parse_program(
            "p(X) :- e(X).
             dead(X) :- e(X).
             e(1).
             ?- p(X).",
        )
        .unwrap();
        let compiled = Engine::new(program, Database::new()).compile().unwrap();
        assert!(compiled
            .warnings
            .iter()
            .any(|d| d.code == mp_lint::Code::UnreachablePredicate));
        assert!(compiled.warnings.iter().all(|d| !d.is_deny()));
        assert!(!compiled.graph.is_empty());
    }

    #[test]
    fn compiled_graphs_pass_their_own_lints() {
        // End-to-end: the artifacts the compiler emits satisfy the very
        // theorems the lints encode, on a recursive program with a
        // nontrivial strong component.
        let engine = tc_engine(&[(0, 1), (1, 0)], 0);
        let compiled = engine.compile().unwrap();
        assert!(mp_lint::graph::lint_graph(&compiled.graph).is_empty());
        let view = mp_lint::protocol::ProtocolView::of(&compiled.graph);
        assert!(mp_lint::protocol::lint_protocol(&view).is_empty());
    }

    #[test]
    fn divergence_guard_fires() {
        let err = tc_engine(&[(0, 1), (1, 0)], 0)
            .with_max_steps(5)
            .evaluate()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Runtime(RuntimeError::Diverged { .. })
        ));
    }
}
