//! Fault injection and the self-healing link transport.
//!
//! The Fig 2 message protocol and the Thm 3.1 termination argument both
//! assume what §1.2 calls "operating-system message queues": reliable,
//! FIFO, exactly-once channels between never-crashing processes. A
//! production deployment of the process network cannot assume any of
//! that, so this module provides the two halves of the robustness story:
//!
//! * [`FaultPlan`] — a *seeded, deterministic* adversary that can drop,
//!   duplicate, delay (and thereby reorder), and corrupt any message on
//!   any link, and crash individual node processes at configured points;
//! * [`SenderLink`] / [`ReceiverLink`] — a per-link reliable-delivery
//!   layer (monotone sequence numbers, cumulative acks, retransmission,
//!   duplicate suppression, reorder buffering) that *restores* the
//!   reliable-FIFO-exactly-once channel abstraction the paper's protocol
//!   requires, so Thm 3.1's conclusions survive the adversary.
//!
//! Fault decisions are pure functions of `(seed, link, seq, attempt)` —
//! no hidden RNG state — so a fault plan injects the *same* faults on the
//! same logical message stream regardless of scheduling, in both the
//! simulator and the threaded runtime.
//!
//! The transport frames one [`Msg`] per sequence number, whatever its
//! payload. Message batching therefore composes with this layer for
//! free: a `TupleRequestBatch`/`AnswerBatch`/`EndTupleRequestBatch` is
//! one frame — one seq, one ack, one checksum, one drop/duplicate/delay
//! decision — amortizing transport overhead over every tuple it
//! carries, and a dropped batch is retransmitted whole so per-arc FIFO
//! and exactly-once delivery hold for the batch exactly as for a scalar
//! message.
//!
//! Crash/recovery semantics are write-ahead-log style (see DESIGN.md):
//! a crash destroys a node's volatile computation state (temporary
//! relations, termination-protocol state, reorder buffers) while the
//! durable per-node message log and the transport send buffers survive,
//! as they would on disk. Recovery replays the log to rebuild the
//! temporary relations, resets the protocol state, bumps the node's
//! *epoch* so stale idleness-wave replies are rejected, and announces the
//! rebirth to the node's BFST parent so an in-flight wave aborts instead
//! of deadlocking.

use crate::msg::Msg;
use std::collections::BTreeMap;

/// One scheduled node crash: the process loses its volatile state right
/// after it has processed its `after_processed`-th message (counting
/// from the start of the run, across restarts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// The node to crash.
    pub node: usize,
    /// Crash fires when the node's processed-message count reaches this.
    pub after_processed: u64,
}

/// A seeded, deterministic fault-injection plan applied to every link of
/// the process network (including the links to and from the engine).
///
/// Rates are probabilities in `[0, 1]`, evaluated independently per
/// message copy by hashing `(seed, from, to, seq, attempt)` — see
/// [`FaultPlan::fate`]. Retransmitted copies get fresh rolls (the
/// `attempt` counter), so a bounded drop rate cannot drop a message
/// forever.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Probability a message copy is silently dropped on the wire.
    pub drop: f64,
    /// Probability a message is duplicated (a second copy is injected).
    pub duplicate: f64,
    /// Probability a message copy is delayed (delivered out of order).
    pub delay: f64,
    /// Maximum delay, in scheduler steps (simulator) or milliseconds
    /// (threaded runtime). The actual delay is hash-distributed in
    /// `[1, max_delay]`.
    pub max_delay: u64,
    /// Probability a message copy is corrupted in flight. Corruption is
    /// detected by the receiver (checksum model) and the copy discarded;
    /// with recovery enabled retransmission repairs it.
    pub corrupt: f64,
    /// Scheduled node crashes (at most a handful; each triggers the
    /// log-replay recovery path).
    pub crashes: Vec<CrashPoint>,
    /// Retransmission cap per unacked message before the transport gives
    /// up with [`RuntimeError::RetransmitExhausted`]
    /// (`crate::runtime::RuntimeError`). Only reachable at extreme drop
    /// rates.
    pub max_retries: u32,
    /// Idle time (steps or milliseconds, as for `max_delay`) after which
    /// unacked messages are retransmitted.
    pub retransmit_after: u64,
}

impl Default for FaultPlan {
    /// A plan with every fault rate zero — useful to exercise the
    /// transport machinery (sequence numbers, acks) without any faults,
    /// e.g. to measure that its overhead on the clean path is nil.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay: 8,
            corrupt: 0.0,
            crashes: Vec::new(),
            max_retries: 64,
            retransmit_after: 256,
        }
    }
}

impl FaultPlan {
    /// The standard chaos preset used by tests and the chaos bench: 5%
    /// drop, 5% duplicate, 10% delay (≤ 8 steps), 2% corruption, no
    /// crashes. Well inside the envelope Thm 3.1 must survive.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: 0.05,
            duplicate: 0.05,
            delay: 0.10,
            corrupt: 0.02,
            ..FaultPlan::default()
        }
    }

    /// Add a scheduled crash.
    pub fn with_crash(mut self, node: usize, after_processed: u64) -> FaultPlan {
        self.crashes.push(CrashPoint {
            node,
            after_processed,
        });
        self
    }

    /// True when the plan can actually perturb anything.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.delay > 0.0
            || self.corrupt > 0.0
            || !self.crashes.is_empty()
    }

    /// Decide the fate of one message copy, purely from
    /// `(seed, from, to, seq, attempt)`.
    pub fn fate(&self, from: u64, to: u64, seq: u64, attempt: u32) -> Fate {
        let h = mix(self.seed)
            ^ mix(from.wrapping_add(0x9E37_79B9))
            ^ mix(to.wrapping_add(0x7F4A_7C15)).rotate_left(17)
            ^ mix(seq).rotate_left(31)
            ^ mix(attempt as u64).rotate_left(47);
        let dropped = roll(h, 1) < self.drop;
        let duplicated = !dropped && roll(h, 2) < self.duplicate;
        let corrupted = !dropped && roll(h, 3) < self.corrupt;
        let delay = if roll(h, 4) < self.delay {
            1 + (mix(h ^ 5) % self.max_delay.max(1))
        } else {
            0
        };
        Fate {
            dropped,
            duplicated,
            corrupted,
            delay,
        }
    }
}

/// The decided fate of one message copy on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fate {
    /// The copy vanishes.
    pub dropped: bool,
    /// A second copy is injected after this one.
    pub duplicated: bool,
    /// The copy arrives with a detectable checksum failure.
    pub corrupted: bool,
    /// Extra delivery delay (0 = on time).
    pub delay: u64,
}

impl Fate {
    /// The fate of a message on a fault-free link.
    pub fn clean() -> Fate {
        Fate {
            dropped: false,
            duplicated: false,
            corrupted: false,
            delay: 0,
        }
    }
}

/// SplitMix64 finalizer — the deterministic hash behind fault decisions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform roll in `[0, 1)` derived from hash `h` and a salt.
fn roll(h: u64, salt: u64) -> f64 {
    (mix(h ^ salt.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Sender half of one reliable link: assigns monotone sequence numbers
/// and holds every unacked message for retransmission. The buffer is
/// durable across receiver crashes (write-ahead semantics): whatever was
/// logically sent will eventually be delivered exactly once.
#[derive(Clone, Debug, Default)]
pub struct SenderLink {
    /// Next sequence number to assign.
    pub next_seq: u64,
    /// Sent but not yet cumulatively acked, by sequence number.
    pub unacked: BTreeMap<u64, Msg>,
    /// Timestamp (steps or ms) of the last send/retransmit activity.
    pub last_activity: u64,
    /// Consecutive retransmission rounds without an ack.
    pub retries: u32,
    /// Credit window: cap on frames in flight (transmitted but unacked).
    /// `None` = unlimited (the pre-governance behavior). Frames past the
    /// window stay queued in `unacked` and reach the wire when a
    /// cumulative ack slides the window — backpressure, not loss.
    pub window: Option<u64>,
    /// Sequence numbers below this have been handed to the wire at least
    /// once. Everything in `unacked` at or above it is *stalled*: queued
    /// by the window, never yet transmitted.
    pub wire_hi: u64,
}

impl SenderLink {
    /// Register a logical send; returns the assigned sequence number.
    pub fn send(&mut self, msg: Msg, now: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.insert(seq, msg);
        self.last_activity = now;
        seq
    }

    /// Apply a cumulative ack: everything below `upto` is delivered.
    pub fn ack_upto(&mut self, upto: u64) {
        let keep = self.unacked.split_off(&upto);
        if self.unacked.len() != keep.len() || !self.unacked.is_empty() {
            self.retries = 0;
        }
        self.unacked = keep;
    }

    /// True when a retransmission is due at `now`.
    pub fn due(&self, now: u64, retransmit_after: u64) -> bool {
        !self.unacked.is_empty() && now.saturating_sub(self.last_activity) >= retransmit_after
    }

    /// Oldest unacked sequence number — the window base.
    fn base(&self) -> u64 {
        self.unacked.keys().next().copied().unwrap_or(self.next_seq)
    }

    /// True when `seq` fits inside the current send window. Always true
    /// without a window; retransmission paths use this so a stalled
    /// frame is never forced onto the wire by a timer.
    pub fn in_window(&self, seq: u64) -> bool {
        match self.window {
            None => true,
            Some(w) => seq < self.base().saturating_add(w),
        }
    }

    /// Ask to transmit `seq` now (call right after [`SenderLink::send`]
    /// or when a retransmission timer picks it). True marks the frame as
    /// on the wire; false means the window is full — the frame stays
    /// queued and the caller should count a `credits_stalled` event.
    pub fn admit(&mut self, seq: u64) -> bool {
        let ok = self.in_window(seq);
        if ok {
            self.wire_hi = self.wire_hi.max(seq + 1);
        }
        ok
    }

    /// Stalled frames that the last cumulative ack just released into
    /// the window, oldest first; marks them transmitted. The caller
    /// puts each on the wire (first attempt).
    pub fn release(&mut self) -> Vec<(u64, Msg)> {
        let Some(w) = self.window else {
            return Vec::new();
        };
        let limit = self.base().saturating_add(w);
        let mut out = Vec::new();
        for (&seq, msg) in self.unacked.range(self.wire_hi..) {
            if seq >= limit {
                break;
            }
            out.push((seq, msg.clone()));
        }
        if let Some((s, _)) = out.last() {
            self.wire_hi = s + 1;
        }
        out
    }

    /// Frames currently stalled by the window (queued, never on the
    /// wire).
    pub fn stalled(&self) -> usize {
        self.unacked.range(self.wire_hi..).count()
    }
}

/// Receiver half of one reliable link: suppresses duplicates and
/// restores per-link FIFO order. `next_expected` is durable (it mirrors
/// the length of the durable delivery log); the reorder buffer is
/// volatile and cleared on crash — retransmission repopulates it.
#[derive(Clone, Debug, Default)]
pub struct ReceiverLink {
    /// The next in-order sequence number.
    pub next_expected: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    pub reorder: BTreeMap<u64, Msg>,
}

/// What [`ReceiverLink::accept`] did with a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Accepted {
    /// The frame (plus any reorder-buffered successors) is deliverable,
    /// in order.
    Deliver(Vec<Msg>),
    /// Already delivered — a transport-level duplicate; re-ack and drop.
    Duplicate,
    /// Out of order — buffered until the gap fills; ack not advanced.
    Buffered,
}

impl ReceiverLink {
    /// Accept one data frame.
    pub fn accept(&mut self, seq: u64, msg: Msg) -> Accepted {
        use std::cmp::Ordering;
        match seq.cmp(&self.next_expected) {
            Ordering::Less => Accepted::Duplicate,
            Ordering::Greater => {
                self.reorder.insert(seq, msg);
                Accepted::Buffered
            }
            Ordering::Equal => {
                let mut out = vec![msg];
                self.next_expected += 1;
                while let Some(m) = self.reorder.remove(&self.next_expected) {
                    out.push(m);
                    self.next_expected += 1;
                }
                Accepted::Deliver(out)
            }
        }
    }

    /// Crash: discard the volatile reorder buffer (unacked at the
    /// sender, so retransmission recovers the contents).
    pub fn clear_volatile(&mut self) {
        self.reorder.clear();
    }
}

/// Stable link-endpoint code for fault hashing.
pub fn endpoint_code(ep: crate::msg::Endpoint) -> u64 {
    match ep {
        crate::msg::Endpoint::Node(n) => n as u64,
        crate::msg::Endpoint::Engine => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Endpoint, Payload};

    fn msg(tag: u64) -> Msg {
        Msg {
            from: Endpoint::Node(0),
            to: Endpoint::Node(1),
            payload: Payload::EndRequest {
                wave: tag,
                epoch: 0,
            },
        }
    }

    #[test]
    fn fate_is_deterministic() {
        let plan = FaultPlan::seeded(42);
        for seq in 0..50 {
            assert_eq!(plan.fate(1, 2, seq, 0), plan.fate(1, 2, seq, 0));
        }
    }

    #[test]
    fn fate_varies_with_attempt() {
        // A dropped first attempt must not imply dropped retransmits:
        // over many (seq, attempt) pairs, fates differ.
        let plan = FaultPlan {
            drop: 0.5,
            ..FaultPlan::seeded(7)
        };
        let differs =
            (0..200).any(|seq| plan.fate(1, 2, seq, 0).dropped != plan.fate(1, 2, seq, 1).dropped);
        assert!(differs);
    }

    #[test]
    fn zero_rates_never_fault() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        for seq in 0..100 {
            assert_eq!(plan.fate(3, 4, seq, 0), Fate::clean());
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan {
            drop: 0.2,
            ..FaultPlan::default()
        };
        let dropped = (0..10_000)
            .filter(|&seq| plan.fate(0, 1, seq, 0).dropped)
            .count();
        assert!((1_500..2_500).contains(&dropped), "got {dropped}");
    }

    #[test]
    fn receiver_restores_fifo_and_suppresses_duplicates() {
        let mut rl = ReceiverLink::default();
        // 1 arrives before 0: buffered.
        assert_eq!(rl.accept(1, msg(1)), Accepted::Buffered);
        // 0 arrives: both become deliverable, in order.
        match rl.accept(0, msg(0)) {
            Accepted::Deliver(msgs) => {
                assert_eq!(msgs.len(), 2);
                assert!(matches!(
                    msgs[0].payload,
                    Payload::EndRequest { wave: 0, .. }
                ));
                assert!(matches!(
                    msgs[1].payload,
                    Payload::EndRequest { wave: 1, .. }
                ));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        // Replays of either are duplicates.
        assert_eq!(rl.accept(0, msg(0)), Accepted::Duplicate);
        assert_eq!(rl.accept(1, msg(1)), Accepted::Duplicate);
    }

    #[test]
    fn window_stalls_and_releases_in_order() {
        let mut sl = SenderLink {
            window: Some(2),
            ..SenderLink::default()
        };
        let s0 = sl.send(msg(0), 0);
        assert!(sl.admit(s0));
        let s1 = sl.send(msg(1), 0);
        assert!(sl.admit(s1));
        let s2 = sl.send(msg(2), 0);
        assert!(!sl.admit(s2), "third frame must stall on a window of 2");
        assert_eq!(sl.stalled(), 1);
        assert!(!sl.in_window(s2));
        // Ack of the first frame slides the window: the stalled frame is
        // released exactly once, in order.
        sl.ack_upto(1);
        let rel = sl.release();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].0, s2);
        assert_eq!(sl.stalled(), 0);
        assert!(sl.release().is_empty());
    }

    #[test]
    fn no_window_admits_everything() {
        let mut sl = SenderLink::default();
        for i in 0..100 {
            let s = sl.send(msg(i), 0);
            assert!(sl.admit(s));
        }
        assert_eq!(sl.stalled(), 0);
        assert!(sl.release().is_empty());
    }

    #[test]
    fn sender_retransmit_bookkeeping() {
        let mut sl = SenderLink::default();
        let s0 = sl.send(msg(0), 10);
        let s1 = sl.send(msg(1), 11);
        assert_eq!((s0, s1), (0, 1));
        assert!(!sl.due(11, 100));
        assert!(sl.due(200, 100));
        sl.ack_upto(1);
        assert_eq!(sl.unacked.len(), 1);
        sl.ack_upto(2);
        assert!(sl.unacked.is_empty());
        assert!(!sl.due(10_000, 100));
    }
}
