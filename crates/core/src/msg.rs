//! The message set (§3.1 and §3.2).

use mp_rulegoal::NodeId;
use mp_storage::Tuple;
use std::fmt;

/// A message endpoint: a graph node or the engine itself (the top-level
/// goal node's customer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// A rule/goal graph node.
    Node(NodeId),
    /// The engine driving the query.
    Engine,
}

impl Endpoint {
    /// The node id, if this endpoint is a node.
    pub fn node(self) -> Option<NodeId> {
        match self {
            Endpoint::Node(n) => Some(n),
            Endpoint::Engine => None,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Node(n) => write!(f, "#{n}"),
            Endpoint::Engine => write!(f, "engine"),
        }
    }
}

/// Message payloads. Since every subgoal occurrence has its own node, the
/// `(from, to)` pair identifies the arc a message travels on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    // ---- downward: customer → feeder (against the arcs) ----
    /// Open the stream on this arc; "triggers the beginning of
    /// computation and identifies the classes of the arguments" (§3.1).
    /// Classes are static here, so the message carries nothing.
    RelationRequest,
    /// One binding for all the feeder's class-`d` arguments. The unit
    /// tuple when the feeder's adornment has no `d` positions.
    TupleRequest {
        /// Values aligned with the feeder label's `d` positions.
        binding: Tuple,
    },
    /// A packaged set of tuple requests (§3.1 footnote 2: "a further
    /// enhancement would be to 'package' a set of related tuple
    /// requests, in case the node servicing the request can gain some
    /// efficiency of volume"). Semantically identical to sending each
    /// binding separately; sent when batching is enabled and one message
    /// produced several requests for the same arc.
    TupleRequestBatch {
        /// The bindings, each aligned with the feeder's `d` positions.
        bindings: Vec<Tuple>,
    },
    /// No further tuple requests will ever be sent on this arc.
    EndOfRequests,

    // ---- upward: feeder → customer (with the arcs) ----
    /// A derived tuple, aligned with the feeder label's transmitted
    /// (non-`e`) positions.
    Answer {
        /// The tuple.
        tuple: Tuple,
    },
    /// A packaged set of answers for one arc — the upward dual of
    /// [`Payload::TupleRequestBatch`] (§3.1 footnote 2's "efficiency of
    /// volume"). Semantically identical to sending each tuple as its own
    /// [`Payload::Answer`], in order; one mailbox delivery, one fault-
    /// transport frame (one seq, one ack, one checksum) amortized over
    /// all tuples.
    AnswerBatch {
        /// The tuples, in the order they would have been sent singly.
        tuples: Vec<Tuple>,
    },
    /// All answers for one previously sent tuple request have been
    /// delivered ("it can produce no more tuples for a particular tuple
    /// request", §3.2).
    EndTupleRequest {
        /// The binding being completed.
        binding: Tuple,
    },
    /// A packaged set of tuple-request completions for one arc.
    /// Semantically identical to one [`Payload::EndTupleRequest`] per
    /// binding, in order.
    EndTupleRequestBatch {
        /// The bindings being completed.
        bindings: Vec<Tuple>,
    },
    /// The whole stream on this arc is complete.
    End,

    // ---- §3.2 termination protocol, within one strong component ----
    /// Probe wave sent down the BFST by the leader.
    EndRequest {
        /// Wave number (diagnostics; the protocol serializes waves).
        wave: u64,
        /// Leader restart generation. A reply whose epoch differs from
        /// the receiver's current epoch is stale and dropped, so a
        /// restarted node can never acknowledge a pre-crash idleness
        /// wave (Thm 3.1 under faults; see DESIGN.md).
        epoch: u64,
    },
    /// A subtree is not yet confirmably idle.
    EndNegative {
        /// Wave number.
        wave: u64,
        /// Epoch of the wave being answered.
        epoch: u64,
    },
    /// A subtree has been idle through two consecutive waves. Carries
    /// Mattern-style counters of intra-component work messages as a
    /// hardening check for the threaded runtime (the 1986 atomic-mailbox
    /// model needs none; see DESIGN.md).
    EndConfirmed {
        /// Wave number.
        wave: u64,
        /// Epoch of the wave being answered.
        epoch: u64,
        /// Total intra-component work messages sent by the subtree.
        sent: u64,
        /// Total intra-component work messages received by the subtree.
        received: u64,
    },
    /// Broadcast down the BFST after the leader concludes: the component
    /// is finished; members release their external feeders.
    SccFinished,

    /// A restarted component member announces its rebirth to its BFST
    /// parent (or, from the leader, to nobody — the leader just bumps
    /// its epoch). The parent treats it as a negative reply for any wave
    /// in flight, so a crash in the middle of a probe wave aborts the
    /// wave instead of deadlocking it.
    Reborn {
        /// The reborn node's new epoch.
        epoch: u64,
    },

    /// Engine → every node (and node → BFST children within a strong
    /// component): abandon the query. A cancelled node clears its
    /// outgoing buffers, stops emitting answers, and keeps draining the
    /// termination protocol so the network reaches quiescence instead of
    /// wedging. Epoch-tagged like the §3.2 probe waves: a reborn node
    /// re-learns cancellation from its durable log replay, so a crash in
    /// the middle of a cancel wave still drains.
    Cancel {
        /// Cancel wave number (diagnostics; one wave per trip/cancel).
        wave: u64,
        /// Engine cancel generation (tags the wave for MP310).
        epoch: u64,
    },

    /// Engine → node: exit (threaded runtime only).
    Shutdown,
}

impl Payload {
    /// True for the §3.2 protocol messages (excluded from the "work
    /// message" counters that the protocol itself aggregates).
    pub fn is_protocol(&self) -> bool {
        matches!(
            self,
            Payload::EndRequest { .. }
                | Payload::EndNegative { .. }
                | Payload::EndConfirmed { .. }
                | Payload::SccFinished
                | Payload::Reborn { .. }
                | Payload::Cancel { .. }
        )
    }

    /// Approximate heap footprint of this payload, for the memory
    /// budget's mailbox accounting: tuple payloads (Arc header + values)
    /// plus a flat per-message overhead. Deterministic arithmetic over
    /// message shape — an estimate, not an allocator census.
    pub fn approx_bytes(&self) -> u64 {
        const MSG: u64 = 48; // enum discriminant + queue-slot overhead
        fn tup(t: &Tuple) -> u64 {
            16 + 8 * t.arity() as u64
        }
        fn tups(ts: &[Tuple]) -> u64 {
            24 + ts.iter().map(tup).sum::<u64>()
        }
        MSG + match self {
            Payload::TupleRequest { binding } | Payload::EndTupleRequest { binding } => {
                tup(binding)
            }
            Payload::TupleRequestBatch { bindings }
            | Payload::EndTupleRequestBatch { bindings } => tups(bindings),
            Payload::Answer { tuple } => tup(tuple),
            Payload::AnswerBatch { tuples } => tups(tuples),
            _ => 0,
        }
    }

    /// Short name for stats buckets.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::RelationRequest => "relation_request",
            Payload::TupleRequest { .. } => "tuple_request",
            Payload::TupleRequestBatch { .. } => "tuple_request_batch",
            Payload::EndOfRequests => "end_of_requests",
            Payload::Answer { .. } => "answer",
            Payload::AnswerBatch { .. } => "answer_batch",
            Payload::EndTupleRequest { .. } => "end_tuple_request",
            Payload::EndTupleRequestBatch { .. } => "end_tuple_request_batch",
            Payload::End => "end",
            Payload::EndRequest { .. } => "end_request",
            Payload::EndNegative { .. } => "end_negative",
            Payload::EndConfirmed { .. } => "end_confirmed",
            Payload::SccFinished => "scc_finished",
            Payload::Reborn { .. } => "reborn",
            Payload::Cancel { .. } => "cancel",
            Payload::Shutdown => "shutdown",
        }
    }
}

/// A routed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msg {
    /// Sender.
    pub from: Endpoint,
    /// Recipient.
    pub to: Endpoint,
    /// Payload.
    pub payload: Payload,
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {:?}", self.from, self.to, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_storage::tuple;

    #[test]
    fn protocol_classification() {
        assert!(Payload::EndRequest { wave: 1, epoch: 0 }.is_protocol());
        assert!(Payload::SccFinished.is_protocol());
        assert!(Payload::Reborn { epoch: 1 }.is_protocol());
        assert!(Payload::Cancel { wave: 1, epoch: 0 }.is_protocol());
        assert!(!Payload::Answer { tuple: tuple![1] }.is_protocol());
        assert!(!Payload::End.is_protocol());
    }

    #[test]
    fn endpoint_helpers() {
        assert_eq!(Endpoint::Node(3).node(), Some(3));
        assert_eq!(Endpoint::Engine.node(), None);
        assert_eq!(format!("{}", Endpoint::Node(3)), "#3");
    }

    #[test]
    fn display_is_readable() {
        let m = Msg {
            from: Endpoint::Node(1),
            to: Endpoint::Node(2),
            payload: Payload::TupleRequest { binding: tuple![5] },
        };
        assert_eq!(format!("{m}"), "#1 -> #2: TupleRequest { binding: (5) }");
    }
}
