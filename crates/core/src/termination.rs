//! The §3.2 distributed termination protocol (Fig 2, Thm 3.1).
//!
//! Each nontrivial strong component elects its unique exit node as "BFST
//! leader" and spans the component with a breadth-first spanning tree
//! (which, absent cross and forward edges, coincides with the DFS tree —
//! footnote 3). When the leader's queues are empty it floods an *end
//! request* down the BFST. A node that has been idle for the entire
//! period between two consecutive end requests — `idleness ≥ 2` — and
//! whose BFST children all confirmed, answers *end confirmed*; anything
//! else answers *end negative*, and the leader re-probes. When every node
//! confirms, all members were simultaneously idle (Thm 3.1) and the
//! component's answer streams are complete.
//!
//! Deviations from the paper's pseudocode, both recorded in DESIGN.md:
//! the stray `idleness := empty_queues()` assignment inside Fig 2's child
//! loop (a boolean assigned to an integer — evidently a typo) is dropped;
//! and *end confirmed* messages carry Mattern-style counters of
//! intra-component work messages, which the leader checks at conclusion —
//! redundant under the simulator's atomic-mailbox delivery, a cheap
//! safety net under real threads.

use crate::msg::{Endpoint, Msg, Payload};
use mp_rulegoal::NodeId;

/// Per-node protocol state; present only for members of nontrivial
/// strong components.
#[derive(Clone, Debug)]
pub struct TermState {
    /// True for the component's BFST leader.
    pub leader: bool,
    /// BFST parent (None for the leader).
    pub bfst_parent: Option<NodeId>,
    /// BFST children.
    pub bfst_children: Vec<NodeId>,
    /// Consecutive end requests received while idle (Fig 2's counter).
    pub idleness: u32,
    /// Children whose answer for the current wave is still outstanding.
    /// A set (not a count) so a stale or duplicated reply, or a `Reborn`
    /// from a child that already answered, can be recognised and dropped
    /// instead of corrupting the wave.
    pub pending: Vec<NodeId>,
    /// Leader only: a wave is in flight.
    pub inflight: bool,
    /// This node's restart generation, stamped on the end requests it
    /// sends; replies echoing a different epoch are stale (pre-restart)
    /// and dropped.
    pub epoch: u64,
    /// Epoch carried by the last end request from the parent, echoed in
    /// this node's reply so the parent can validate it.
    pub reply_epoch: u64,
    /// No child answered negative in the current wave.
    pub all_confirmed: bool,
    /// Current wave number.
    pub wave: u64,
    /// Aggregated intra-component sends (this subtree, current wave).
    pub agg_sent: u64,
    /// Aggregated intra-component receives (this subtree, current wave).
    pub agg_recv: u64,
    /// This node's intra-component work messages sent.
    pub intra_sent: u64,
    /// This node's intra-component work messages received.
    pub intra_recv: u64,
    /// Set once the component has concluded and `SccFinished` was seen.
    pub finished: bool,
    /// Completed waves (for stats).
    pub waves_completed: u64,
}

/// What the caller must do after a protocol event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermAction {
    /// Nothing further.
    None,
    /// The leader's probe concluded: the component is idle. The node
    /// behavior must flush per-binding ends, and if end-of-requests was
    /// received, finish the stream and broadcast `SccFinished`.
    Conclude,
    /// The event belonged to a superseded wave or a pre-restart epoch
    /// and was dropped without touching the wave state.
    Stale,
}

impl TermState {
    /// Create protocol state for a component member.
    pub fn new(leader: bool, bfst_parent: Option<NodeId>, bfst_children: Vec<NodeId>) -> Self {
        TermState {
            leader,
            bfst_parent,
            bfst_children,
            idleness: 0,
            pending: Vec::new(),
            inflight: false,
            epoch: 0,
            reply_epoch: 0,
            all_confirmed: true,
            wave: 0,
            agg_sent: 0,
            agg_recv: 0,
            intra_sent: 0,
            intra_recv: 0,
            finished: false,
            waves_completed: 0,
        }
    }

    /// Record a non-protocol message: the node is (or just was) busy.
    pub fn on_work(&mut self) {
        self.idleness = 0;
    }

    /// Leader: originate a probe wave if eligible. `empty` is
    /// `empty_queues()`; `unfinished` means there is business left (un-
    /// ended bindings or an un-answered end-of-requests).
    pub fn maybe_originate(
        &mut self,
        self_id: NodeId,
        empty: bool,
        unfinished: bool,
        out: &mut Vec<Msg>,
    ) {
        if !self.leader || self.inflight || self.finished || !empty || !unfinished {
            return;
        }
        self.originate(self_id, out);
    }

    fn originate(&mut self, self_id: NodeId, out: &mut Vec<Msg>) {
        debug_assert!(self.leader && !self.inflight);
        self.wave += 1;
        self.inflight = true;
        self.all_confirmed = true;
        // The leader's own "end request": it is empty by precondition, and
        // per Fig 2 its idleness is set and then incremented, i.e. it
        // counts itself as twice-idle for this wave unless work arrives.
        self.idleness = 2;
        self.agg_sent = self.intra_sent;
        self.agg_recv = self.intra_recv;
        self.pending = self.bfst_children.clone();
        debug_assert!(
            !self.pending.is_empty(),
            "a nontrivial component's leader has BFST children"
        );
        for &c in &self.bfst_children {
            out.push(Msg {
                from: Endpoint::Node(self_id),
                to: Endpoint::Node(c),
                payload: Payload::EndRequest {
                    wave: self.wave,
                    epoch: self.epoch,
                },
            });
        }
    }

    /// Member: handle an end request from the BFST parent. `epoch` is
    /// the parent's epoch, echoed back in this node's reply.
    pub fn on_end_request(
        &mut self,
        self_id: NodeId,
        wave: u64,
        epoch: u64,
        empty: bool,
        out: &mut Vec<Msg>,
    ) {
        debug_assert!(!self.leader, "the leader originates, it is never probed");
        self.wave = wave;
        self.reply_epoch = epoch;
        if empty {
            self.idleness += 1;
        } else {
            self.idleness = 0;
        }
        self.all_confirmed = true;
        self.agg_sent = self.intra_sent;
        self.agg_recv = self.intra_recv;
        self.pending = self.bfst_children.clone();
        if self.pending.is_empty() {
            self.reply(self_id, out);
        } else {
            for &c in &self.bfst_children {
                out.push(Msg {
                    from: Endpoint::Node(self_id),
                    to: Endpoint::Node(c),
                    payload: Payload::EndRequest {
                        wave,
                        epoch: self.epoch,
                    },
                });
            }
        }
    }

    /// True when a reply from `child` tagged `(wave, epoch)` answers the
    /// wave currently outstanding at this node. Anything else — an echo
    /// of a superseded wave, a pre-restart epoch, or a child that
    /// already answered — is stale.
    fn reply_is_current(&self, child: NodeId, wave: u64, epoch: u64) -> bool {
        wave == self.wave && epoch == self.epoch && self.pending.contains(&child)
    }

    /// Handle a negative answer from `child`.
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    pub fn on_end_negative(
        &mut self,
        self_id: NodeId,
        child: NodeId,
        wave: u64,
        epoch: u64,
        empty: bool,
        unfinished: bool,
        out: &mut Vec<Msg>,
    ) -> TermAction {
        if !self.reply_is_current(child, wave, epoch) {
            return TermAction::Stale;
        }
        self.all_confirmed = false;
        self.pending.retain(|&c| c != child);
        if self.pending.is_empty() {
            return self.complete_wave(self_id, empty, unfinished, out);
        }
        TermAction::None
    }

    /// Handle a confirmed answer from `child` (with its subtree
    /// counters).
    #[allow(clippy::too_many_arguments)]
    pub fn on_end_confirmed(
        &mut self,
        self_id: NodeId,
        child: NodeId,
        wave: u64,
        epoch: u64,
        sent: u64,
        received: u64,
        empty: bool,
        unfinished: bool,
        out: &mut Vec<Msg>,
    ) -> TermAction {
        if !self.reply_is_current(child, wave, epoch) {
            return TermAction::Stale;
        }
        self.agg_sent += sent;
        self.agg_recv += received;
        self.pending.retain(|&c| c != child);
        if self.pending.is_empty() {
            return self.complete_wave(self_id, empty, unfinished, out);
        }
        TermAction::None
    }

    /// Handle a `Reborn` announcement from a BFST child that crashed and
    /// restarted. If the child's answer for the current wave is still
    /// outstanding, the rebirth counts as a negative answer (the wave
    /// must abort, not deadlock); otherwise there is nothing to repair —
    /// the next wave will probe the reborn child normally.
    pub fn on_reborn(
        &mut self,
        self_id: NodeId,
        child: NodeId,
        empty: bool,
        unfinished: bool,
        out: &mut Vec<Msg>,
    ) -> TermAction {
        if !self.pending.contains(&child) {
            return TermAction::Stale;
        }
        self.all_confirmed = false;
        self.pending.retain(|&c| c != child);
        if self.pending.is_empty() {
            return self.complete_wave(self_id, empty, unfinished, out);
        }
        TermAction::None
    }

    fn complete_wave(
        &mut self,
        self_id: NodeId,
        empty: bool,
        unfinished: bool,
        out: &mut Vec<Msg>,
    ) -> TermAction {
        if self.leader {
            self.inflight = false;
            self.waves_completed += 1;
            let counters_match = self.agg_sent == self.agg_recv;
            if self.all_confirmed && self.idleness >= 2 && counters_match {
                return TermAction::Conclude;
            }
            // Fig 2: "the BFST leader starts another end request message
            // down the BFST, and repeats this after each end negative
            // answer", provided its own queues are still empty.
            if empty && unfinished {
                self.originate(self_id, out);
            }
            TermAction::None
        } else {
            self.reply(self_id, out);
            TermAction::None
        }
    }

    fn reply(&mut self, self_id: NodeId, out: &mut Vec<Msg>) {
        let Some(parent) = self.bfst_parent else {
            // A non-leader always has a BFST parent at compile time; the
            // only way to get here is a corrupted-then-recovered state,
            // and dropping the reply is safe (the leader re-probes).
            return;
        };
        let payload = if self.all_confirmed && self.idleness >= 2 {
            Payload::EndConfirmed {
                wave: self.wave,
                epoch: self.reply_epoch,
                sent: self.agg_sent,
                received: self.agg_recv,
            }
        } else {
            Payload::EndNegative {
                wave: self.wave,
                epoch: self.reply_epoch,
            }
        };
        out.push(Msg {
            from: Endpoint::Node(self_id),
            to: Endpoint::Node(parent),
            payload,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(out: &mut Vec<Msg>) -> Vec<Payload> {
        out.drain(..).map(|m| m.payload).collect()
    }

    #[test]
    fn leader_needs_two_waves_minimum() {
        // Leader 0 with one child 1 (a leaf).
        let mut leader = TermState::new(true, None, vec![1]);
        let mut leaf = TermState::new(false, Some(0), vec![]);
        let mut out = Vec::new();

        leader.maybe_originate(0, true, true, &mut out);
        assert!(matches!(
            drain(&mut out)[0],
            Payload::EndRequest { wave: 1, .. }
        ));

        // Wave 1: leaf idle but idleness becomes 1 → negative.
        leaf.on_end_request(1, 1, 0, true, &mut out);
        assert!(matches!(
            drain(&mut out)[0],
            Payload::EndNegative { wave: 1, .. }
        ));
        let act = leader.on_end_negative(0, 1, 1, 0, true, true, &mut out);
        assert_eq!(act, TermAction::None);
        // Leader immediately re-probes (wave 2).
        assert!(matches!(
            drain(&mut out)[0],
            Payload::EndRequest { wave: 2, .. }
        ));

        // Wave 2: leaf idle again → idleness 2 → confirmed.
        leaf.on_end_request(1, 2, 0, true, &mut out);
        let msgs = drain(&mut out);
        assert!(matches!(msgs[0], Payload::EndConfirmed { wave: 2, .. }));
        let act = leader.on_end_confirmed(0, 1, 2, 0, 0, 0, true, true, &mut out);
        assert_eq!(act, TermAction::Conclude);
    }

    #[test]
    fn work_between_waves_resets_idleness() {
        let mut leaf = TermState::new(false, Some(0), vec![]);
        let mut out = Vec::new();
        leaf.on_end_request(1, 1, 0, true, &mut out);
        drain(&mut out);
        leaf.on_work(); // a tuple arrived between waves
        leaf.on_end_request(1, 2, 0, true, &mut out);
        assert!(matches!(
            drain(&mut out)[0],
            Payload::EndNegative { wave: 2, .. }
        ));
        // Two more idle waves then confirm.
        leaf.on_end_request(1, 3, 0, true, &mut out);
        drain(&mut out);
        leaf.on_end_request(1, 4, 0, true, &mut out);
        assert!(matches!(
            drain(&mut out)[0],
            Payload::EndConfirmed { wave: 4, .. }
        ));
    }

    #[test]
    fn busy_node_answers_negative() {
        let mut leaf = TermState::new(false, Some(0), vec![]);
        let mut out = Vec::new();
        leaf.on_end_request(1, 1, 0, false, &mut out); // mailbox not empty
        assert!(matches!(
            drain(&mut out)[0],
            Payload::EndNegative { wave: 1, .. }
        ));
        assert_eq!(leaf.idleness, 0);
    }

    #[test]
    fn interior_node_aggregates_children() {
        // Node 1 with children 2 and 3; parent 0.
        let mut mid = TermState::new(false, Some(0), vec![2, 3]);
        let mut out = Vec::new();
        // First wave primes idleness to 1; it forwards to children.
        mid.on_end_request(1, 1, 0, true, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        // Both children confirm with counters, but mid's idleness is 1 →
        // negative up.
        mid.on_end_confirmed(1, 2, 1, 0, 5, 5, true, true, &mut out);
        assert!(out.is_empty());
        mid.on_end_confirmed(1, 3, 1, 0, 3, 3, true, true, &mut out);
        assert!(matches!(
            drain(&mut out)[0],
            Payload::EndNegative { wave: 1, .. }
        ));
        // Second wave, still idle: children confirm → confirmed up with
        // summed counters (mid's own are 0).
        mid.on_end_request(1, 2, 0, true, &mut out);
        out.clear();
        mid.on_end_confirmed(1, 2, 2, 0, 5, 5, true, true, &mut out);
        mid.on_end_confirmed(1, 3, 2, 0, 3, 3, true, true, &mut out);
        match drain(&mut out).pop().unwrap() {
            Payload::EndConfirmed {
                wave,
                sent,
                received,
                ..
            } => {
                assert_eq!(wave, 2);
                assert_eq!(sent, 8);
                assert_eq!(received, 8);
            }
            other => panic!("expected confirmed, got {other:?}"),
        }
    }

    #[test]
    fn counter_mismatch_blocks_conclusion() {
        let mut leader = TermState::new(true, None, vec![1]);
        leader.intra_sent = 4;
        leader.intra_recv = 3; // one message unaccounted for
        let mut out = Vec::new();
        leader.maybe_originate(0, true, true, &mut out);
        out.clear();
        leader.idleness = 2;
        let act = leader.on_end_confirmed(0, 1, 1, 0, 0, 0, true, true, &mut out);
        assert_eq!(act, TermAction::None);
        // It re-probed instead.
        assert!(matches!(
            out[0].payload,
            Payload::EndRequest { wave: 2, .. }
        ));
    }

    #[test]
    fn negative_child_forces_reprobe() {
        let mut leader = TermState::new(true, None, vec![1, 2]);
        let mut out = Vec::new();
        leader.maybe_originate(0, true, true, &mut out);
        out.clear();
        leader.on_end_confirmed(0, 1, 1, 0, 0, 0, true, true, &mut out);
        let act = leader.on_end_negative(0, 2, 1, 0, true, true, &mut out);
        assert_eq!(act, TermAction::None);
        assert!(matches!(
            out[0].payload,
            Payload::EndRequest { wave: 2, .. }
        ));
    }

    #[test]
    fn stale_replies_are_dropped() {
        let mut leader = TermState::new(true, None, vec![1, 2]);
        let mut out = Vec::new();
        leader.maybe_originate(0, true, true, &mut out);
        out.clear();
        // Wrong wave.
        let act = leader.on_end_negative(0, 1, 7, 0, true, true, &mut out);
        assert_eq!(act, TermAction::Stale);
        // Wrong epoch (reply to a pre-restart probe).
        let act = leader.on_end_confirmed(0, 1, 1, 9, 0, 0, true, true, &mut out);
        assert_eq!(act, TermAction::Stale);
        // Valid reply, then a duplicate of it.
        let act = leader.on_end_confirmed(0, 1, 1, 0, 0, 0, true, true, &mut out);
        assert_eq!(act, TermAction::None);
        let act = leader.on_end_confirmed(0, 1, 1, 0, 0, 0, true, true, &mut out);
        assert_eq!(act, TermAction::Stale);
        // The wave is still waiting for child 2 only.
        assert_eq!(leader.pending, vec![2]);
        assert!(out.is_empty());
    }

    #[test]
    fn reborn_child_aborts_the_wave() {
        let mut leader = TermState::new(true, None, vec![1]);
        let mut out = Vec::new();
        leader.maybe_originate(0, true, true, &mut out);
        out.clear();
        // Child 1 crashes mid-wave and announces its rebirth: the wave
        // aborts (negative) and the leader re-probes.
        let act = leader.on_reborn(0, 1, true, true, &mut out);
        assert_eq!(act, TermAction::None);
        assert!(matches!(
            out[0].payload,
            Payload::EndRequest { wave: 2, .. }
        ));
        out.clear();
        // Wave 2 is now pending for child 1, so a second rebirth aborts
        // it the same way.
        let act = leader.on_reborn(0, 1, true, true, &mut out);
        assert_eq!(act, TermAction::None);
        out.clear();
        // With no wave in flight a rebirth is a no-op.
        leader.inflight = false;
        leader.pending.clear();
        let act = leader.on_reborn(0, 1, true, false, &mut out);
        assert_eq!(act, TermAction::Stale);
        assert!(out.is_empty());
    }

    #[test]
    fn leader_does_not_originate_without_business() {
        let mut leader = TermState::new(true, None, vec![1]);
        let mut out = Vec::new();
        leader.maybe_originate(0, true, false, &mut out);
        assert!(out.is_empty());
        leader.maybe_originate(0, false, true, &mut out);
        assert!(out.is_empty());
    }
}
