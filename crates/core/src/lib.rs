#![warn(missing_docs)]

//! # mp-engine
//!
//! Message-controlled distributed query evaluation — §3 of Van Gelder,
//! "A Message Passing Framework for Logical Query Evaluation" (SIGMOD
//! 1986) — on top of the rule/goal graphs of `mp-rulegoal`.
//!
//! Every node of the rule/goal graph becomes a *process* owning its own
//! temporary relations (no shared memory). Processes exchange the paper's
//! basic message set:
//!
//! * **relation request** — opens a stream, flowing against the arcs;
//! * **tuple request** — one binding for all the class-`d` arguments;
//! * **tuple** (answer) — a derived tuple, flowing with the arcs;
//! * **end** — a stream (or one tuple request) is complete;
//! * the §3.2 **end request / end negative / end confirmed** protocol
//!   messages that detect, asynchronously, that a recursive strong
//!   component has gone idle (Fig 2, Thm 3.1).
//!
//! Two runtimes execute the process network:
//!
//! * [`SimRuntime`](runtime::SimRuntime) — a deterministic single-threaded
//!   simulator with per-node FIFO mailboxes and pluggable scheduling
//!   (global-FIFO or seeded-random), which also counts every message —
//!   the observable the paper's efficiency arguments are about;
//! * [`ThreadRuntime`](runtime::ThreadRuntime) — one OS thread per node
//!   over crossbeam channels, demonstrating the paper's parallelism claim
//!   with genuinely no shared intermediate state.
//!
//! The top-level entry point is [`Engine`].

mod engine;
pub mod fault;
pub mod msg;
pub mod node;
pub mod runtime;
mod stats;
pub mod termination;

pub use engine::{evaluate_str, Compiled, Engine, EngineError, QueryResult, RuntimeKind};
pub use fault::{CrashPoint, FaultPlan};
pub use msg::{Endpoint, Msg, Payload};
pub use runtime::{CancelToken, QueryBudget, Schedule};
pub use stats::Stats;
