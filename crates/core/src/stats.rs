//! Instrumentation: the communication- and work-volume observables the
//! paper's efficiency arguments are stated in ("there are various
//! trade-offs between … the amount of communication between processes and
//! the amount of redundant computation in the form of joins and database
//! retrievals", §3.1).

/// Counters collected over one evaluation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Relation-request messages.
    pub relation_requests: u64,
    /// Tuple-request messages.
    pub tuple_requests: u64,
    /// Packaged tuple-request messages (batching enabled; each counts as
    /// one message regardless of how many bindings it carries).
    pub tuple_request_batches: u64,
    /// Answer (tuple) messages.
    pub answers: u64,
    /// Packaged answer messages (batching enabled; each counts as one
    /// physical frame regardless of how many tuples it carries).
    pub answer_batches: u64,
    /// Per-binding end messages.
    pub end_tuple_requests: u64,
    /// Packaged per-binding end messages.
    pub end_tuple_request_batches: u64,
    /// Stream end / end-of-requests messages.
    pub stream_ends: u64,
    /// Logical tuple requests: every binding shipped, whether as its own
    /// frame or inside a `TupleRequestBatch`. Invariant under batching.
    pub logical_tuple_requests: u64,
    /// Logical answers: every tuple shipped, whether as its own frame or
    /// inside an `AnswerBatch`. Invariant under batching.
    pub logical_answers: u64,
    /// Logical per-binding completions, counting batch contents.
    /// Invariant under batching.
    pub logical_end_tuple_requests: u64,
    /// §3.2 protocol messages (end request / negative / confirmed /
    /// finished).
    pub protocol_messages: u64,
    /// Completed probe waves (each wave = one end-request flood).
    pub probe_waves: u64,
    /// Distinct tuples stored across all node-local temporary relations.
    pub stored_tuples: u64,
    /// Distinct tuples stored at goal-node answer relations only — the
    /// direct analogue of a bottom-up evaluator's IDB store (total
    /// storage is larger because rule nodes also keep their subgoals'
    /// temporary relations, the space-for-communication trade of §3.1).
    pub goal_stored: u64,
    /// Join probe operations inside rule nodes.
    pub join_probes: u64,
    /// Tuples produced by rule-node pipelines (head answers before
    /// goal-node deduplication).
    pub derived_tuples: u64,
    /// Largest single node-local relation observed.
    pub max_relation_size: u64,
    /// Largest rule-node *stage* relation (intermediate join results) —
    /// the quantity the monotone flow property bounds (§4.3).
    pub max_stage_relation: u64,
    /// EDB index lookups.
    pub edb_lookups: u64,
    /// Messages processed in total.
    pub messages_processed: u64,

    // ---- static analysis (set by Engine from compile, not by nodes) ----
    /// Rule/goal-graph nodes removed by analysis pruning before the
    /// network was compiled.
    pub pruned_nodes: u64,
    /// Rule nodes among [`Stats::pruned_nodes`] (the rest are goal/EDB
    /// nodes that became unreachable with them).
    pub pruned_rules: u64,

    // ---- fault injection and recovery (zero on a fault-free run) ----
    /// Message copies dropped by the fault plan.
    pub fault_dropped: u64,
    /// Message copies duplicated by the fault plan.
    pub fault_duplicated: u64,
    /// Message copies delayed (reordered) by the fault plan.
    pub fault_delayed: u64,
    /// Message copies corrupted in flight (detected and discarded).
    pub fault_corrupted: u64,
    /// Transport retransmissions of unacked messages.
    pub retransmits: u64,
    /// Transport acknowledgement frames.
    pub acks: u64,
    /// Transport-level duplicates discarded at the receiver.
    pub dups_discarded: u64,
    /// Stale protocol events dropped (superseded wave / old epoch).
    pub stale_dropped: u64,
    /// Malformed or misrouted frames dropped at a node.
    pub malformed_dropped: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Messages replayed from durable logs during node recovery.
    pub replayed: u64,
    /// Restart-generation bumps (one per recovered node incarnation).
    pub epoch_bumps: u64,

    // ---- worker-pool scheduler (zero on the simulator) ----
    /// Node activations executed by the worker pool (one activation =
    /// one mailbox drain).
    pub sched_activations: u64,
    /// Activations a worker took from another worker's deque.
    pub sched_steals: u64,
    /// Idle transitions after a steal sweep found every deque empty.
    pub sched_steal_failures: u64,
    /// High-water mark of queued activations across all deques.
    pub sched_max_queue: u64,

    // ---- resource governance (zero without a budget or cancel) ----
    /// High-water mark of interned-arena + queued-mailbox bytes observed
    /// by the governor.
    pub mem_high_water_bytes: u64,
    /// High-water mark of any single node mailbox's depth (frames).
    pub mailbox_high_water: u64,
    /// Cancel drain waves broadcast by the engine (budget trips and
    /// explicit cancels).
    pub cancel_waves: u64,
    /// Frames the credit window held back from the wire until a
    /// cumulative ack opened it (backpressure events, not losses).
    pub credits_stalled: u64,

    // ---- sharded evaluation (zero at --shards 1) ----
    /// Logical items (requests or head answers) routed across a sharded
    /// link by partition-key hash — a measure of how much traffic the
    /// shard router actually split.
    pub shard_routed_frames: u64,
    /// High-water mark of any single shard arc's routed-item count — the
    /// worst hash skew observed (perfectly balanced traffic keeps this
    /// near `shard_routed_frames / K`).
    pub shard_max_skew: u64,

    // ---- stratified evaluation (set by Engine, not by nodes) ----
    /// Engine runs the staged driver executed for this query: 1 for a
    /// flat (negation/aggregation-free) program, the number of pipeline
    /// stages — strata plus aggregate materializations — otherwise.
    pub strata_evaluated: u64,
}

impl Stats {
    /// Total *physical* messages sent (frames on the wire), by summing
    /// the per-kind counters. A batch counts as one.
    pub fn total_messages(&self) -> u64 {
        self.relation_requests
            + self.tuple_requests
            + self.tuple_request_batches
            + self.answers
            + self.answer_batches
            + self.end_tuple_requests
            + self.end_tuple_request_batches
            + self.stream_ends
            + self.protocol_messages
    }

    /// Total *logical* messages: every binding, answer tuple, and
    /// per-binding completion counted individually, plus the kinds that
    /// never batch. Invariant under batching — two runs of the same
    /// query at different batch sizes report the same value.
    pub fn logical_messages(&self) -> u64 {
        self.relation_requests
            + self.logical_tuple_requests
            + self.logical_answers
            + self.logical_end_tuple_requests
            + self.stream_ends
            + self.protocol_messages
    }

    /// Work messages (everything except the termination protocol).
    pub fn work_messages(&self) -> u64 {
        self.total_messages() - self.protocol_messages
    }

    /// Protocol overhead ratio: protocol messages per work message.
    pub fn protocol_overhead(&self) -> f64 {
        if self.work_messages() == 0 {
            0.0
        } else {
            self.protocol_messages as f64 / self.work_messages() as f64
        }
    }

    /// Merge another stats block into this one (used by the threaded
    /// runtime to sum per-node counters). Counters sum; high-water marks
    /// take the max.
    pub fn merge(&mut self, other: &Stats) {
        // Exhaustive destructuring — deliberately no `..` rest pattern,
        // so adding a counter without deciding how it merges is a
        // compile error here, not a silently dropped statistic.
        let Stats {
            relation_requests,
            tuple_requests,
            tuple_request_batches,
            answers,
            answer_batches,
            end_tuple_requests,
            end_tuple_request_batches,
            stream_ends,
            logical_tuple_requests,
            logical_answers,
            logical_end_tuple_requests,
            protocol_messages,
            probe_waves,
            stored_tuples,
            goal_stored,
            join_probes,
            derived_tuples,
            max_relation_size,
            max_stage_relation,
            edb_lookups,
            messages_processed,
            pruned_nodes,
            pruned_rules,
            fault_dropped,
            fault_duplicated,
            fault_delayed,
            fault_corrupted,
            retransmits,
            acks,
            dups_discarded,
            stale_dropped,
            malformed_dropped,
            crashes,
            replayed,
            epoch_bumps,
            sched_activations,
            sched_steals,
            sched_steal_failures,
            sched_max_queue,
            mem_high_water_bytes,
            mailbox_high_water,
            cancel_waves,
            credits_stalled,
            shard_routed_frames,
            shard_max_skew,
            strata_evaluated,
        } = other;
        self.relation_requests += relation_requests;
        self.tuple_requests += tuple_requests;
        self.tuple_request_batches += tuple_request_batches;
        self.answers += answers;
        self.answer_batches += answer_batches;
        self.end_tuple_requests += end_tuple_requests;
        self.end_tuple_request_batches += end_tuple_request_batches;
        self.stream_ends += stream_ends;
        self.logical_tuple_requests += logical_tuple_requests;
        self.logical_answers += logical_answers;
        self.logical_end_tuple_requests += logical_end_tuple_requests;
        self.protocol_messages += protocol_messages;
        self.probe_waves += probe_waves;
        self.stored_tuples += stored_tuples;
        self.goal_stored += goal_stored;
        self.join_probes += join_probes;
        self.derived_tuples += derived_tuples;
        self.max_relation_size = self.max_relation_size.max(*max_relation_size);
        self.max_stage_relation = self.max_stage_relation.max(*max_stage_relation);
        self.edb_lookups += edb_lookups;
        self.messages_processed += messages_processed;
        self.pruned_nodes += pruned_nodes;
        self.pruned_rules += pruned_rules;
        self.fault_dropped += fault_dropped;
        self.fault_duplicated += fault_duplicated;
        self.fault_delayed += fault_delayed;
        self.fault_corrupted += fault_corrupted;
        self.retransmits += retransmits;
        self.acks += acks;
        self.dups_discarded += dups_discarded;
        self.stale_dropped += stale_dropped;
        self.malformed_dropped += malformed_dropped;
        self.crashes += crashes;
        self.replayed += replayed;
        self.epoch_bumps += epoch_bumps;
        self.sched_activations += sched_activations;
        self.sched_steals += sched_steals;
        self.sched_steal_failures += sched_steal_failures;
        self.sched_max_queue = self.sched_max_queue.max(*sched_max_queue);
        self.mem_high_water_bytes = self.mem_high_water_bytes.max(*mem_high_water_bytes);
        self.mailbox_high_water = self.mailbox_high_water.max(*mailbox_high_water);
        self.cancel_waves += cancel_waves;
        self.credits_stalled += credits_stalled;
        self.shard_routed_frames += shard_routed_frames;
        self.shard_max_skew = self.shard_max_skew.max(*shard_max_skew);
        self.strata_evaluated += strata_evaluated;
    }

    /// Total fault events injected by the active plan.
    pub fn faults_injected(&self) -> u64 {
        self.fault_dropped + self.fault_duplicated + self.fault_delayed + self.fault_corrupted
    }

    /// Transport overhead ratio: retransmissions per logical message.
    /// Must be ~0 when the fault plan is inactive (clean path).
    pub fn retransmit_overhead(&self) -> f64 {
        if self.total_messages() == 0 {
            0.0
        } else {
            self.retransmits as f64 / self.total_messages() as f64
        }
    }

    /// Record an outgoing message.
    pub fn count_send(&mut self, payload: &crate::msg::Payload) {
        use crate::msg::Payload as P;
        match payload {
            P::RelationRequest => self.relation_requests += 1,
            P::TupleRequest { .. } => {
                self.tuple_requests += 1;
                self.logical_tuple_requests += 1;
            }
            P::TupleRequestBatch { bindings } => {
                self.tuple_request_batches += 1;
                self.logical_tuple_requests += bindings.len() as u64;
            }
            P::Answer { .. } => {
                self.answers += 1;
                self.logical_answers += 1;
            }
            P::AnswerBatch { tuples } => {
                self.answer_batches += 1;
                self.logical_answers += tuples.len() as u64;
            }
            P::EndTupleRequest { .. } => {
                self.end_tuple_requests += 1;
                self.logical_end_tuple_requests += 1;
            }
            P::EndTupleRequestBatch { bindings } => {
                self.end_tuple_request_batches += 1;
                self.logical_end_tuple_requests += bindings.len() as u64;
            }
            P::End | P::EndOfRequests => self.stream_ends += 1,
            P::EndRequest { .. }
            | P::EndNegative { .. }
            | P::EndConfirmed { .. }
            | P::SccFinished
            | P::Reborn { .. }
            | P::Cancel { .. } => self.protocol_messages += 1,
            P::Shutdown => {}
        }
    }
}

impl std::fmt::Display for Stats {
    /// Render every counter, one `-- `-prefixed line each (the `mpq
    /// --stats` format). Exhaustive by construction: the destructuring
    /// below has no `..` rest pattern, so a counter added to the struct
    /// but not printed is a compile error, and the display test asserts
    /// each field's line is present.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let Stats {
            relation_requests,
            tuple_requests,
            tuple_request_batches,
            answers,
            answer_batches,
            end_tuple_requests,
            end_tuple_request_batches,
            stream_ends,
            logical_tuple_requests,
            logical_answers,
            logical_end_tuple_requests,
            protocol_messages,
            probe_waves,
            stored_tuples,
            goal_stored,
            join_probes,
            derived_tuples,
            max_relation_size,
            max_stage_relation,
            edb_lookups,
            messages_processed,
            pruned_nodes,
            pruned_rules,
            fault_dropped,
            fault_duplicated,
            fault_delayed,
            fault_corrupted,
            retransmits,
            acks,
            dups_discarded,
            stale_dropped,
            malformed_dropped,
            crashes,
            replayed,
            epoch_bumps,
            sched_activations,
            sched_steals,
            sched_steal_failures,
            sched_max_queue,
            mem_high_water_bytes,
            mailbox_high_water,
            cancel_waves,
            credits_stalled,
            shard_routed_frames,
            shard_max_skew,
            strata_evaluated,
        } = self;
        writeln!(f, "-- messages           : {}", self.total_messages())?;
        writeln!(f, "--   relation requests: {relation_requests}")?;
        writeln!(f, "--   tuple requests   : {tuple_requests}")?;
        writeln!(f, "--   request packages : {tuple_request_batches}")?;
        writeln!(f, "--   answers          : {answers}")?;
        writeln!(f, "--   answer packages  : {answer_batches}")?;
        writeln!(f, "--   end requests     : {end_tuple_requests}")?;
        writeln!(f, "--   end packages     : {end_tuple_request_batches}")?;
        writeln!(f, "--   stream ends      : {stream_ends}")?;
        writeln!(f, "--   protocol         : {protocol_messages}")?;
        writeln!(f, "-- logical traffic (batching-invariant)")?;
        writeln!(f, "--   tuple requests   : {logical_tuple_requests}")?;
        writeln!(f, "--   answers          : {logical_answers}")?;
        writeln!(f, "--   end requests     : {logical_end_tuple_requests}")?;
        writeln!(f, "-- messages processed : {messages_processed}")?;
        writeln!(f, "-- probe waves        : {probe_waves}")?;
        writeln!(f, "-- stored tuples      : {stored_tuples}")?;
        writeln!(f, "--   at goal nodes    : {goal_stored}")?;
        writeln!(f, "-- join probes        : {join_probes}")?;
        writeln!(f, "-- derived tuples     : {derived_tuples}")?;
        writeln!(f, "-- max relation size  : {max_relation_size}")?;
        writeln!(f, "-- max stage relation : {max_stage_relation}")?;
        writeln!(f, "-- edb lookups        : {edb_lookups}")?;
        writeln!(f, "-- pruned nodes       : {pruned_nodes}")?;
        writeln!(f, "--   pruned rules     : {pruned_rules}")?;
        writeln!(f, "-- faults injected    : {}", self.faults_injected())?;
        writeln!(f, "--   dropped          : {fault_dropped}")?;
        writeln!(f, "--   duplicated       : {fault_duplicated}")?;
        writeln!(f, "--   delayed          : {fault_delayed}")?;
        writeln!(f, "--   corrupted        : {fault_corrupted}")?;
        writeln!(f, "-- retransmits        : {retransmits}")?;
        writeln!(f, "-- acks               : {acks}")?;
        writeln!(f, "-- dups discarded     : {dups_discarded}")?;
        writeln!(f, "-- stale dropped      : {stale_dropped}")?;
        writeln!(f, "-- malformed dropped  : {malformed_dropped}")?;
        writeln!(f, "-- crashes            : {crashes}")?;
        writeln!(f, "--   replayed msgs    : {replayed}")?;
        writeln!(f, "--   epoch bumps      : {epoch_bumps}")?;
        writeln!(f, "-- sched activations  : {sched_activations}")?;
        writeln!(f, "--   steals           : {sched_steals}")?;
        writeln!(f, "--   steal failures   : {sched_steal_failures}")?;
        writeln!(f, "--   max queue depth  : {sched_max_queue}")?;
        writeln!(f, "-- mem high water (B) : {mem_high_water_bytes}")?;
        writeln!(f, "-- mailbox high water : {mailbox_high_water}")?;
        writeln!(f, "-- cancel waves       : {cancel_waves}")?;
        writeln!(f, "-- credits stalled    : {credits_stalled}")?;
        writeln!(f, "-- shard routed frames: {shard_routed_frames}")?;
        writeln!(f, "-- shard max skew     : {shard_max_skew}")?;
        writeln!(f, "-- strata evaluated   : {strata_evaluated}")?;
        writeln!(
            f,
            "-- retransmit overhead: {:.1}%",
            100.0 * self.retransmit_overhead()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Payload;
    use mp_storage::tuple;

    #[test]
    fn count_send_buckets() {
        let mut s = Stats::default();
        s.count_send(&Payload::TupleRequest { binding: tuple![1] });
        s.count_send(&Payload::Answer { tuple: tuple![1] });
        s.count_send(&Payload::End);
        s.count_send(&Payload::EndRequest { wave: 0, epoch: 0 });
        assert_eq!(s.tuple_requests, 1);
        assert_eq!(s.answers, 1);
        assert_eq!(s.stream_ends, 1);
        assert_eq!(s.protocol_messages, 1);
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.work_messages(), 3);
        assert!((s.protocol_overhead() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn batches_count_one_physical_frame_but_all_logical_items() {
        let mut s = Stats::default();
        s.count_send(&Payload::AnswerBatch {
            tuples: vec![tuple![1], tuple![2], tuple![3]],
        });
        s.count_send(&Payload::EndTupleRequestBatch {
            bindings: vec![tuple![1], tuple![2]],
        });
        s.count_send(&Payload::TupleRequestBatch {
            bindings: vec![tuple![4], tuple![5]],
        });
        assert_eq!(s.answer_batches, 1);
        assert_eq!(s.end_tuple_request_batches, 1);
        assert_eq!(s.tuple_request_batches, 1);
        assert_eq!(s.logical_answers, 3);
        assert_eq!(s.logical_end_tuple_requests, 2);
        assert_eq!(s.logical_tuple_requests, 2);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.logical_messages(), 7);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Stats {
            answers: 2,
            max_relation_size: 10,
            ..Stats::default()
        };
        let b = Stats {
            answers: 3,
            max_relation_size: 7,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.answers, 5);
        assert_eq!(a.max_relation_size, 10);
    }

    #[test]
    fn zero_work_has_zero_overhead() {
        assert_eq!(Stats::default().protocol_overhead(), 0.0);
    }

    /// Every field, no `..Default::default()`: adding a counter to the
    /// struct forces this literal (and therefore a merge decision) to
    /// be updated.
    fn all_fields(v: u64) -> Stats {
        Stats {
            relation_requests: v,
            tuple_requests: v,
            tuple_request_batches: v,
            answers: v,
            answer_batches: v,
            end_tuple_requests: v,
            end_tuple_request_batches: v,
            stream_ends: v,
            logical_tuple_requests: v,
            logical_answers: v,
            logical_end_tuple_requests: v,
            protocol_messages: v,
            probe_waves: v,
            stored_tuples: v,
            goal_stored: v,
            join_probes: v,
            derived_tuples: v,
            max_relation_size: v,
            max_stage_relation: v,
            edb_lookups: v,
            messages_processed: v,
            pruned_nodes: v,
            pruned_rules: v,
            fault_dropped: v,
            fault_duplicated: v,
            fault_delayed: v,
            fault_corrupted: v,
            retransmits: v,
            acks: v,
            dups_discarded: v,
            stale_dropped: v,
            malformed_dropped: v,
            crashes: v,
            replayed: v,
            epoch_bumps: v,
            sched_activations: v,
            sched_steals: v,
            sched_steal_failures: v,
            sched_max_queue: v,
            mem_high_water_bytes: v,
            mailbox_high_water: v,
            cancel_waves: v,
            credits_stalled: v,
            shard_routed_frames: v,
            shard_max_skew: v,
            strata_evaluated: v,
        }
    }

    #[test]
    fn merge_is_exhaustive_over_all_fields() {
        let mut a = all_fields(1);
        a.merge(&all_fields(2));
        let mut expect = all_fields(3);
        // High-water marks take the max, not the sum.
        expect.max_relation_size = 2;
        expect.max_stage_relation = 2;
        expect.sched_max_queue = 2;
        expect.mem_high_water_bytes = 2;
        expect.mailbox_high_water = 2;
        expect.shard_max_skew = 2;
        assert_eq!(a, expect);
    }

    #[test]
    fn display_mentions_every_counter() {
        // Distinct per-field values; each must surface in the rendering.
        let mut s = Stats::default();
        let text = {
            let mut v = 1000;
            macro_rules! set {
                ($($field:ident),* $(,)?) => {
                    $( s.$field = v; v += 1; )*
                };
            }
            set!(
                relation_requests,
                tuple_requests,
                tuple_request_batches,
                answers,
                answer_batches,
                end_tuple_requests,
                end_tuple_request_batches,
                stream_ends,
                logical_tuple_requests,
                logical_answers,
                logical_end_tuple_requests,
                protocol_messages,
                probe_waves,
                stored_tuples,
                goal_stored,
                join_probes,
                derived_tuples,
                max_relation_size,
                max_stage_relation,
                edb_lookups,
                messages_processed,
                pruned_nodes,
                pruned_rules,
                fault_dropped,
                fault_duplicated,
                fault_delayed,
                fault_corrupted,
                retransmits,
                acks,
                dups_discarded,
                stale_dropped,
                malformed_dropped,
                crashes,
                replayed,
                epoch_bumps,
                sched_activations,
                sched_steals,
                sched_steal_failures,
                sched_max_queue,
                mem_high_water_bytes,
                mailbox_high_water,
                cancel_waves,
                credits_stalled,
                shard_routed_frames,
                shard_max_skew,
                strata_evaluated,
            );
            let _ = v;
            s.to_string()
        };
        for v in 1000..1046 {
            assert!(
                text.contains(&format!(": {v}")),
                "counter value {v} missing from Display output:\n{text}"
            );
        }
    }
}
