//! Instrumentation: the communication- and work-volume observables the
//! paper's efficiency arguments are stated in ("there are various
//! trade-offs between … the amount of communication between processes and
//! the amount of redundant computation in the form of joins and database
//! retrievals", §3.1).

/// Counters collected over one evaluation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Relation-request messages.
    pub relation_requests: u64,
    /// Tuple-request messages.
    pub tuple_requests: u64,
    /// Packaged tuple-request messages (batching enabled; each counts as
    /// one message regardless of how many bindings it carries).
    pub tuple_request_batches: u64,
    /// Answer (tuple) messages.
    pub answers: u64,
    /// Packaged answer messages (batching enabled; each counts as one
    /// physical frame regardless of how many tuples it carries).
    pub answer_batches: u64,
    /// Per-binding end messages.
    pub end_tuple_requests: u64,
    /// Packaged per-binding end messages.
    pub end_tuple_request_batches: u64,
    /// Stream end / end-of-requests messages.
    pub stream_ends: u64,
    /// Logical tuple requests: every binding shipped, whether as its own
    /// frame or inside a `TupleRequestBatch`. Invariant under batching.
    pub logical_tuple_requests: u64,
    /// Logical answers: every tuple shipped, whether as its own frame or
    /// inside an `AnswerBatch`. Invariant under batching.
    pub logical_answers: u64,
    /// Logical per-binding completions, counting batch contents.
    /// Invariant under batching.
    pub logical_end_tuple_requests: u64,
    /// §3.2 protocol messages (end request / negative / confirmed /
    /// finished).
    pub protocol_messages: u64,
    /// Completed probe waves (each wave = one end-request flood).
    pub probe_waves: u64,
    /// Distinct tuples stored across all node-local temporary relations.
    pub stored_tuples: u64,
    /// Distinct tuples stored at goal-node answer relations only — the
    /// direct analogue of a bottom-up evaluator's IDB store (total
    /// storage is larger because rule nodes also keep their subgoals'
    /// temporary relations, the space-for-communication trade of §3.1).
    pub goal_stored: u64,
    /// Join probe operations inside rule nodes.
    pub join_probes: u64,
    /// Tuples produced by rule-node pipelines (head answers before
    /// goal-node deduplication).
    pub derived_tuples: u64,
    /// Largest single node-local relation observed.
    pub max_relation_size: u64,
    /// Largest rule-node *stage* relation (intermediate join results) —
    /// the quantity the monotone flow property bounds (§4.3).
    pub max_stage_relation: u64,
    /// EDB index lookups.
    pub edb_lookups: u64,
    /// Messages processed in total.
    pub messages_processed: u64,

    // ---- fault injection and recovery (zero on a fault-free run) ----
    /// Message copies dropped by the fault plan.
    pub fault_dropped: u64,
    /// Message copies duplicated by the fault plan.
    pub fault_duplicated: u64,
    /// Message copies delayed (reordered) by the fault plan.
    pub fault_delayed: u64,
    /// Message copies corrupted in flight (detected and discarded).
    pub fault_corrupted: u64,
    /// Transport retransmissions of unacked messages.
    pub retransmits: u64,
    /// Transport acknowledgement frames.
    pub acks: u64,
    /// Transport-level duplicates discarded at the receiver.
    pub dups_discarded: u64,
    /// Stale protocol events dropped (superseded wave / old epoch).
    pub stale_dropped: u64,
    /// Malformed or misrouted frames dropped at a node.
    pub malformed_dropped: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Messages replayed from durable logs during node recovery.
    pub replayed: u64,
    /// Restart-generation bumps (one per recovered node incarnation).
    pub epoch_bumps: u64,
}

impl Stats {
    /// Total *physical* messages sent (frames on the wire), by summing
    /// the per-kind counters. A batch counts as one.
    pub fn total_messages(&self) -> u64 {
        self.relation_requests
            + self.tuple_requests
            + self.tuple_request_batches
            + self.answers
            + self.answer_batches
            + self.end_tuple_requests
            + self.end_tuple_request_batches
            + self.stream_ends
            + self.protocol_messages
    }

    /// Total *logical* messages: every binding, answer tuple, and
    /// per-binding completion counted individually, plus the kinds that
    /// never batch. Invariant under batching — two runs of the same
    /// query at different batch sizes report the same value.
    pub fn logical_messages(&self) -> u64 {
        self.relation_requests
            + self.logical_tuple_requests
            + self.logical_answers
            + self.logical_end_tuple_requests
            + self.stream_ends
            + self.protocol_messages
    }

    /// Work messages (everything except the termination protocol).
    pub fn work_messages(&self) -> u64 {
        self.total_messages() - self.protocol_messages
    }

    /// Protocol overhead ratio: protocol messages per work message.
    pub fn protocol_overhead(&self) -> f64 {
        if self.work_messages() == 0 {
            0.0
        } else {
            self.protocol_messages as f64 / self.work_messages() as f64
        }
    }

    /// Merge another stats block into this one (used by the threaded
    /// runtime to sum per-node counters).
    pub fn merge(&mut self, other: &Stats) {
        self.relation_requests += other.relation_requests;
        self.tuple_requests += other.tuple_requests;
        self.tuple_request_batches += other.tuple_request_batches;
        self.answers += other.answers;
        self.answer_batches += other.answer_batches;
        self.end_tuple_requests += other.end_tuple_requests;
        self.end_tuple_request_batches += other.end_tuple_request_batches;
        self.stream_ends += other.stream_ends;
        self.logical_tuple_requests += other.logical_tuple_requests;
        self.logical_answers += other.logical_answers;
        self.logical_end_tuple_requests += other.logical_end_tuple_requests;
        self.protocol_messages += other.protocol_messages;
        self.probe_waves += other.probe_waves;
        self.stored_tuples += other.stored_tuples;
        self.goal_stored += other.goal_stored;
        self.join_probes += other.join_probes;
        self.derived_tuples += other.derived_tuples;
        self.max_relation_size = self.max_relation_size.max(other.max_relation_size);
        self.max_stage_relation = self.max_stage_relation.max(other.max_stage_relation);
        self.edb_lookups += other.edb_lookups;
        self.messages_processed += other.messages_processed;
        self.fault_dropped += other.fault_dropped;
        self.fault_duplicated += other.fault_duplicated;
        self.fault_delayed += other.fault_delayed;
        self.fault_corrupted += other.fault_corrupted;
        self.retransmits += other.retransmits;
        self.acks += other.acks;
        self.dups_discarded += other.dups_discarded;
        self.stale_dropped += other.stale_dropped;
        self.malformed_dropped += other.malformed_dropped;
        self.crashes += other.crashes;
        self.replayed += other.replayed;
        self.epoch_bumps += other.epoch_bumps;
    }

    /// Total fault events injected by the active plan.
    pub fn faults_injected(&self) -> u64 {
        self.fault_dropped + self.fault_duplicated + self.fault_delayed + self.fault_corrupted
    }

    /// Transport overhead ratio: retransmissions per logical message.
    /// Must be ~0 when the fault plan is inactive (clean path).
    pub fn retransmit_overhead(&self) -> f64 {
        if self.total_messages() == 0 {
            0.0
        } else {
            self.retransmits as f64 / self.total_messages() as f64
        }
    }

    /// Record an outgoing message.
    pub fn count_send(&mut self, payload: &crate::msg::Payload) {
        use crate::msg::Payload as P;
        match payload {
            P::RelationRequest => self.relation_requests += 1,
            P::TupleRequest { .. } => {
                self.tuple_requests += 1;
                self.logical_tuple_requests += 1;
            }
            P::TupleRequestBatch { bindings } => {
                self.tuple_request_batches += 1;
                self.logical_tuple_requests += bindings.len() as u64;
            }
            P::Answer { .. } => {
                self.answers += 1;
                self.logical_answers += 1;
            }
            P::AnswerBatch { tuples } => {
                self.answer_batches += 1;
                self.logical_answers += tuples.len() as u64;
            }
            P::EndTupleRequest { .. } => {
                self.end_tuple_requests += 1;
                self.logical_end_tuple_requests += 1;
            }
            P::EndTupleRequestBatch { bindings } => {
                self.end_tuple_request_batches += 1;
                self.logical_end_tuple_requests += bindings.len() as u64;
            }
            P::End | P::EndOfRequests => self.stream_ends += 1,
            P::EndRequest { .. }
            | P::EndNegative { .. }
            | P::EndConfirmed { .. }
            | P::SccFinished
            | P::Reborn { .. } => self.protocol_messages += 1,
            P::Shutdown => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Payload;
    use mp_storage::tuple;

    #[test]
    fn count_send_buckets() {
        let mut s = Stats::default();
        s.count_send(&Payload::TupleRequest { binding: tuple![1] });
        s.count_send(&Payload::Answer { tuple: tuple![1] });
        s.count_send(&Payload::End);
        s.count_send(&Payload::EndRequest { wave: 0, epoch: 0 });
        assert_eq!(s.tuple_requests, 1);
        assert_eq!(s.answers, 1);
        assert_eq!(s.stream_ends, 1);
        assert_eq!(s.protocol_messages, 1);
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.work_messages(), 3);
        assert!((s.protocol_overhead() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn batches_count_one_physical_frame_but_all_logical_items() {
        let mut s = Stats::default();
        s.count_send(&Payload::AnswerBatch {
            tuples: vec![tuple![1], tuple![2], tuple![3]],
        });
        s.count_send(&Payload::EndTupleRequestBatch {
            bindings: vec![tuple![1], tuple![2]],
        });
        s.count_send(&Payload::TupleRequestBatch {
            bindings: vec![tuple![4], tuple![5]],
        });
        assert_eq!(s.answer_batches, 1);
        assert_eq!(s.end_tuple_request_batches, 1);
        assert_eq!(s.tuple_request_batches, 1);
        assert_eq!(s.logical_answers, 3);
        assert_eq!(s.logical_end_tuple_requests, 2);
        assert_eq!(s.logical_tuple_requests, 2);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.logical_messages(), 7);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Stats {
            answers: 2,
            max_relation_size: 10,
            ..Stats::default()
        };
        let b = Stats {
            answers: 3,
            max_relation_size: 7,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.answers, 5);
        assert_eq!(a.max_relation_size, 10);
    }

    #[test]
    fn zero_work_has_zero_overhead() {
        assert_eq!(Stats::default().protocol_overhead(), 0.0);
    }
}
